"""Shared fixtures and helpers for the benchmark harness.

Each benchmark module regenerates one table or figure from the paper's
evaluation. Benchmarks print the same rows/series the paper reports;
absolute numbers come from the simulated cluster, so the *shape*
(ranking, approximate factors, crossovers) is the reproduction target.

Scale control: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``quick`` /
``full`` (default ``quick``) to trade sweep resolution for runtime.
"""

from __future__ import annotations

import pytest

from repro.evaluation import current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def report(request):
    """Collect and print figure output at the end of the session."""
    sections: list[str] = []

    def add(text: str) -> None:
        sections.append(text)
        print("\n" + text)

    yield add


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
