"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these benches probe the load-bearing pieces of
Mist's design on this reproduction:

1. **interference-model calibration** — prediction error with seed
   factors vs factors fitted to the engine's contention ground truth;
2. **MILP vs exact enumeration** — the inter-stage solver matches
   exhaustive search where enumeration is feasible, at much lower cost
   on larger menus;
3. **Pareto-point budget** — how many sampled frontier points the MILP
   needs before the objective stops improving (the paper's "Pareto
   frontier sampling" knob).
"""

import time

import numpy as np

from repro.core import MistTuner, SPACE_MIST, SymbolicPerformanceAnalyzer
from repro.core.inter_stage import solve_exact, solve_milp
from repro.core.intra_stage import ParetoPoint
from repro.core.plan import StageConfig, uniform_plan
from repro.costmodel import InterferenceModel
from repro.evaluation import calibrated_interference, format_table
from repro.execution import ExecutionEngine
from repro.hardware import make_cluster
from repro.models import get_model
from repro.tracing import trace

MODEL = get_model("gpt3-1.3b")
CLUSTER = make_cluster("L4", 1, 2)
SEQ_LEN = 2048


def _prediction_error(interference) -> float:
    analyzer = SymbolicPerformanceAnalyzer(
        trace(MODEL, CLUSTER.gpu, flash=True), CLUSTER,
        interference=interference,
    )
    engine = ExecutionEngine(CLUSTER, system="mist")
    errors = []
    for gacc, zero, ckpt_all, oo in [
        (8, 1, True, 0.0), (8, 2, False, 0.5), (4, 3, False, 0.0),
        (16, 0, True, 0.0), (8, 1, False, 0.5),
    ]:
        plan = uniform_plan(MODEL, CLUSTER, global_batch=16, gacc=gacc,
                            num_stages=2, dp=1, tp=1, zero=zero,
                            ckpt_all=ckpt_all, oo=oo)
        try:
            measured = engine.run(plan, MODEL, seq_len=SEQ_LEN)
        except Exception:
            continue
        predicted = analyzer.predict_plan(plan, seq_len=SEQ_LEN)
        errors.append(abs(predicted.iteration_time - measured.iteration_time)
                      / measured.iteration_time)
    return float(np.mean(errors))


def test_ablation_calibration(report, benchmark):
    def measure():
        seed = InterferenceModel.default(pcie_only=True)
        fitted = calibrated_interference(True)
        return _prediction_error(seed), _prediction_error(fitted)

    seed_err, fitted_err = benchmark.pedantic(measure, rounds=1,
                                              iterations=1)
    report("Ablation — interference calibration\n" + format_table(
        ["factors", "mean runtime prediction error"],
        [["seed (uncalibrated)", f"{seed_err * 100:.2f}%"],
         ["fitted to engine", f"{fitted_err * 100:.2f}%"]],
    ))
    assert fitted_err <= seed_err + 0.01
    assert fitted_err < 0.08


def _random_menus(rng, num_stages, layer_options, points_per):
    menus = []
    for _ in range(num_stages):
        stage = {}
        for l in layer_options:
            stage[l] = [
                ParetoPoint(
                    t=float(rng.uniform(0.5, 2.0) * l),
                    d=float(rng.uniform(0.0, 2.0)),
                    peak_mem=1.0,
                    config=StageConfig(layers=l, microbatch=1, dp=1, tp=1),
                )
                for _ in range(points_per)
            ]
        menus.append(stage)
    return menus


def test_ablation_milp_vs_exact(report, benchmark):
    def measure():
        rng = np.random.default_rng(11)
        rows = []
        for num_stages, options, points in [(2, 3, 2), (3, 3, 2), (4, 3, 2)]:
            layer_options = list(range(4, 4 + options))
            menus = _random_menus(rng, num_stages, layer_options, points)
            total = num_stages * 5
            t0 = time.perf_counter()
            exact = solve_exact(menus, total, gacc=8)
            t_exact = time.perf_counter() - t0
            t0 = time.perf_counter()
            milp = solve_milp(menus, total, gacc=8)
            t_milp = time.perf_counter() - t0
            rows.append((num_stages, exact, milp, t_exact, t_milp))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = []
    for num_stages, exact, milp, t_exact, t_milp in rows:
        assert (exact is None) == (milp is None)
        if exact is not None:
            assert abs(milp.objective - exact.objective) < 1e-6 * max(
                1.0, exact.objective
            )
        table.append([num_stages,
                      f"{exact.objective:.3f}" if exact else "-",
                      f"{milp.objective:.3f}" if milp else "-",
                      f"{t_exact * 1e3:.1f} ms", f"{t_milp * 1e3:.1f} ms"])
    report("Ablation — inter-stage MILP vs exhaustive enumeration\n"
           + format_table(
               ["stages", "exact obj", "MILP obj", "exact time",
                "MILP time"], table,
           ))


def test_ablation_pareto_budget(report, benchmark):
    def measure():
        results = {}
        for k in (1, 2, 4, 8):
            tuner = MistTuner(
                MODEL, CLUSTER, seq_len=SEQ_LEN, space=SPACE_MIST,
                interference=calibrated_interference(True),
                max_pareto_points=k, max_gacc_candidates=3,
            )
            tuned = tuner.search(16)
            results[k] = tuned.predicted_iteration_time
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("Ablation — Pareto-point budget vs tuned objective\n"
           + format_table(
               ["max Pareto points", "predicted iteration (ms)"],
               [[k, f"{v * 1e3:.1f}"] for k, v in results.items()],
           ))
    # more frontier points never hurt the objective
    values = [results[k] for k in sorted(results)]
    for a, b in zip(values, values[1:]):
        assert b <= a * 1.02
