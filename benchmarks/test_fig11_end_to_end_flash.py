"""Figure 11: end-to-end throughput with FlashAttention.

GPT-3 / Llama / Falcon at paper scales (1.3B on 2 GPUs ... 22B on 32
GPUs), Mist vs Megatron-LM vs DeepSpeed, on PCIe (L4, seq 2048) and
NVLink (A100, seq 4096) clusters.

Expected shape (paper): Mist wins everywhere — avg 1.32x (L4) / 1.34x
(A100) over Megatron-LM, larger factors for Llama/Falcon than GPT, and
larger wins on the memory-tight PCIe machines; DeepSpeed generally
trails Megatron-LM.

Scale note: the ``quick`` preset sweeps sizes 1.3B-6.7B (up to 8 GPUs);
``REPRO_BENCH_SCALE=full`` adds 13B/22B on 16/32 GPUs.
"""

import pytest

from repro.evaluation import (
    compare_systems,
    current_scale,
    format_throughput_rows,
    paper_workloads,
)

SYSTEMS = ("megatron", "deepspeed", "mist")


def _sizes():
    if current_scale().name == "full":
        return ("1.3b", "2.7b", "6.7b", "13b", "22b")
    if current_scale().name == "smoke":
        return ("1.3b",)
    return ("1.3b", "2.7b", "6.7b")


def _sweep(gpu_name: str, families):
    results = {}
    comparisons = {}
    for family in families:
        for spec in paper_workloads(gpu_name, family=family,
                                    sizes=_sizes(), flash=True):
            cmp = compare_systems(spec, systems=SYSTEMS)
            results[spec.name] = {
                system: outcome.throughput
                for system, outcome in cmp.outcomes.items()
            }
            comparisons[spec.name] = cmp
    return results, comparisons


@pytest.mark.parametrize("gpu_name,families", [
    ("L4", ("gpt3", "llama", "falcon")),
    ("A100-40GB", ("gpt3",)),
])
def test_fig11_end_to_end(gpu_name, families, report, benchmark):
    results, comparisons = benchmark.pedantic(
        lambda: _sweep(gpu_name, families), rounds=1, iterations=1
    )
    report(format_throughput_rows(
        f"Figure 11 — end-to-end throughput w/ FlashAttention ({gpu_name})",
        results, reference="megatron",
    ))

    speedups = []
    for name, cmp in comparisons.items():
        mist = cmp.outcomes["mist"].throughput
        megatron = cmp.outcomes["megatron"].throughput
        assert mist > 0, f"{name}: Mist found no feasible plan"
        assert megatron > 0, f"{name}: Megatron found no feasible plan"
        # Mist never meaningfully loses to the baselines: at nil-headroom
        # scales it lands within its small runtime overhead of parity
        best_baseline = max(cmp.outcomes[s].throughput
                            for s in SYSTEMS if s != "mist")
        assert mist >= 0.93 * best_baseline, name
        speedups.append(mist / megatron)

    avg = sum(speedups) / len(speedups)
    # paper: 1.32x average on L4, 1.34x on A100 (their averages include
    # the memory-tight 13B/22B points); shape target here: clear wins on
    # the PCIe machines, at-least-parity on NVLink
    if gpu_name == "L4":
        assert avg > 1.03, f"average L4 speedup {avg:.2f}x too low"
    else:
        assert avg > 0.97, f"average A100 speedup {avg:.2f}x too low"
    assert max(speedups) < 2.5, "implausibly large speedup"
    if gpu_name == "L4":
        # the PCIe sweep includes memory-tight points with real wins
        assert max(speedups) > 1.08

