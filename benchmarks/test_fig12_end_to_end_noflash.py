"""Figure 12: end-to-end throughput without FlashAttention, + Aceso.

GPT-3 at paper scales on L4 and A100 clusters, now including the
automatic baseline Aceso (which does not support FlashAttention — the
reason the paper benches this configuration separately).

Expected shape (paper): Mist >= everyone (avg 1.14x vs Megatron-LM,
1.27x vs Aceso, up to 2.04x); Aceso loses to Megatron-LM in a majority
of cases despite its larger search space (overlap-unawareness, no
sharded DP).
"""

import pytest

from repro.evaluation import (
    compare_systems,
    current_scale,
    format_throughput_rows,
    paper_workloads,
)

SYSTEMS = ("megatron", "deepspeed", "aceso", "mist")


def _sizes(gpu_name: str):
    if current_scale().name == "full":
        return ("1.3b", "2.7b", "6.7b", "13b", "22b")
    if current_scale().name == "smoke":
        return ("1.3b",)
    # quick: keep the PCIe sweep complete; trim the NVLink one
    return ("1.3b", "2.7b", "6.7b") if gpu_name == "L4" else ("1.3b", "2.7b")


def _sweep(gpu_name: str):
    results = {}
    comparisons = {}
    for spec in paper_workloads(gpu_name, family="gpt3",
                                sizes=_sizes(gpu_name), flash=False):
        cmp = compare_systems(spec, systems=SYSTEMS)
        results[spec.name] = {
            system: outcome.throughput
            for system, outcome in cmp.outcomes.items()
        }
        comparisons[spec.name] = cmp
    return results, comparisons


@pytest.mark.parametrize("gpu_name", ["L4", "A100-40GB"])
def test_fig12_end_to_end_noflash(gpu_name, report, benchmark):
    results, comparisons = benchmark.pedantic(
        lambda: _sweep(gpu_name), rounds=1, iterations=1
    )
    report(format_throughput_rows(
        f"Figure 12 — end-to-end throughput w/o FlashAttention ({gpu_name})",
        results, reference="megatron",
    ))

    mist_vs_megatron = []
    mist_vs_aceso = []
    for name, cmp in comparisons.items():
        mist = cmp.outcomes["mist"].throughput
        assert mist > 0, f"{name}: Mist infeasible"
        baselines = {s: cmp.outcomes[s].throughput
                     for s in SYSTEMS if s != "mist"}
        assert mist >= 0.93 * max(baselines.values()), name
        if baselines["megatron"] > 0:
            mist_vs_megatron.append(mist / baselines["megatron"])
        if baselines["aceso"] > 0:
            mist_vs_aceso.append(mist / baselines["aceso"])

    assert mist_vs_megatron and mist_vs_aceso
    avg_m = sum(mist_vs_megatron) / len(mist_vs_megatron)
    avg_a = sum(mist_vs_aceso) / len(mist_vs_aceso)
    # paper: 1.14x vs Megatron-LM and 1.27x vs Aceso on average, with
    # Aceso below Megatron-LM in most cases
    assert avg_m > 0.97
    assert avg_a > avg_m * 0.95, \
        "Aceso should not beat Megatron-LM on average (paper Section 6.2)"
    assert max(mist_vs_megatron) > 1.05, \
        "memory-tight points should show real wins"
