"""Figure 13: speedup breakdown over incrementally larger search spaces.

GPT-3 on L4 clusters, normalized to the 3D-parallelism space (the
Megatron-LM equivalent). Paper averages (8/16/32 GPUs):

    3D parallelism          1.00x   (Mist slightly *slower* than
                                     Megatron-LM at equal spaces — the
                                     implementation-overhead check)
    +ZeRO-2/3               1.03x
    +Flexible CKPT          1.12x
    +Offloading             1.19x
    +Imbalance-aware PP     1.28x

Shape target: monotonically non-decreasing speedups, with flexible CKPT
and offloading contributing the bulk.
"""

from repro.core import INCREMENTAL_SPACES
from repro.evaluation import (
    WorkloadSpec,
    current_scale,
    format_series,
    run_baseline,
    run_mist,
)


def _workloads():
    scale = current_scale().name
    if scale == "smoke":
        return [WorkloadSpec("gpt3-2.7b", "L4", 4, 64, 2048)]
    specs = [WorkloadSpec("gpt3-6.7b", "L4", 8, 128, 2048)]
    if scale == "full":
        specs.append(WorkloadSpec("gpt3-13b", "L4", 16, 256, 2048))
        specs.append(WorkloadSpec("gpt3-22b", "L4", 32, 512, 2048))
    return specs


def _breakdown():
    space_names = []
    relative = {}
    for spec in _workloads():
        megatron = run_baseline(spec, "megatron").throughput
        row = []
        for space in INCREMENTAL_SPACES:
            imbalance = space.name == "+Imbalance-Aware Pipelining"
            outcome = run_mist(spec, space=space,
                               imbalance_aware=imbalance or None)
            row.append(outcome.throughput / megatron if megatron else 0.0)
        relative[spec.name] = row
        space_names = [space.name for space in INCREMENTAL_SPACES]
    return space_names, relative


def test_fig13_speedup_breakdown(report, benchmark):
    space_names, relative = benchmark.pedantic(_breakdown, rounds=1,
                                               iterations=1)
    report(format_series(
        "Figure 13 — speedup vs Megatron-LM by search space (GPT, L4)",
        "workload",
        {name: [f"{v:.2f}x" for v in vals]
         for name, vals in relative.items()},
        space_names,
    ))

    for name, vals in relative.items():
        # 3D-only Mist is within a few percent of Megatron-LM (its own
        # runtime overhead), never dramatically faster
        assert 0.90 <= vals[0] <= 1.10, (name, vals[0])
        # widening the space never hurts (small solver noise allowed)
        for a, b in zip(vals, vals[1:]):
            assert b >= a - 0.03, (name, vals)
        # the full space delivers a real speedup (paper: 1.28x avg)
        assert vals[-1] > 1.05, (name, vals)
