"""Figure 14: robustness over model depth (32-80 layers).

GPT-3 (22B-class width) with varying layer counts on an L4 cluster,
three search spaces: 3D parallelism, 3D+CKPT tuning, full Mist — with
and without FlashAttention in the paper; we bench the flash variant and
spot-check no-flash at one depth.

Expected shape: Mist > 3D+CKPT > 3D at every depth (paper: up to 1.32x
at 80 layers), with the CKPT-only advantage shrinking as the model
grows and the full space holding its lead.
"""

from repro.core import SPACE_3D, SPACE_MIST
from repro.evaluation import (
    WorkloadSpec,
    current_scale,
    format_series,
    run_mist,
)
from repro.models import get_model


def _depths():
    scale = current_scale().name
    if scale == "smoke":
        return (24, 32)
    if scale == "full":
        return (32, 48, 64, 80)
    return (24, 32, 48)


def _cluster_size():
    return 32 if current_scale().name == "full" else 8


SPACES = {
    "3D Parallelism": SPACE_3D.with_(name="3d", ckpt_policy="full"),
    "3D+CKPT Tuning": SPACE_3D.with_(name="3d+ckpt", tune_ckpt=True),
    "Mist": SPACE_MIST,
}


def _sweep():
    num_gpus = _cluster_size()
    base = get_model("gpt3-6.7b" if num_gpus == 8 else "gpt3-22b")
    series = {name: [] for name in SPACES}
    for depth in _depths():
        model = base.with_layers(depth)
        spec = WorkloadSpec(
            model_spec=base.name, gpu_name="L4", num_gpus=num_gpus,
            global_batch=128 if num_gpus == 8 else 512, seq_len=2048,
        )
        for name, space in SPACES.items():
            outcome = _run_with_model(spec, model, space)
            series[name].append(outcome)
    return series


def _run_with_model(spec, model, space):
    from repro.core import MistTuner
    from repro.evaluation import calibrated_interference
    from repro.execution import ExecutionEngine, OOMError

    scale = current_scale()
    cluster = spec.cluster
    tuner = MistTuner(
        model, cluster, seq_len=spec.seq_len, flash=spec.flash,
        space=scale.apply(space),
        interference=calibrated_interference(not cluster.gpu.has_nvlink),
        max_pareto_points=scale.max_pareto_points,
        max_gacc_candidates=scale.max_gacc_candidates,
    )
    tuned = tuner.search(spec.global_batch)
    if tuned.best_plan is None:
        return 0.0
    try:
        result = ExecutionEngine(cluster, system="mist").run(
            tuned.best_plan, model, seq_len=spec.seq_len, flash=spec.flash
        )
    except OOMError:
        return 0.0
    return result.throughput


def test_fig14_depth_sweep(report, benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    depths = _depths()
    base = series["3D Parallelism"]
    normalized = {
        name: [f"{v / b:.2f}x" if b else "OOM"
               for v, b in zip(vals, base)]
        for name, vals in series.items()
    }
    report(format_series(
        f"Figure 14 — throughput vs #layers (GPT, {_cluster_size()}x L4, "
        "normalized to 3D parallelism)",
        "space", normalized, depths,
    ))

    for i, depth in enumerate(depths):
        three_d = series["3D Parallelism"][i]
        ckpt = series["3D+CKPT Tuning"][i]
        mist = series["Mist"][i]
        assert mist > 0, f"Mist infeasible at {depth} layers"
        if three_d > 0:
            assert ckpt >= three_d * 0.98, depth
        assert mist >= ckpt * 0.98, depth
    # Mist's edge persists at the largest depth (paper: 1.21-1.32x)
    last = len(depths) - 1
    if base[last] > 0:
        assert series["Mist"][last] / base[last] > 1.03
