"""Figure 15: robustness over global batch sizes.

GPT-3 22B-class model on L4, global batch 256-2048 in the paper
(scaled-down model/cluster under the quick preset). Three tuners:
3D parallelism, Mist without imbalance-aware pipelining, full Mist.

Expected shape: Mist best at every batch size (paper: 1.28-1.35x over
3D parallelism), and imbalance-awareness contributes an extra ~1.13x on
average — crucially NOT diminishing at large batch sizes, because
mispredicted bottlenecks are multiplied by more microbatches.
"""

from repro.core import SPACE_3D, SPACE_MIST
from repro.evaluation import (
    WorkloadSpec,
    current_scale,
    format_series,
    run_mist,
)

SPACES = {
    "3D Parallelism": ("space3d", None),
    "Mist w/o Imbalance-Aware PP": ("mist", False),
    "Mist": ("mist", True),
}


def _config():
    scale = current_scale().name
    if scale == "full":
        return "gpt3-22b", 32, (256, 512, 1024, 2048)
    if scale == "smoke":
        return "gpt3-2.7b", 4, (32, 64)
    return "gpt3-6.7b", 8, (128, 256, 512)


def _sweep():
    model_spec, num_gpus, batches = _config()
    series = {name: [] for name in SPACES}
    for batch in batches:
        spec = WorkloadSpec(model_spec, "L4", num_gpus, batch, 2048)
        for name, (kind, imbalance) in SPACES.items():
            if kind == "space3d":
                outcome = run_mist(
                    spec, space=SPACE_3D.with_(name="3d", ckpt_policy="full")
                )
            else:
                outcome = run_mist(spec, space=SPACE_MIST,
                                   imbalance_aware=imbalance)
            series[name].append(outcome.throughput)
    return batches, series


def test_fig15_batch_sweep(report, benchmark):
    batches, series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    base = series["3D Parallelism"]
    report(format_series(
        "Figure 15 — throughput vs global batch size "
        "(normalized to 3D parallelism)",
        "tuner",
        {name: [f"{v / b:.2f}x" if b else "OOM"
                for v, b in zip(vals, base)]
         for name, vals in series.items()},
        batches,
    ))

    for i, batch in enumerate(batches):
        mist = series["Mist"][i]
        no_imb = series["Mist w/o Imbalance-Aware PP"][i]
        assert mist > 0, f"Mist infeasible at B={batch}"
        # full Mist never loses to its own imbalance-unaware ablation
        assert mist >= no_imb * 0.97, batch
        if base[i] > 0:
            assert mist >= base[i] * 1.0, batch
    # the imbalance-aware advantage persists at the largest batch
    last = len(batches) - 1
    if series["Mist w/o Imbalance-Aware PP"][last] > 0:
        ratio = series["Mist"][last] / series["Mist w/o Imbalance-Aware PP"][last]
        assert ratio >= 0.97
