"""Figure 16: tuning time as the search space grows, vs Alpa/Aceso.

The paper tunes GPT-3 22B on 32 GPUs: Mist's time grows from ~92s (3D
parallelism) to ~1083s (all offloading enabled) while Alpa needs ~10^4+
seconds (simulation-per-configuration) — and Mist at Aceso's search
space is faster than Aceso (~201s).

This bench measures Mist's actual tuning times over the incremental
spaces on the scaled workload, measures Aceso's tuner, and *estimates*
the simulation-based cost the way the paper cites it (≈6s per
configuration simulation, Proteus [21]), since running Alpa is neither
possible nor meaningful here.

Expected shape: tuning time grows with the space but stays within the
same order of magnitude; the simulation-per-config estimate is many
orders of magnitude larger.
"""

from repro.baselines import AcesoTuner
from repro.core import INCREMENTAL_SPACES, MistTuner, log10_configurations
from repro.evaluation import (
    WorkloadSpec,
    calibrated_interference,
    current_scale,
    format_series,
)

#: per-configuration simulation cost cited by the paper (Proteus, §3.2)
SIMULATION_SECONDS_PER_CONFIG = 6.0


def _spec():
    scale = current_scale().name
    if scale == "full":
        return WorkloadSpec("gpt3-22b", "L4", 32, 512, 2048)
    if scale == "smoke":
        return WorkloadSpec("gpt3-2.7b", "L4", 4, 64, 2048)
    return WorkloadSpec("gpt3-6.7b", "L4", 8, 128, 2048)


def _measure():
    spec = _spec()
    scale = current_scale()
    cluster = spec.cluster
    interference = calibrated_interference(not cluster.gpu.has_nvlink)
    times = {}
    configs = {}
    for space in INCREMENTAL_SPACES:
        tuner = MistTuner(
            spec.model, cluster, seq_len=spec.seq_len,
            space=scale.apply(space), interference=interference,
            max_pareto_points=scale.max_pareto_points,
            max_gacc_candidates=scale.max_gacc_candidates,
        )
        tuned = tuner.search(spec.global_batch)
        times[space.name] = tuned.tuning_time_seconds
        configs[space.name] = tuned.configurations_evaluated
        last_tuner, last_tuned = tuner, tuned

    # §5.3: the (S, G) grid is embarrassingly parallel across cores —
    # re-run the widest space with one worker per core and check the
    # fan-out returns the identical plan.
    parallel = last_tuner.search(spec.global_batch, parallelism=0)
    assert parallel.best_plan == last_tuned.best_plan
    times["Mist (parallel S,G)"] = parallel.tuning_time_seconds
    configs["Mist (parallel S,G)"] = parallel.configurations_evaluated

    aceso = AcesoTuner(spec.model, cluster, seq_len=spec.seq_len)
    aceso_result = aceso.tune(spec.global_batch)
    times["Aceso"] = aceso_result.tuning_time_seconds

    # simulation-per-configuration estimate for the parallelism-only
    # space (the Alpa-style approach the paper contrasts against)
    log10_parallel = log10_configurations(
        spec.model.num_layers, spec.num_gpus
    )
    times["simulation-based (est.)"] = (
        10 ** min(log10_parallel, 12) * SIMULATION_SECONDS_PER_CONFIG
    )
    return times, configs


def test_fig16_tuning_time(report, benchmark):
    times, configs = benchmark.pedantic(_measure, rounds=1, iterations=1)
    spec = _spec()
    rows = {
        name: [f"{seconds:,.1f}",
               f"{configs.get(name, '-')}"]
        for name, seconds in times.items()
    }
    report(format_series(
        f"Figure 16 — tuning time ({spec.name})",
        "tuner", rows, ["seconds", "#configs evaluated"],
    ))

    mist_names = [space.name for space in INCREMENTAL_SPACES]
    # larger spaces evaluate more configurations
    evaluated = [configs[name] for name in mist_names]
    assert evaluated == sorted(evaluated), evaluated
    assert evaluated[-1] > 3 * evaluated[0]

    # every Mist tuning run finishes in interactive time on this scale
    for name in mist_names:
        assert times[name] < 600, (name, times[name])

    # simulation-per-configuration search is astronomically slower
    assert times["simulation-based (est.)"] > 1000 * times[mist_names[-1]]
