"""Figure 16: tuning time as the search space grows, vs Alpa/Aceso.

The paper tunes GPT-3 22B on 32 GPUs: Mist's time grows from ~92s (3D
parallelism) to ~1083s (all offloading enabled) while Alpa needs ~10^4+
seconds (simulation-per-configuration) — and Mist at Aceso's search
space is faster than Aceso (~201s).

This bench measures Mist's actual tuning times over the incremental
spaces on the scaled workload — through the prune-and-memoize engine,
the same measurement ``repro bench`` snapshots into ``BENCH_4.json``
(:func:`repro.benchmarking.measure_fig16`) — measures Aceso's tuner,
and *estimates* the simulation-based cost the way the paper cites it
(≈6s per configuration simulation, Proteus [21]), since running Alpa
is neither possible nor meaningful here.

Expected shape: tuning time grows with the space but stays within the
same order of magnitude; the simulation-per-config estimate is many
orders of magnitude larger; the engine records nonzero pruned and
memo-hit counters while the parallel fan-out returns the serial plan.
"""

from repro.baselines import AcesoTuner
from repro.benchmarking import fig16_spec, measure_fig16
from repro.core import INCREMENTAL_SPACES, log10_configurations
from repro.evaluation import current_scale, format_series

#: per-configuration simulation cost cited by the paper (Proteus, §3.2)
SIMULATION_SECONDS_PER_CONFIG = 6.0


def _measure():
    scale = current_scale()
    spec = fig16_spec(scale.name)
    mist = measure_fig16(scale, prune=True, parallel_rerun=True)

    times = {name: entry["seconds"]
             for name, entry in mist["per_space"].items()}
    configs = {name: entry["configurations_evaluated"]
               for name, entry in mist["per_space"].items()}
    times["Mist (parallel S,G)"] = mist["parallel"]["seconds"]

    aceso = AcesoTuner(spec.model, spec.cluster, seq_len=spec.seq_len)
    aceso_result = aceso.tune(spec.global_batch)
    times["Aceso"] = aceso_result.tuning_time_seconds

    # simulation-per-configuration estimate for the parallelism-only
    # space (the Alpa-style approach the paper contrasts against)
    log10_parallel = log10_configurations(
        spec.model.num_layers, spec.num_gpus
    )
    times["simulation-based (est.)"] = (
        10 ** min(log10_parallel, 12) * SIMULATION_SECONDS_PER_CONFIG
    )
    return times, configs, mist


def test_fig16_tuning_time(report, benchmark):
    times, configs, mist = benchmark.pedantic(_measure, rounds=1,
                                              iterations=1)
    scale = current_scale()
    spec = fig16_spec(scale.name)
    rows = {
        name: [f"{seconds:,.1f}",
               f"{configs.get(name, '-')}"]
        for name, seconds in times.items()
    }
    report(format_series(
        f"Figure 16 — tuning time ({spec.name})",
        "tuner", rows, ["seconds", "#configs evaluated"],
    ))

    mist_names = [space.name for space in INCREMENTAL_SPACES]

    # every Mist tuning run finishes in interactive time on this scale
    for name in mist_names:
        assert times[name] < 600, (name, times[name])

    # the prune-and-memoize engine accounts for every (S, G) cell ...
    for name in mist_names:
        stats = mist["per_space"][name]["stats"]
        assert stats["cells_explored"] + stats["cells_pruned"] \
            + stats["cells_infeasible"] == stats["cells_total"], stats
    # ... and actually prunes / prefilters on the widest space
    widest = mist["per_space"][mist_names[-1]]["stats"]
    if scale.name != "smoke":  # smoke grids are tiny; counters may hit 0
        assert widest["cells_pruned"] > 0, widest
        assert widest["configs_prefiltered"] > 0, widest

    # §5.3: the (S, G) grid is embarrassingly parallel across cores —
    # the fan-out re-run returns the identical plan, served by the
    # shared menu memo
    assert mist["parallel"]["matches_serial"]
    assert mist["parallel"]["memo_hits"] > 0

    # simulation-per-configuration search is astronomically slower
    assert times["simulation-based (est.)"] > 1000 * times[mist_names[-1]]
