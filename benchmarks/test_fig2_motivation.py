"""Figure 2: tuning each memory optimization with parallelism.

GPT-3 2.7B on 4 NVIDIA L4 GPUs, seq 4096, global batch 8. Panels:
(b) full recomputation; (c) tuned recomputation; (d) tuned ZeRO;
(e) tuned offloading; (f) everything co-optimized.

Expected shape (paper: 1.22x / 1.25x / 1.16x / 1.30x over full CKPT):
every tuned panel >= full CKPT, and co-optimization beats each single
optimization.
"""

from repro.core import MistTuner, SPACE_3D, SPACE_3D_ZERO
from repro.evaluation import calibrated_interference, current_scale
from repro.execution import ExecutionEngine, OOMError
from repro.hardware import make_cluster
from repro.models import get_model

MODEL = get_model("gpt3-2.7b")
CLUSTER = make_cluster("L4", 1, 4)
SEQ_LEN = 4096
GLOBAL_BATCH = 8

OFFLOAD = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Fig. 2's panels isolate one optimization each; the plain panels use
#: parallelism without any ZeRO (the paper's Megatron/Alpa baseline).
_PLAIN = SPACE_3D.with_(name="plain", zero_levels=(0,))
PANELS = {
    "full_ckpt": _PLAIN.with_(name="full-ckpt", ckpt_policy="full"),
    "tuned_ckpt": _PLAIN.with_(name="tuned-ckpt", tune_ckpt=True),
    "tuned_zero": SPACE_3D_ZERO.with_(name="tuned-zero",
                                      ckpt_policy="full"),
    "tuned_offload": _PLAIN.with_(name="tuned-offload",
                                  ckpt_policy="full",
                                  oo_grid=OFFLOAD, ao_grid=OFFLOAD),
    "all_tuned": SPACE_3D_ZERO.with_(name="all", tune_ckpt=True,
                                     oo_grid=OFFLOAD, ao_grid=OFFLOAD),
}


def _run_panel(space):
    interference = calibrated_interference(pcie_only=True)
    tuner = MistTuner(MODEL, CLUSTER, seq_len=SEQ_LEN, space=space,
                      interference=interference)
    tuned = tuner.search(GLOBAL_BATCH)
    if tuned.best_plan is None:
        return None
    engine = ExecutionEngine(CLUSTER, system="mist")
    try:
        return engine.run(tuned.best_plan, MODEL, seq_len=SEQ_LEN)
    except OOMError:
        return None


def test_fig2_speedups(report, benchmark):
    panel_results = benchmark.pedantic(
        lambda: {name: _run_panel(space) for name, space in PANELS.items()},
        rounds=1, iterations=1,
    )
    base = panel_results["full_ckpt"]
    assert base is not None, "full-CKPT baseline must train (Fig. 2b)"
    lines = ["Figure 2 — motivational example (GPT-3 2.7B, 4x L4, "
             f"seq {SEQ_LEN}, B={GLOBAL_BATCH})"]
    for name, result in panel_results.items():
        if result is None:
            lines.append(f"  {name:14s}: infeasible")
            continue
        speed = result.throughput / base.throughput
        lines.append(f"  {name:14s}: {result.throughput:5.2f} samples/s "
                     f"({speed:4.2f}x)")
    report("\n".join(lines))

    for name in ("tuned_ckpt", "tuned_zero", "tuned_offload"):
        assert panel_results[name] is not None
        assert panel_results[name].throughput >= base.throughput * 0.999, \
            f"{name} should not lose to full CKPT"

    co = panel_results["all_tuned"]
    assert co is not None
    singles = max(panel_results[n].throughput
                  for n in ("tuned_ckpt", "tuned_zero", "tuned_offload"))
    assert co.throughput >= singles * 0.999, \
        "co-optimization must match or beat every single optimization"
    # paper: 1.30x; accept the same ballpark
    assert co.throughput / base.throughput > 1.15


def test_fig2_parallelism_only_is_memory_bound():
    """Panel (a): the no-memory-optimization space is almost all OOM."""
    from repro.baselines.common import pipeline_grids
    from repro.core.plan import PlanValidationError, uniform_plan

    engine = ExecutionEngine(CLUSTER, system="mist")
    total, fit = 0, 0
    for num_stages, dp, tp, gacc, _ in pipeline_grids(MODEL, CLUSTER,
                                                      GLOBAL_BATCH):
        try:
            plan = uniform_plan(MODEL, CLUSTER, global_batch=GLOBAL_BATCH,
                                gacc=gacc, num_stages=num_stages, dp=dp,
                                tp=tp, ckpt_all=False)
        except PlanValidationError:
            continue
        total += 1
        try:
            engine.run(plan, MODEL, seq_len=SEQ_LEN)
            fit += 1
        except OOMError:
            continue
    assert total > 10
    # paper: all OOM; our leaner memory model lets a few deep-PP plans
    # squeeze in, but the space must remain dominated by OOMs
    assert fit <= total * 0.25
