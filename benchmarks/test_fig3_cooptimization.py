"""Figure 3: comprehensive co-optimization vs checkpoint-only tuning.

GPT-3 7B (6.7B) on 8 NVIDIA L4 GPUs, seq 2048, global batch 512. The
paper's point: tuning only activation checkpointing drives the planner
into a deep (PP=8) bubble-heavy pipeline, while comprehensive
co-optimization uses offloading/ZeRO to buy memory, shrink the pipeline
and cut recomputation — a 1.22x speedup over parallelism-only tuning
and 1.11x over parallelism+CKPT tuning.
"""

from repro.core import MistTuner, SPACE_3D, SPACE_MIST
from repro.evaluation import calibrated_interference, current_scale
from repro.execution import ExecutionEngine, OOMError
from repro.hardware import make_cluster
from repro.models import get_model

MODEL = get_model("gpt3-6.7b")
CLUSTER = make_cluster("L4", 1, 8)
SEQ_LEN = 2048
GLOBAL_BATCH = 512

SPACES = {
    "parallelism-only": SPACE_3D.with_(name="3d", ckpt_policy="full"),
    "parallelism+ckpt": SPACE_3D.with_(name="3d+ckpt", tune_ckpt=True),
    "comprehensive": None,  # filled from the scale preset
}


def _run(space_key):
    scale = current_scale()
    space = SPACES[space_key] or scale.apply(SPACE_MIST)
    interference = calibrated_interference(pcie_only=True)
    tuner = MistTuner(
        MODEL, CLUSTER, seq_len=SEQ_LEN, space=space,
        interference=interference,
        max_pareto_points=scale.max_pareto_points,
        max_gacc_candidates=scale.max_gacc_candidates,
    )
    tuned = tuner.search(GLOBAL_BATCH)
    if tuned.best_plan is None:
        return None, None
    engine = ExecutionEngine(CLUSTER, system="mist")
    try:
        return tuned.best_plan, engine.run(tuned.best_plan, MODEL,
                                           seq_len=SEQ_LEN)
    except OOMError:
        return tuned.best_plan, None


def test_fig3_cooptimization(report, benchmark):
    outcomes = benchmark.pedantic(
        lambda: {key: _run(key) for key in SPACES},
        rounds=1, iterations=1,
    )
    lines = [f"Figure 3 — co-optimization (GPT-3 7B, 8x L4, B={GLOBAL_BATCH})"]
    base = outcomes["parallelism-only"][1]
    for key, (plan, result) in outcomes.items():
        if result is None:
            lines.append(f"  {key:18s}: infeasible")
            continue
        lines.append(
            f"  {key:18s}: {result.throughput:6.2f} samples/s "
            f"({result.throughput / base.throughput:4.2f}x)  "
            f"S={plan.num_stages} G={plan.gacc}"
        )
    # per-stage configuration of the comprehensive plan (Fig. 3b analog)
    plan, result = outcomes["comprehensive"]
    for idx, stage in enumerate(plan.stages):
        lines.append(f"    stage {idx}: {stage.describe()}")
    bubbles = [f"{result.pipeline.bubble_fraction(i) * 100:.0f}%"
               for i in range(plan.num_stages)]
    lines.append(f"    idle fractions: {bubbles}")
    report("\n".join(lines))

    assert base is not None
    ckpt = outcomes["parallelism+ckpt"][1]
    comp = outcomes["comprehensive"][1]
    assert ckpt is not None and comp is not None
    assert ckpt.throughput >= base.throughput * 0.999
    assert comp.throughput >= ckpt.throughput * 0.999
    # paper: 1.22x over parallelism-only
    assert comp.throughput / base.throughput > 1.08
