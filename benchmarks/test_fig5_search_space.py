"""Figure 5: configuration-count growth as optimizations are added.

The unpruned joint space grows from ~10^10 configurations (DP+TP+PP on
16 layers) to beyond 10^100 with every memory optimization enabled at
80 layers — the scale that motivates symbolic batched evaluation and
hierarchical tuning.
"""

from repro.core import log10_configurations
from repro.evaluation import format_series

LAYERS = (16, 32, 48, 64, 80)
NUM_GPUS = 32

#: cumulative optimization flags, in the paper's legend order
INCREMENTS = [
    ("DP+TP+PP", {}),
    ("+ZeRO", {"zero": True}),
    ("+CKPT", {"zero": True, "ckpt": True}),
    ("+OO", {"zero": True, "ckpt": True, "oo": True}),
    ("+GO", {"zero": True, "ckpt": True, "oo": True, "go": True}),
    ("+PO", {"zero": True, "ckpt": True, "oo": True, "go": True,
             "po": True}),
    ("+AO", {"zero": True, "ckpt": True, "oo": True, "go": True,
             "po": True, "ao": True}),
]


def _series():
    return {
        label: [log10_configurations(layers, NUM_GPUS, **flags)
                for layers in LAYERS]
        for label, flags in INCREMENTS
    }


def test_fig5_search_space_growth(report, benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    report(format_series(
        "Figure 5 — log10(#configurations) vs #layers (32 GPUs)",
        "space", {k: [f"{v:.0f}" for v in vals]
                  for k, vals in series.items()},
        LAYERS,
    ))

    # growth in layers is monotone for every space
    for label, values in series.items():
        assert all(a < b for a, b in zip(values, values[1:])), label

    # each added optimization strictly enlarges the space
    labels = [label for label, _ in INCREMENTS]
    for i in range(len(labels) - 1):
        for j, _ in enumerate(LAYERS):
            assert series[labels[i]][j] < series[labels[i + 1]][j]

    # the full space at 80 layers is astronomically large (paper: >10^100)
    assert series["+AO"][-1] > 100
    # parallelism-only is already beyond exhaustive search
    assert series["DP+TP+PP"][-1] > 8
