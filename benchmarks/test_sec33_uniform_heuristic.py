"""Section 3.3: why uniform-strategy heuristics fall short.

The paper's argument against simple heuristics (Yuan et al., ATC'24):
applying the *same* checkpoint count and offloading ratios across all
pipeline stages ignores the inherent memory/compute imbalance between
stages, costing 26% (2.7B) and 20% (7B) against full per-stage
co-optimization in the motivational examples.

Shape target: Mist's heterogeneous per-stage tuning >= the uniform
heuristic on the same workload, with a measurable gap on the
memory-tight configuration.
"""

import pytest

from repro.evaluation import (
    WorkloadSpec,
    current_scale,
    format_table,
    run_baseline,
    run_mist,
)


def _workloads():
    scale = current_scale().name
    if scale == "smoke":
        return [WorkloadSpec("gpt3-2.7b", "L4", 4, 32, 2048)]
    specs = [
        WorkloadSpec("gpt3-2.7b", "L4", 4, 64, 2048),
        WorkloadSpec("gpt3-6.7b", "L4", 8, 128, 2048),
    ]
    if scale == "full":
        specs.append(WorkloadSpec("gpt3-13b", "L4", 16, 256, 2048))
    return specs


def _measure():
    rows = []
    for spec in _workloads():
        uniform = run_baseline(spec, "uniform")
        mist = run_mist(spec)
        rows.append((spec.name, uniform.throughput, mist.throughput))
    return rows


def test_sec33_uniform_vs_heterogeneous(report, benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = []
    for name, uniform, mist in rows:
        gap = f"{mist / uniform:4.2f}x" if uniform > 0 else "inf"
        table.append([name, f"{uniform:.2f}", f"{mist:.2f}", gap])
    report("Section 3.3 — uniform heuristic vs per-stage co-optimization\n"
           + format_table(
               ["workload", "uniform (samp/s)", "Mist (samp/s)",
                "Mist advantage"], table,
           ))

    advantages = []
    for name, uniform, mist in rows:
        assert mist > 0, name
        if uniform > 0:
            if current_scale().name == "smoke" and mist < uniform * 0.97:
                # Known smoke-scale artifact (ISSUE 3 triage): the
                # "never loses to its uniform restriction" guarantee
                # needs Mist's grid to be a superset of the uniform
                # tuner's, but the smoke preset clamps
                # max_gacc_candidates=2 / max_pareto_points=3, pruning
                # the very configs the uniform search still reaches
                # (mist 5.97 vs uniform 6.40 on gpt3-2.7b/L4x4/B32 in
                # the pristine seed). Quick/full scales keep the
                # superset property and enforce the assertion.
                pytest.xfail(
                    "ISSUE 3: smoke-scale grid clamps break the "
                    "superset property vs the uniform heuristic "
                    f"({name}: mist {mist:.2f} < uniform {uniform:.2f})"
                )
            # heterogeneous tuning never loses to its uniform restriction
            assert mist >= uniform * 0.97, name
            advantages.append(mist / uniform)
    assert advantages
    # the paper reports 20-26% degradation for uniform strategies on the
    # motivational workloads; require a visible advantage somewhere
    assert max(advantages) >= 1.0
