"""Section 6.6: accuracy of the symbolic performance analyzer.

Samples feasible training plans across parallelism/ZeRO/CKPT/offloading
configurations, predicts iteration time and peak memory with the
symbolic analyzer, executes each plan on the engine, and reports the
error distributions.

Paper: average runtime error 1.79%, average memory error 2.10%.
Reproduction target: mean runtime error < 6%, mean memory error < 5%
(the engine quantizes offloading to whole layers and integrates
contention differently — exactly the effects the paper's errors cover).
"""

import numpy as np

from repro.baselines.common import pipeline_grids
from repro.core import SymbolicPerformanceAnalyzer
from repro.core.plan import PlanValidationError, StageConfig, TrainingPlan
from repro.evaluation import calibrated_interference, current_scale
from repro.execution import ExecutionEngine, OOMError
from repro.hardware import make_cluster
from repro.models import get_model
from repro.tracing import trace

MODEL = get_model("gpt3-2.7b")
CLUSTER = make_cluster("L4", 1, 4)
SEQ_LEN = 2048
GLOBAL_BATCH = 32


def _sample_plans(rng: np.random.Generator, count: int):
    """Random structurally valid plans over the full option space."""
    grids = list(pipeline_grids(MODEL, CLUSTER, GLOBAL_BATCH))
    plans = []
    attempts = 0
    while len(plans) < count and attempts < count * 60:
        attempts += 1
        num_stages, dp, tp, gacc, microbatch = grids[rng.integers(len(grids))]
        layers = MODEL.num_layers // num_stages
        zero = int(rng.integers(0, 4))
        stages = []
        for _ in range(num_stages):
            ckpt = int(rng.integers(0, layers + 1))
            # deliberately non-layer-aligned ratios: the engine rounds
            # them to whole layers, the analyzer keeps them continuous
            stages.append(StageConfig(
                layers=layers, microbatch=microbatch, dp=dp, tp=tp,
                zero=zero, ckpt=ckpt,
                oo=float(rng.choice([0.0, 0.3, 0.55])),
                ao=float(rng.choice([0.0, 0.3, 0.55])),
            ))
        try:
            plan = TrainingPlan(global_batch=GLOBAL_BATCH, gacc=gacc,
                                stages=tuple(stages))
            plan.validate(MODEL, CLUSTER)
        except PlanValidationError:
            continue
        plans.append(plan)
    return plans


def _accuracy():
    n_samples = {"smoke": 10, "quick": 30, "full": 80}[current_scale().name]
    rng = np.random.default_rng(7)
    analyzer = SymbolicPerformanceAnalyzer(
        trace(MODEL, CLUSTER.gpu, flash=True), CLUSTER,
        interference=calibrated_interference(pcie_only=True),
    )
    engine = ExecutionEngine(CLUSTER, system="mist")

    runtime_errors = []
    memory_errors = []
    evaluated = 0
    for plan in _sample_plans(rng, n_samples * 3):
        if evaluated >= n_samples:
            break
        try:
            measured = engine.run(plan, MODEL, seq_len=SEQ_LEN)
        except OOMError:
            continue
        predicted = analyzer.predict_plan(plan, seq_len=SEQ_LEN)
        evaluated += 1
        runtime_errors.append(
            abs(predicted.iteration_time - measured.iteration_time)
            / measured.iteration_time
        )
        predicted_peak = predicted.stage_peak_mem.max()
        measured_peak = max(r.peak for r in measured.stage_memory)
        memory_errors.append(
            abs(predicted_peak - measured_peak) / measured_peak
        )
    return np.array(runtime_errors), np.array(memory_errors)


def test_sec66_prediction_accuracy(report, benchmark):
    runtime_errors, memory_errors = benchmark.pedantic(
        _accuracy, rounds=1, iterations=1
    )
    assert runtime_errors.size >= 10, "not enough feasible samples"
    report(
        "Section 6.6 — symbolic analyzer accuracy "
        f"({runtime_errors.size} sampled strategies)\n"
        f"  runtime error: mean {runtime_errors.mean() * 100:.2f}%  "
        f"p90 {np.percentile(runtime_errors, 90) * 100:.2f}%  "
        f"max {runtime_errors.max() * 100:.2f}%   (paper mean: 1.79%)\n"
        f"  memory  error: mean {memory_errors.mean() * 100:.2f}%  "
        f"p90 {np.percentile(memory_errors, 90) * 100:.2f}%  "
        f"max {memory_errors.max() * 100:.2f}%   (paper mean: 2.10%)"
    )
    assert runtime_errors.mean() < 0.06
    assert memory_errors.mean() < 0.05
    assert np.percentile(runtime_errors, 90) < 0.12
