"""Table 1: capability matrix of distributed training systems.

Static reproduction: the capability rows of the implemented systems
must match the paper's Table 1 — Mist is the only system with full
fine-grained offloading, ZeRO-2/3 *and* full auto-tuning of everything
it supports.
"""

from repro.baselines import CAPABILITY_TABLE
from repro.evaluation import format_table


def _rows():
    return [cap.as_row() for cap in CAPABILITY_TABLE]


def test_table1_matrix(report, benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    report("Table 1 — system capabilities\n" + format_table(
        headers, [[row[h] for h in headers] for row in rows]
    ))

    by_name = {row["System"]: row for row in rows}
    # Paper Table 1 invariants
    assert not by_name["Megatron-LM"]["ZeRO-2/3"]
    assert by_name["Megatron-LM"]["Auto-Tuning"] == "none"
    assert by_name["DeepSpeed"]["ZeRO-2/3"]
    assert by_name["DeepSpeed"]["Offload O"] == "coarse"
    assert not by_name["Aceso"]["ZeRO-2/3"]
    assert by_name["Aceso"]["Offload O"] == "none"
    assert by_name["Aceso"]["Auto-Tuning"] == "partial"
    mist = by_name["Mist"]
    assert mist["ZeRO-2/3"]
    assert all(mist[f"Offload {x}"] == "fine" for x in "PGOA")
    assert mist["Auto-Tuning"] == "full"


def test_mist_is_strictly_most_capable():
    mist = CAPABILITY_TABLE[-1]
    assert mist.name == "Mist"
    order = {"none": 0, "coarse": 1, "fine": 2}
    for cap in CAPABILITY_TABLE[:-1]:
        for attr in ("offload_p", "offload_g", "offload_o", "offload_a"):
            assert order[getattr(cap, attr)] <= order[getattr(mist, attr)]
        assert cap.zero23 <= mist.zero23
