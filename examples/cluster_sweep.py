#!/usr/bin/env python3
"""Multi-node sweep as a campaign: one model across cluster shapes.

Tunes the same GPT-3 model on several simulated clusters (PCIe L4 vs
NVLink A100, single- and multi-node) through the declarative Campaign
API and reports how the chosen strategy shifts with the hardware — the
paper's Section 6.2 observation that memory-tight PCIe machines reward
aggressive memory-parallelism co-optimization, while NVLink machines
run closer to their physical limits.

The whole sweep is one :class:`~repro.campaigns.CampaignSpec` with a
cluster axis; sequence lengths follow the paper's per-GPU-type default
(2048 on L4, 4096 on A100). Set ``REPRO_CAMPAIGN_DIR`` to make the run
durable: a resumable manifest plus plan cache land there, and re-running
the script resumes instead of re-searching.

Run:  python examples/cluster_sweep.py            (paper-scale, minutes)
      python examples/cluster_sweep.py --smoke    (tiny CI grid, ~10s)
"""

import os
import sys
from pathlib import Path

from repro.campaigns import CampaignSpec, run_campaign

SMOKE = "--smoke" in sys.argv[1:]

SPEC = CampaignSpec(
    name="cluster-sweep-smoke" if SMOKE else "cluster-sweep",
    solvers=("mist",),
    models=("gpt3-1.3b",) if SMOKE else ("gpt3-6.7b",),
    clusters=(
        ({"gpu": "L4", "num_gpus": 2}, {"gpu": "L4", "num_gpus": 4})
        if SMOKE else
        ({"gpu": "L4", "num_gpus": 8}, {"gpu": "L4", "num_gpus": 16},
         {"gpu": "A100-40GB", "num_gpus": 8},
         {"gpu": "A100-40GB", "num_gpus": 16})
    ),
    scales=("smoke",) if SMOKE else ("quick",),
    global_batches=(16,) if SMOKE else (128,),
    interference="none" if SMOKE else "auto",
    parallelism=0,
)


def _print_cell(record: dict, report) -> None:
    name = f"{record['cluster']}"
    if record["status"] != "done":
        print(f"{name:18s}: failed ({record['error']})")
        return
    origin = {"cache": " (cached)", "manifest": " (resumed)"}.get(
        record["source"] or "", "")
    if report is None or report.plan is None:
        print(f"{name:18s} seq={record['seq_len']}: no feasible plan")
        return
    plan = report.plan
    stage0 = plan.stages[0]
    print(f"{name:18s} seq={record['seq_len']}: "
          f"{record['throughput']:6.2f} samples/s"
          f"  S={plan.num_stages} G={plan.gacc}  "
          f"stage0[{stage0.describe()}]{origin}")


def main() -> None:
    from repro.campaigns import CampaignError

    model = SPEC.models[0]
    print(f"model: {model}, global batch {SPEC.global_batches[0]}\n")
    directory = os.environ.get("REPRO_CAMPAIGN_DIR")
    resume = bool(directory) and \
        (Path(directory) / "manifest.json").exists()
    try:
        report = run_campaign(SPEC, directory=directory, resume=resume,
                              on_event=_print_cell)
    except CampaignError:
        # the directory holds a different grid (e.g. --smoke toggled):
        # start that directory over instead of dying on the mismatch
        print("(existing manifest is for a different grid; "
              "starting fresh)\n")
        report = run_campaign(SPEC, directory=directory, resume=False,
                              on_event=_print_cell)
    counters = report.counters
    print(f"\n{counters['done']}/{counters['cells']} cells done "
          f"(solved {counters['solved']}, cache {counters['cache_hits']}, "
          f"manifest {counters['manifest_hits']})")


if __name__ == "__main__":
    main()
