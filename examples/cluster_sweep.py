#!/usr/bin/env python3
"""Multi-node sweep: tuning the same model across cluster shapes.

Tunes GPT-3 6.7B on several simulated clusters (PCIe L4 vs NVLink A100,
single- and multi-node) through the solver API and reports how the
chosen strategy shifts with the hardware — the paper's Section 6.2
observation that memory-tight PCIe machines reward aggressive
memory-parallelism co-optimization, while NVLink machines run closer to
their physical limits.

Each cluster shape is one declarative job; re-running the script with
``REPRO_PLAN_CACHE`` set reuses previously solved plans from disk.

Run:  python examples/cluster_sweep.py
"""

import os

from repro.api import PlanCache, TuningJob, solve

MODEL = "gpt3-6.7b"
GLOBAL_BATCH = 128

CLUSTERS = [
    ("L4", 8, 2048),
    ("L4", 16, 2048),
    ("A100-40GB", 8, 4096),
    ("A100-40GB", 16, 4096),
]


def main() -> None:
    cache = PlanCache() if os.environ.get("REPRO_PLAN_CACHE") else None
    print(f"model: {MODEL}, global batch {GLOBAL_BATCH}\n")
    rows = []
    for gpu, num_gpus, seq_len in CLUSTERS:
        job = TuningJob(
            model=MODEL, gpu=gpu, num_gpus=num_gpus,
            global_batch=GLOBAL_BATCH, seq_len=seq_len,
            parallelism=0,
        )
        rows.append((gpu, num_gpus, seq_len, solve(job, cache=cache)))

    for gpu, num_gpus, seq_len, report in rows:
        name = f"{gpu} x {num_gpus}"
        if not report.measured:
            print(f"{name:18s} seq={seq_len}: no feasible plan")
            continue
        plan = report.plan
        stage0 = plan.stages[0]
        print(f"{name:18s} seq={seq_len}: {report.throughput:6.2f} samples/s"
              f"  S={plan.num_stages} G={plan.gacc}  "
              f"stage0[{stage0.describe()}]")


if __name__ == "__main__":
    main()
