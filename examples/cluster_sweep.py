#!/usr/bin/env python3
"""Multi-node sweep: tuning the same model across cluster shapes.

Tunes GPT-3 6.7B on several simulated clusters (PCIe L4 vs NVLink A100,
single- and multi-node) and reports how the chosen strategy shifts with
the hardware — the paper's Section 6.2 observation that memory-tight
PCIe machines reward aggressive memory-parallelism co-optimization,
while NVLink machines run closer to their physical limits.

Run:  python examples/cluster_sweep.py
"""

from repro import MistTuner, get_model, make_cluster
from repro.evaluation import calibrated_interference
from repro.execution import ExecutionEngine

MODEL = get_model("gpt3-6.7b")
GLOBAL_BATCH = 128

CLUSTERS = [
    ("L4", 1, 8, 2048),
    ("L4", 2, 8, 2048),
    ("A100-40GB", 1, 8, 4096),
    ("A100-40GB", 2, 8, 4096),
]


def main() -> None:
    print(f"model: {MODEL}, global batch {GLOBAL_BATCH}\n")
    rows = []
    for gpu, nodes, per_node, seq_len in CLUSTERS:
        cluster = make_cluster(gpu, nodes, per_node)
        interference = calibrated_interference(
            pcie_only=not cluster.gpu.has_nvlink
        )
        tuner = MistTuner(MODEL, cluster, seq_len=seq_len,
                          interference=interference)
        tuned = tuner.tune(GLOBAL_BATCH)
        if tuned.best_plan is None:
            rows.append((cluster.name, seq_len, None, None))
            continue
        engine = ExecutionEngine(cluster, system="mist")
        result = engine.run(tuned.best_plan, MODEL, seq_len=seq_len)
        rows.append((cluster.name, seq_len, result, tuned.best_plan))

    for name, seq_len, result, plan in rows:
        if result is None:
            print(f"{name:18s} seq={seq_len}: no feasible plan")
            continue
        stage0 = plan.stages[0]
        print(f"{name:18s} seq={seq_len}: {result.throughput:6.2f} samples/s"
              f"  S={plan.num_stages} G={plan.gacc}  "
              f"stage0[{stage0.describe()}]")


if __name__ == "__main__":
    main()
