#!/usr/bin/env python3
"""Heterogeneous-cluster tuning: a mixed A100 + L4 fleet.

The paper's memory-parallelism co-optimization pays off most when the
device pool itself is imbalanced: the best (dp, tp, ckpt, offloading)
point differs per GPU class, and the stage partition must respect each
class's memory. This example tunes GPT-3 1.3B on a fleet of 2x
A100-40GB plus 2x L4 (24 GB) and shows how Mist skews layers toward
the larger devices, then compares against Megatron-LM's worst-GPU
homogeneous fallback.

Run:  python examples/heterogeneous_tuning.py
"""

import warnings

from repro.api import TuningJob, solve
from repro.hardware import cluster_from_dict

CLUSTER = {
    "groups": [
        {"name": "a100", "gpu": "A100-40GB",
         "num_nodes": 1, "gpus_per_node": 2,
         "inter_node_bandwidth_gbps": 400},
        {"name": "l4", "gpu": "L4",
         "num_nodes": 1, "gpus_per_node": 2,
         "inter_node_bandwidth_gbps": 100},
    ],
    "inter_group_bandwidth_gbps": 100,
}

JOB = TuningJob.for_cluster(
    CLUSTER,
    model="gpt3-1.3b",
    global_batch=16,
    seq_len=2048,
    scale="smoke",       # keep the example fast; use "quick"/"full" for real runs
    parallelism=0,
)


def main() -> None:
    cluster = cluster_from_dict(CLUSTER)
    print(cluster.describe(), "\n")

    # 1. Mist tunes the mixed fleet natively: per-group analyzers,
    #    group-aware stage partitioning, per-group memory budgets.
    report = solve(JOB, solver="mist")
    print(f"Mist evaluated {report.configurations_evaluated} configurations "
          f"in {report.tuning_time_seconds:.1f}s")
    print(report.plan.describe())
    for idx, (stage, peak) in enumerate(
            zip(report.plan.stages, report.result.stage_memory)):
        gpu = cluster.group_named(stage.device_group).gpu
        print(f"  stage {idx} on {gpu.name}: peak "
              f"{peak.peak / 2**30:.2f} GiB of {gpu.memory_gb:.0f} GB")
    print(f"measured: {report.throughput:.2f} samples/s\n")

    # 2. Baselines see the fleet as worst-GPU homogeneous (a warning
    #    explains the fallback) — the throughput gap is the value of
    #    heterogeneity-aware tuning.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        base = solve(JOB, solver="megatron")
    print(f"megatron (worst-GPU fallback): {base.throughput:.2f} samples/s")
    if base.throughput > 0:
        print(f"mist speedup: {report.throughput / base.throughput:.2f}x")


if __name__ == "__main__":
    main()
