#!/usr/bin/env python3
"""The paper's motivational example (Figure 2), end to end.

GPT-3 2.7B on 4 NVIDIA L4 GPUs, sequence length 4096, global batch 8:

  (a) parallelism only            -> every plan OOMs
  (b) full activation checkpoint  -> trains, but recomputes everything
  (c) tuned checkpointing         -> faster
  (d) tuned ZeRO                  -> faster
  (e) tuned offloading            -> faster
  (f) everything co-optimized     -> fastest

Run:  python examples/motivational_example.py
"""

from repro import get_model, make_cluster
from repro.core import MistTuner, SPACE_3D, SPACE_3D_ZERO, SearchSpace
from repro.evaluation import calibrated_interference
from repro.execution import ExecutionEngine, OOMError

MODEL = get_model("gpt3-2.7b")
CLUSTER = make_cluster("L4", 1, 4)
SEQ_LEN = 4096
GLOBAL_BATCH = 8

#: the per-panel search spaces of Figure 2; the plain panels use
#: parallelism without any ZeRO (the paper's Megatron/Alpa baseline)
_PLAIN = SPACE_3D.with_(name="plain", zero_levels=(0,))
PANELS: dict[str, SearchSpace] = {
    "(b) full CKPT": _PLAIN.with_(name="full-ckpt", ckpt_policy="full"),
    "(c) tuned CKPT": _PLAIN.with_(name="tuned-ckpt", tune_ckpt=True),
    "(d) tuned ZeRO": SPACE_3D_ZERO.with_(name="tuned-zero"),
    "(e) tuned offloading": _PLAIN.with_(
        name="tuned-offload",
        oo_grid=(0.0, 0.25, 0.5, 0.75, 1.0),
        ao_grid=(0.0, 0.25, 0.5, 0.75, 1.0),
    ),
    "(f) all co-optimized": SPACE_3D_ZERO.with_(
        name="all", tune_ckpt=True,
        oo_grid=(0.0, 0.25, 0.5, 0.75, 1.0),
        ao_grid=(0.0, 0.25, 0.5, 0.75, 1.0),
    ),
}


def panel_a_all_plans_oom() -> None:
    """(a): without memory optimizations, every parallelism plan OOMs."""
    from repro.baselines.common import pipeline_grids
    from repro.core.plan import PlanValidationError, uniform_plan

    engine = ExecutionEngine(CLUSTER, system="mist")
    survivors = []
    for num_stages, dp, tp, gacc, _ in pipeline_grids(MODEL, CLUSTER,
                                                      GLOBAL_BATCH):
        try:
            plan = uniform_plan(MODEL, CLUSTER, global_batch=GLOBAL_BATCH,
                                gacc=gacc, num_stages=num_stages, dp=dp,
                                tp=tp, ckpt_all=False)
            engine.run(plan, MODEL, seq_len=SEQ_LEN)
            survivors.append(plan)
        except (OOMError, PlanValidationError):
            continue
    if not survivors:
        status = "all plans OOM (as in the paper)"
    else:
        # Our memory model is slightly leaner than the authors' testbed:
        # a few deep-pipeline plans squeeze in, but all are slow.
        status = (f"{len(survivors)} deep-PP plans fit (paper: all OOM); "
                  "the space is still severely memory-constrained")
    print(f"(a) parallelism only          : {status}")


def main() -> None:
    print(f"{MODEL} on {CLUSTER.name}, seq={SEQ_LEN}, B={GLOBAL_BATCH}\n")
    panel_a_all_plans_oom()

    interference = calibrated_interference(pcie_only=True)
    engine = ExecutionEngine(CLUSTER, system="mist")
    baseline = None
    for label, space in PANELS.items():
        tuner = MistTuner(MODEL, CLUSTER, seq_len=SEQ_LEN, space=space,
                          interference=interference)
        tuned = tuner.search(GLOBAL_BATCH)
        if tuned.best_plan is None:
            print(f"{label:30s}: no feasible plan")
            continue
        result = engine.run(tuned.best_plan, MODEL, seq_len=SEQ_LEN)
        if baseline is None:
            baseline = result.throughput
        stage0 = tuned.best_plan.stages[0].describe()
        print(f"{label:30s}: {result.throughput:5.2f} samples/s "
              f"({result.throughput / baseline:4.2f}x)  S="
              f"{tuned.best_plan.num_stages} G={tuned.best_plan.gacc}  "
              f"[{stage0}]")


if __name__ == "__main__":
    main()
