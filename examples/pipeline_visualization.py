#!/usr/bin/env python3
"""Pipeline timelines and inter-microbatch imbalance (Figures 4/10).

Simulates a 4-stage 1F1B pipeline twice — once with balanced stages and
once with first/last-microbatch extras (the a' communication of
Figure 4) — and renders both schedules as ASCII Gantt charts.

Run:  python examples/pipeline_visualization.py
"""

from repro import get_model, make_cluster
from repro.core.plan import StageConfig, TrainingPlan, uniform_plan
from repro.execution import ExecutionEngine, render_timeline

MODEL = get_model("gpt3-6.7b")
CLUSTER = make_cluster("L4", 1, 8)
SEQ_LEN = 2048


def show(title: str, plan: TrainingPlan) -> None:
    engine = ExecutionEngine(CLUSTER, system="mist")
    result = engine.run(plan, MODEL, seq_len=SEQ_LEN)
    print(f"--- {title} ---")
    print(render_timeline(result.pipeline, width=96))
    print(f"throughput: {result.throughput:.2f} samples/s\n")


def main() -> None:
    # balanced pipeline, no per-iteration extras beyond the grad sync
    balanced = uniform_plan(MODEL, CLUSTER, global_batch=32, gacc=8,
                            num_stages=4, dp=2, tp=1, zero=1,
                            ckpt_all=True)
    show("balanced 1F1B (full recompute)", balanced)

    # ZeRO-2 + optimizer offloading: the first/last microbatches carry
    # the optimizer-state streaming and gradient reduce-scatter (a' in
    # Figure 4), visible as longer first/last phases.
    imbalanced = TrainingPlan(
        global_batch=32, gacc=8,
        stages=tuple(
            StageConfig(layers=8, microbatch=2, dp=2, tp=1, zero=2,
                        ckpt=6, oo=0.5, ao=0.25)
            for _ in range(4)
        ),
    )
    show("ZeRO-2 + optimizer offload (imbalanced first/last microbatch)",
         imbalanced)

    # deeper pipeline: more bubbles
    deep = uniform_plan(MODEL, CLUSTER, global_batch=32, gacc=8,
                        num_stages=8, dp=1, tp=1, ckpt_all=True)
    show("8-stage pipeline (bubble-heavy)", deep)


if __name__ == "__main__":
    main()
