#!/usr/bin/env python3
"""Quickstart: auto-tune distributed training through the solver API.

Declares one tuning job — GPT-3 2.7B on a simulated node of 4 NVIDIA
L4 GPUs — solves it with Mist (the (S, G) search fanned across cores),
and compares against the best grid-searched Megatron-LM configuration
through the same registry.

Run:  python examples/quickstart.py
"""

from repro.api import TuningJob, solve
from repro.execution import render_timeline

JOB = TuningJob(
    model="gpt3-2.7b",
    gpu="L4",
    num_gpus=4,
    global_batch=64,
    seq_len=2048,
    scale="quick",
    parallelism=0,  # one worker per CPU core for the (S, G) search
)


def main() -> None:
    print(f"job: {JOB.to_json()}\n")

    # 1. Auto-tune with Mist (memory + parallelism co-optimization).
    report = solve(JOB, solver="mist")
    print(f"Mist tuned {report.configurations_evaluated} configurations "
          f"in {report.tuning_time_seconds:.1f}s")
    print(report.plan.describe(), "\n")

    # 2. The report carries both prediction and simulated measurement —
    #    and serializes: SolveReport.from_json(report.to_json()) is the
    #    same report, so plans can be cached or shipped between runs.
    print(f"predicted: {report.predicted['throughput']:.2f} samples/s, "
          f"measured: {report.throughput:.2f} samples/s")
    print(render_timeline(report.result.pipeline, width=80))
    print()

    # 3. Compare with the best grid-searched Megatron-LM configuration
    #    via the same solver registry.
    baseline = solve(JOB, solver="megatron")
    print(f"Megatron-LM best: {baseline.throughput:.2f} samples/s")
    print(f"Mist:             {report.throughput:.2f} samples/s "
          f"({report.throughput / baseline.throughput:.2f}x)")


if __name__ == "__main__":
    main()
