#!/usr/bin/env python3
"""Quickstart: auto-tune distributed training for a GPT-3 model.

Tunes GPT-3 2.7B on a simulated node of 4 NVIDIA L4 GPUs, executes the
winning plan on the simulated cluster, and compares against the best
grid-searched Megatron-LM configuration.

Run:  python examples/quickstart.py
"""

from repro import MistTuner, get_model, make_cluster
from repro.baselines import MegatronTuner
from repro.evaluation import calibrated_interference
from repro.execution import ExecutionEngine, render_timeline

SEQ_LEN = 2048
GLOBAL_BATCH = 64


def main() -> None:
    model = get_model("gpt3-2.7b")
    cluster = make_cluster("L4", num_nodes=1, gpus_per_node=4)
    print(f"model:   {model}")
    print(f"cluster: {cluster.name}\n")

    # 1. Auto-tune with Mist (memory + parallelism co-optimization).
    interference = calibrated_interference(pcie_only=True)
    tuner = MistTuner(model, cluster, seq_len=SEQ_LEN,
                      interference=interference)
    tuning = tuner.tune(GLOBAL_BATCH)
    print(f"Mist tuned {tuning.configurations_evaluated} configurations "
          f"in {tuning.tuning_time_seconds:.1f}s")
    print(tuning.best_plan.describe(), "\n")

    # 2. Execute one training iteration on the simulated cluster.
    engine = ExecutionEngine(cluster, system="mist")
    result = engine.run(tuning.best_plan, model, seq_len=SEQ_LEN)
    print(result.describe())
    print()
    print(render_timeline(result.pipeline, width=80))
    print()

    # 3. Compare with the best manually grid-searched Megatron-LM config.
    megatron = MegatronTuner(model, cluster, seq_len=SEQ_LEN)
    baseline = megatron.tune(GLOBAL_BATCH)
    print(f"Megatron-LM best: {baseline.throughput:.2f} samples/s")
    print(f"Mist:             {result.throughput:.2f} samples/s "
          f"({result.throughput / baseline.throughput:.2f}x)")


if __name__ == "__main__":
    main()
