"""Tuning-as-a-service demo: coalescing and plan-cache reuse.

Self-contained: starts a `TuningService` on an ephemeral port inside
this process (the same daemon `repro serve` runs), then exercises it
with the blocking `repro.service.Client`:

1. two threads submit the *same* job concurrently -> the daemon runs
   one search and both submissions share it (coalescing);
2. the same job is submitted again -> answered from the shared plan
   cache without any search;
3. `/metrics` counters prove both.

Run:  PYTHONPATH=src python examples/service_client.py
Against a real daemon, drop the in-process startup and point `Client`
at it, e.g. `Client("http://127.0.0.1:8321")` after `repro serve`.
"""

import tempfile
import threading

from repro.api import PlanCache, TuningJob
from repro.service import Client, TuningService

JOB = TuningJob(
    model="gpt3-1.3b", gpu="L4", num_gpus=2, global_batch=16,
    scale="smoke",          # tiny grid: the demo finishes in seconds
    interference="none",    # skip the ~10s interference calibration
)


def main() -> None:
    service = TuningService(workers=2, cache=PlanCache(tempfile.mkdtemp()))
    handle = service.run_in_thread()
    client = Client(handle.url)
    print(f"daemon up at {handle.url} "
          f"(solvers: {', '.join(client.health()['solvers'])})")

    # -- 1. concurrent identical submissions coalesce ---------------------
    records = []

    def submit() -> None:
        records.append(client.submit(JOB, solver="mist"))

    threads = [threading.Thread(target=submit) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for record in records:
        tag = "coalesced onto in-flight search" if record["coalesced"] \
            else "started the search"
        print(f"  submitted {record['id']}: {tag}")

    done = [client.wait(r["id"], timeout=300) for r in records]
    throughput = done[0]["report"]["measured"].get("throughput", 0.0)
    print(f"  both jobs done: {throughput:.2f} samples/s")

    # -- 2. a repeat submission is a pure cache hit -----------------------
    repeat = client.submit(JOB, solver="mist")
    print(f"  repeat submission: status={repeat['status']} "
          f"from_cache={repeat['from_cache']}")

    # -- 3. the metrics counters tell the story ---------------------------
    metrics = client.metrics()
    print("metrics:"
          f" solver invocations={metrics['solver']['invocations']}"
          f" coalesced={metrics['jobs']['coalesced']}"
          f" cache hits={metrics['cache']['hits']}"
          f" misses={metrics['cache']['misses']}")
    assert metrics["solver"]["invocations"] == 1
    assert metrics["jobs"]["coalesced"] == 1
    assert metrics["cache"]["hits"] == 1

    # the fingerprint-keyed plan endpoint serves the cached report too
    report = client.plan(JOB.fingerprint(), solver="mist")
    print(f"GET /plans/{JOB.fingerprint()} -> "
          f"{report.throughput:.2f} samples/s (cached)")

    handle.stop()
    print("daemon stopped")


if __name__ == "__main__":
    main()
