#!/usr/bin/env python3
"""Symbolic analysis walkthrough (paper Figure 9 and Section A.5).

Demonstrates the symbolic machinery directly: declare symbols with
concrete defaults, trace a model, inspect the peak-memory expression,
and evaluate thousands of configurations in one batched call — the
paper highlights this workflow as an educational tool for understanding
how each dimension drives memory and runtime.

Run:  python examples/symbolic_analysis.py
"""

import numpy as np

from repro import get_model
from repro.hardware import get_gpu, make_cluster
from repro.symbolic import SymbolManager, count_nodes, free_symbols
from repro.tracing import trace
from repro.tracing.symbols import hardware_env

def main() -> None:
    # -- 1. symbols with concrete defaults (the paper's Figure 9 API) -----
    gsm = SymbolManager()
    b, s, h = gsm.symbols("b s h", (4, 2048, 2560), integer=True)
    act_bytes = 2 * b * s * h
    print("symbolic activation size:", act_bytes)
    print("with defaults           :",
          gsm.concretize(act_bytes) / 2**20, "MiB\n")

    # -- 2. trace a model: one pass yields closed-form expressions --------
    model = get_model("gpt3-2.7b")
    traced = trace(model, get_gpu("L4"), flash=True)
    peak = traced.memory.peak_bwd
    print(f"peak-memory expression: {count_nodes(peak)} DAG nodes over "
          f"symbols {sorted(free_symbols(peak))}\n")

    # -- 3. batched evaluation: sweep checkpointing x activation offload --
    cluster = make_cluster("L4", 1, 4)
    ckpt = np.arange(0, 33)
    ao = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
    ckpt_grid, ao_grid = np.meshgrid(ckpt, ao, indexing="ij")
    env = dict(
        b=2, s=2048, tp=1, dp=2, l=32, ckpt=ckpt_grid, z1=0, z2=0, z3=0,
        wo=0.0, go=0.0, oo=0.0, ao=ao_grid, gacc=8, inflight=2,
        has_pre=1, has_post=0,
    )
    env.update({k: float(v.reshape(-1)[0])
                for k, v in hardware_env(cluster, 2, 1).items()})
    from repro.symbolic import evaluate

    peaks = evaluate(peak, env) / 2**30
    print("peak memory (GiB) by #checkpointed layers (rows: ckpt 0/16/32)")
    print("          AO=0   0.25   0.5   0.75   1.0")
    for row in (0, 16, 32):
        cells = "  ".join(f"{peaks[row, j]:5.1f}" for j in range(5))
        print(f"ckpt={row:2d}  {cells}")
    print()
    print(f"evaluated {peaks.size} configurations in one batched call — "
          "this is what makes brute-force intra-stage tuning viable.")


if __name__ == "__main__":
    main()
