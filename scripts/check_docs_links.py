#!/usr/bin/env python3
"""Check that relative links in README/docs resolve to real files.

Scans markdown files for ``[text](target)`` links, ignores external
(``http(s)://``, ``mailto:``) and pure-anchor targets, and fails if a
relative target (file or ``file#anchor``) does not exist on disk.
Inline/fenced code spans are stripped first so code examples never
produce false positives.

Usage: python scripts/check_docs_links.py  (from the repo root; exits
non-zero listing every broken link)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE_RE = re.compile(r"`[^`]*`")

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def broken_links(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    text = FENCE_RE.sub("", text)
    text = INLINE_CODE_RE.sub("", text)
    missing = []
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            missing.append(target)
    return missing


def main() -> int:
    failures = 0
    for doc in DOC_FILES:
        if not doc.exists():
            print(f"MISSING DOC FILE: {doc.relative_to(ROOT)}")
            failures += 1
            continue
        for target in broken_links(doc):
            print(f"{doc.relative_to(ROOT)}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"all links resolve in {len(DOC_FILES)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
