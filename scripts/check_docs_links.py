#!/usr/bin/env python3
"""Check that relative links in README/docs resolve to real targets.

Scans markdown files for ``[text](target)`` links, ignores external
(``http(s)://``, ``mailto:``) targets, and fails if

* a relative target (file or ``file#anchor``) does not exist on disk, or
* an anchor (``#section`` or ``file#section``) does not match any
  heading in the target markdown file (GitHub-style slugs).

Inline/fenced code spans are stripped first so code examples never
produce false positives. Coverage: ``README.md`` plus every markdown
file under ``docs/`` (recursively — new pages are checked the moment
they land).

Usage: python scripts/check_docs_links.py  (from the repo root; exits
non-zero listing every broken link)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE_RE = re.compile(r"`[^`]*`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").rglob("*.md"))]


def _strip_code(text: str) -> str:
    return INLINE_CODE_RE.sub("", FENCE_RE.sub("", text))


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    heading = heading.strip().lower()
    heading = re.sub(r"`", "", heading)
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchors the file exposes, with GitHub's duplicate-heading
    suffixes (second "## Running" becomes ``running-1``)."""
    text = FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    seen: dict[str, int] = {}
    slugs = set()
    for heading in HEADING_RE.findall(text):
        slug = github_slug(heading)
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def broken_links(path: Path) -> list[str]:
    text = _strip_code(path.read_text(encoding="utf-8"))
    missing = []
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative, _, anchor = target.partition("#")
        resolved = (path.parent / relative) if relative else path
        if not resolved.exists():
            missing.append(target)
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in heading_slugs(resolved):
                missing.append(f"{target} (no such heading)")
    return missing


def main() -> int:
    failures = 0
    for doc in DOC_FILES:
        if not doc.exists():
            print(f"MISSING DOC FILE: {doc.relative_to(ROOT)}")
            failures += 1
            continue
        for target in broken_links(doc):
            print(f"{doc.relative_to(ROOT)}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"all links resolve in {len(DOC_FILES)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
