#!/usr/bin/env python3
"""CI load smoke for `repro load`: gates, plan identity, tier scaling.

Three proofs against real `repro serve` subprocesses:

1. the smoke trace, driven through the actual CLI entry point
   (`repro load --scale smoke --url ...`): every request must succeed
   with zero 5xx, and p99 latency is gated against the committed
   baseline in benchmarks/baselines/LOAD_smoke.json;
2. plan identity: the daemon's answer for trace cell 0 is bit-identical
   (by plan hash) to an inline in-process solve() of the same job —
   multi-process serving changes *where* a search runs, never what it
   answers;
3. worker-tier scaling: the synthetic (CPU-bound busy-spin) trace is
   replayed against a 1-thread-worker daemon and a 4-process-worker
   daemon. The >=2x throughput gate is asserted only on multi-core
   runners (os.cpu_count() >= 4); single-core boxes print the ratio
   and move on.

Exit code 0 on success.

Usage: python scripts/load_smoke.py  (from the repo root)
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import PlanCache, solve  # noqa: E402
from repro.benchmarking import plan_hash  # noqa: E402
from repro.benchmarking.artifacts import (  # noqa: E402
    LOAD_ARTIFACT,
    LOAD_BASELINE,
)
from repro.cli import main as cli_main  # noqa: E402
from repro.loadgen import (  # noqa: E402
    TRACE_SCALES,
    run_load,
    synthesize_trace,
    validate_load,
)
from repro.service import Client, spawn_daemon  # noqa: E402

# canonical names shared with the CLI defaults and the CI upload step
BASELINE = ROOT / LOAD_BASELINE


def _gated_cli_run(url: str, out: Path) -> int:
    argv = ["load", "--scale", "smoke", "--url", url, "--out", str(out)]
    if BASELINE.exists():
        # generous headroom for shared-runner variance: the gate also
        # ignores sub-0.25s absolute drift (see check_against_baseline)
        argv += ["--baseline", str(BASELINE), "--max-regression", "1.0"]
    else:
        print(f"note: no committed baseline at {BASELINE}; "
              "running validity gates only")
    return cli_main(argv)


def _synthetic_rps(workers: int, worker_mode: str) -> float:
    spec = TRACE_SCALES["synthetic"]
    trace = synthesize_trace(spec)
    with tempfile.TemporaryDirectory(prefix="repro-load-tier-") as cache:
        with spawn_daemon(workers=workers, worker_mode=worker_mode,
                          cache_dir=cache) as daemon:
            result = run_load(daemon.url, spec, trace, mode="closed",
                              concurrency=8, timeout=300.0)
    problems = validate_load(result)
    assert not problems, problems
    return float(result["throughput_rps"])


def main() -> int:
    out = Path(LOAD_ARTIFACT)
    with tempfile.TemporaryDirectory(prefix="repro-load-") as cache_dir:
        with spawn_daemon(workers=2, cache_dir=cache_dir) as daemon:
            print(f"daemon at {daemon.url} (2 thread workers)")
            code = _gated_cli_run(daemon.url, out)
            if code != 0:
                return code

            # the load run already solved cell 0; asking again returns
            # the cached plan, which must hash-match an inline solve
            spec = TRACE_SCALES["smoke"]
            job = spec.job_for_cell(0)
            client = Client(daemon.url, timeout=60)
            served = client.solve(job, solver=spec.solver, timeout=300)
            with tempfile.TemporaryDirectory(
                    prefix="repro-load-inline-") as inline_dir:
                inline = solve(job, spec.solver,
                               cache=PlanCache(inline_dir))
            assert served.plan is not None and inline.plan is not None
            assert plan_hash(served.plan) == plan_hash(inline.plan), \
                "daemon plan diverged from inline solve()"
            print("plan identity: daemon answer hash-matches inline "
                  "solve()")

    cores = os.cpu_count() or 1
    thread_rps = _synthetic_rps(1, "thread")
    process_rps = _synthetic_rps(4, "process")
    ratio = process_rps / thread_rps if thread_rps else float("inf")
    line = (f"worker-tier scaling: thread x1 {thread_rps:.2f} rps -> "
            f"process x4 {process_rps:.2f} rps ({ratio:.2f}x, "
            f"{cores} cores)")
    if cores >= 4:
        assert ratio >= 2.0, line
        print(f"{line} — >=2x gate OK")
    else:
        print(f"{line} — >=2x gate skipped on <4 cores")
    print("load smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
