#!/usr/bin/env python
"""Regenerate the golden plan-hash fixture for the Fig. 16 workload.

Run after an *intentional* cost-model or search change shifts the
winning plans, then commit the updated
``tests/baselines/PLANS_fig16.json`` alongside the change:

    PYTHONPATH=src python scripts/refresh_plan_fixtures.py

The fixture records, per incremental search space, the winning plan's
deterministic hash and predicted objective at smoke scale. The paired
test (``tests/baselines/test_plan_fixtures.py``) asserts both the
vectorized and the interpreted engine still reproduce these values bit
for bit — drift in either engine, or between them, fails with a
per-space diff.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.benchmarking import measure_fig16
from repro.evaluation.workloads import get_scale

FIXTURE = Path(__file__).resolve().parent.parent / "tests" / "baselines" \
    / "PLANS_fig16.json"


def build_fixture(scale_name: str = "smoke") -> dict:
    scale = get_scale(scale_name)
    measured = measure_fig16(scale, prune=True, engine="vectorized")
    spaces = {
        name: {
            "plan_hash": measured["plan_hashes"][name],
            "objective": measured["per_space"][name]["objective"],
        }
        for name in measured["plan_hashes"]
    }
    return {
        "schema": "repro-plan-fixture/1",
        "scale": scale_name,
        "workload": measured["workload"],
        "spaces": spaces,
    }


def main() -> None:
    fixture = build_fixture()
    FIXTURE.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE} ({len(fixture['spaces'])} spaces)")


if __name__ == "__main__":
    main()
