#!/usr/bin/env python3
"""CI smoke test for `repro serve`: boot, solve, prove the cache hit.

Launches the daemon as a real subprocess (`python -m repro serve`) on
an ephemeral port with a throwaway plan-cache directory, then:

1. waits for the startup banner and `GET /healthz`;
2. POSTs a tiny tuning job (smoke scale, no interference calibration)
   and waits for completion — `/metrics` must now carry the
   prune-and-memoize search counters of that solve;
3. POSTs the identical job again and asserts it is answered from the
   shared plan cache with no second solver invocation — per the
   `/metrics` counters;
4. POSTs a search-budget variant of the same workload (different
   fingerprint, so the plan cache misses and a real search runs) and
   asserts the process-wide menu memo served it: memo hits > 0 on the
   repeated search, identical plan;
5. POSTs a 2-cell campaign whose cells are the *same new* job twice:
   the duplicate must coalesce onto one in-flight search (per-cell
   `coalesced` flag + /metrics); repeats the campaign and asserts both
   cells are answered from the plan cache with no new invocation;
6. POSTs ``/replan`` with a degraded-link delta: the daemon must
   warm-start from the cached incumbent plan and answer within the
   latency budget (per the ``/metrics`` ``replan`` section);
7. shuts the daemon down.

Exit code 0 on success. Runs in ~10s.

Usage: python scripts/service_smoke.py  (from the repo root)
"""

from __future__ import annotations

import dataclasses
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import TuningJob  # noqa: E402
from repro.hardware import ClusterDelta  # noqa: E402
from repro.service import Client, spawn_daemon  # noqa: E402

JOB = TuningJob(model="gpt3-1.3b", gpu="L4", num_gpus=4, global_batch=16,
                scale="smoke", interference="none")
#: same workload, different free-form options -> different fingerprint
#: (parallelism alone would not change it): misses the plan cache but
#: replays every memoized stage subproblem from the first solve
VARIANT_JOB = dataclasses.replace(JOB, parallelism=2,
                                  options={"note": "memo-proof"})
#: a third fingerprint, submitted twice in one campaign batch: the
#: duplicate must coalesce, and a repeat campaign must be pure cache
CAMPAIGN_JOB = dataclasses.replace(JOB, global_batch=8)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as cache_dir:
        with spawn_daemon(workers=1, cache_dir=cache_dir) as daemon:
            client = Client(daemon.url, timeout=30)

            assert client.health()["status"] == "ok"
            print(f"daemon healthy at {daemon.url}")

            start = time.perf_counter()
            first = client.solve(JOB, solver="mist", timeout=300)
            cold = time.perf_counter() - start
            assert first.found, "smoke job found no feasible plan"
            assert not first.from_cache
            print(f"cold solve: {first.throughput:.2f} samples/s "
                  f"in {cold:.1f}s")

            metrics = client.metrics()
            search = metrics["search"]
            assert search["cells_total"] > 0, metrics
            assert search["cells_explored"] > 0, metrics
            assert search["memo_misses"] > 0, metrics
            print(f"search counters: {search['cells_explored']} explored / "
                  f"{search['cells_pruned']} pruned / "
                  f"{search['configs_prefiltered']} prefiltered")

            start = time.perf_counter()
            second = client.solve(JOB, solver="mist", timeout=30)
            warm = time.perf_counter() - start
            assert second.from_cache, "second request missed the plan cache"
            print(f"warm solve: served from cache in {warm:.3f}s")

            metrics = client.metrics()
            assert metrics["solver"]["invocations"] == 1, metrics
            assert metrics["cache"]["hits"] == 1, metrics
            assert metrics["cache"]["misses"] == 1, metrics
            print(f"metrics prove it: invocations=1 hits=1 "
                  f"(cold {cold:.1f}s -> warm {warm:.3f}s)")

            # a repeated search on the same workload (budget variant ->
            # cache miss) must be served by the process-wide menu memo
            start = time.perf_counter()
            third = client.solve(VARIANT_JOB, solver="mist", timeout=300)
            memoized = time.perf_counter() - start
            assert not third.from_cache
            assert third.plan == first.plan, "memoized plan drifted"
            metrics = client.metrics()
            assert metrics["solver"]["invocations"] == 2, metrics
            assert metrics["search"]["memo_hits"] > 0, metrics
            print(f"memo proves it: memo_hits="
                  f"{metrics['search']['memo_hits']} on the repeated "
                  f"search ({memoized:.1f}s)")

            # a 2-cell campaign of one new job submitted twice: the
            # duplicate coalesces onto a single in-flight search
            camp = client.submit_campaign(
                [(CAMPAIGN_JOB, "mist"), (CAMPAIGN_JOB, "mist")],
                name="smoke-campaign")
            final = client.wait_campaign(camp["id"], timeout=300)
            assert final["status"] == "done", final
            counters = final["counters"]
            assert counters["cells"] == 2, final
            assert counters["coalesced"] == 1, final
            metrics = client.metrics()
            assert metrics["campaigns"]["submitted"] == 1, metrics
            assert metrics["campaigns"]["cells"] == 2, metrics
            assert metrics["solver"]["invocations"] == 3, metrics
            print(f"campaign coalescing: 2 cells -> 1 search "
                  f"(coalesced={counters['coalesced']})")

            # the same campaign again: both cells pure plan-cache hits
            repeat = client.submit_campaign(
                [(CAMPAIGN_JOB, "mist"), (CAMPAIGN_JOB, "mist")],
                name="smoke-campaign-repeat")
            final = client.wait_campaign(repeat["id"], timeout=30)
            assert final["status"] == "done", final
            assert final["counters"]["from_cache"] == 2, final
            metrics = client.metrics()
            assert metrics["solver"]["invocations"] == 3, metrics
            assert metrics["campaigns"]["submitted"] == 2, metrics
            print("campaign cache: repeat batch served with no new "
                  "invocation")

            # elastic replan: POST /replan warm-starts from the plan
            # the cache already holds for JOB and answers in-budget
            rec = client.replan(JOB, ClusterDelta.degrade_link(0.5),
                                budget_seconds=120)
            assert rec["status"] == "done", rec
            extra = rec["report"]["extra"]["replan"]
            assert extra["warm"] is True, rec
            metrics = client.metrics()
            assert metrics["replan"]["requests"] == 1, metrics
            assert metrics["replan"]["warm"] == 1, metrics
            assert metrics["replan"]["within_budget"] == 1, metrics
            print("replan: warm-started from the incumbent, "
                  "answered within budget")
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
