"""Mist reproduction: memory-parallelism co-optimization for LLM training.

Reproduction of *Mist: Efficient Distributed Training of Large Language
Models via Memory-Parallelism Co-Optimization* (Zhu et al., EuroSys
2025) as a pure-Python library with a discrete-event cluster simulator
standing in for the GPU testbed.

Quickstart — declare a job, solve it through the registry::

    from repro.api import TuningJob, solve

    job = TuningJob(model="gpt3-2.7b", gpu="L4", num_gpus=4,
                    global_batch=64, seq_len=2048, parallelism=0)
    report = solve(job, solver="mist")        # or "megatron", "aceso", ...
    print(report.plan.describe())
    print(f"{report.throughput:.2f} samples/s")
    saved = report.to_json()                  # JSON round-trippable

Lower-level access (the tuner directly)::

    from repro import MistTuner, get_model, make_cluster
    from repro.execution import ExecutionEngine

    model = get_model("gpt3-2.7b")
    cluster = make_cluster("L4", 1, 4)
    tuner = MistTuner(model, cluster, seq_len=2048)
    plan = tuner.search(64, parallelism=0).best_plan
    result = ExecutionEngine(cluster).run(plan, model, seq_len=2048)
    print(result.describe())

Subpackages: :mod:`repro.api` (declarative jobs + solver registry),
:mod:`repro.campaigns` (declarative evaluation matrices: executors,
resumable manifests, speedup aggregation),
:mod:`repro.symbolic` (expression engine),
:mod:`repro.hardware`, :mod:`repro.models`, :mod:`repro.costmodel`,
:mod:`repro.tracing`, :mod:`repro.execution` (the simulated cluster),
:mod:`repro.core` (analyzer + hierarchical tuner),
:mod:`repro.baselines`, :mod:`repro.evaluation`.
"""

from .core import (
    MistTuner,
    SPACE_MIST,
    SearchSpace,
    StageConfig,
    SymbolicPerformanceAnalyzer,
    TrainingPlan,
    TuningResult,
)
from .hardware import (
    ClusterSpec,
    DeviceGroup,
    GPUSpec,
    HeterogeneousCluster,
    cluster_from_dict,
    get_gpu,
    make_cluster,
)
from .models import ModelConfig, get_model, list_models
from . import api

__version__ = "1.9.0"

__all__ = [
    "ClusterSpec",
    "DeviceGroup",
    "GPUSpec",
    "HeterogeneousCluster",
    "MistTuner",
    "ModelConfig",
    "SPACE_MIST",
    "SearchSpace",
    "StageConfig",
    "SymbolicPerformanceAnalyzer",
    "TrainingPlan",
    "TuningResult",
    "__version__",
    "api",
    "cluster_from_dict",
    "get_gpu",
    "get_model",
    "list_models",
    "make_cluster",
]
