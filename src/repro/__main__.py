"""Entry point for ``python -m repro``."""

import sys

from repro.cli import main

# The guard matters: multiprocessing's spawn start method re-imports the
# parent's main module in each worker, and an unguarded sys.exit(main())
# would re-run the CLI inside every service worker process.
if __name__ == "__main__":
    sys.exit(main())
