"""``repro check`` — dataflow-powered invariant checker for this repo.

Static analysis that enforces the contracts the test suite cannot see
per-commit: determinism of fingerprint/memo/serialization paths,
``to_dict``/``from_dict`` agreement, a non-blocking service event loop,
lock discipline around shared state, and registry-mediated access to
solver/executor implementations.

Since PR 10 the checker is built on a small intraprocedural dataflow
engine: a shared CFG builder (:mod:`~repro.analysis.cfg`),
reaching-definitions / use-def chains and kind-aware taint tracking
(:mod:`~repro.analysis.dataflow`), and a project-wide call graph
(:mod:`~repro.analysis.callgraph`). On top of it ride the
``fingerprint-taint``, ``lock-order``, and ``exception-flow`` rule
families, plus the ported ``determinism`` rule (a strict superset of
its pre-engine findings).

Rules are plain classes registered with
:func:`~repro.analysis.registry.register_rule` — the same decorator
pattern as ``@register_solver`` — and run by
:func:`~repro.analysis.runner.run_check`. Findings are silenced inline
with ``# repro: allow[rule-id] <justification>``; stale allows are
themselves reported. Output formats: text, JSON, and SARIF 2.1.0
(:mod:`~repro.analysis.sarif`) for GitHub code scanning. See
``docs/CHECKS.md`` for the rule catalog.
"""

from __future__ import annotations

from .callgraph import CallGraph, FunctionInfo
from .cfg import CFG, Block, build_cfg, iter_functions
from .config import DEFAULT_CONFIG, CheckConfig, path_matches
from .dataflow import (
    Definition,
    ReachingDefinitions,
    TaintAnalysis,
    TaintSource,
    TaintSpec,
    UseDef,
    use_def_chains,
)
from .findings import Finding
from .project import ModuleSource, Project, iter_python_files
from .registry import (
    RuleNotFoundError,
    get_rule,
    register_rule,
    rule_names,
    rule_registry,
)
from .runner import CheckResult, check_project, run_check
from .sarif import to_sarif
from .suppressions import UNUSED_RULE_ID, SuppressionIndex

# importing the subpackage registers every built-in rule
from . import rules as rules  # noqa: F401

__all__ = [
    "Block",
    "CFG",
    "CallGraph",
    "CheckConfig",
    "CheckResult",
    "DEFAULT_CONFIG",
    "Definition",
    "Finding",
    "FunctionInfo",
    "ModuleSource",
    "Project",
    "ReachingDefinitions",
    "RuleNotFoundError",
    "SuppressionIndex",
    "TaintAnalysis",
    "TaintSource",
    "TaintSpec",
    "UNUSED_RULE_ID",
    "UseDef",
    "build_cfg",
    "check_project",
    "get_rule",
    "iter_functions",
    "iter_python_files",
    "path_matches",
    "register_rule",
    "rule_names",
    "rule_registry",
    "run_check",
    "to_sarif",
    "use_def_chains",
]
