"""``repro check`` — AST-based invariant checker for this repo.

Static analysis that enforces the contracts the test suite cannot see
per-commit: determinism of fingerprint/memo/serialization paths,
``to_dict``/``from_dict`` agreement, a non-blocking service event loop,
lock discipline around shared state, and registry-mediated access to
solver/executor implementations.

Rules are plain classes registered with
:func:`~repro.analysis.registry.register_rule` — the same decorator
pattern as ``@register_solver`` — and run by
:func:`~repro.analysis.runner.run_check`. Findings are silenced inline
with ``# repro: allow[rule-id] <justification>``; stale allows are
themselves reported. See ``docs/CHECKS.md`` for the rule catalog.
"""

from __future__ import annotations

from .config import DEFAULT_CONFIG, CheckConfig, path_matches
from .findings import Finding
from .project import ModuleSource, Project, iter_python_files
from .registry import (
    RuleNotFoundError,
    get_rule,
    register_rule,
    rule_names,
    rule_registry,
)
from .runner import CheckResult, check_project, run_check
from .suppressions import UNUSED_RULE_ID, SuppressionIndex

# importing the subpackage registers every built-in rule
from . import rules as rules  # noqa: F401

__all__ = [
    "CheckConfig",
    "CheckResult",
    "DEFAULT_CONFIG",
    "Finding",
    "ModuleSource",
    "Project",
    "RuleNotFoundError",
    "SuppressionIndex",
    "UNUSED_RULE_ID",
    "check_project",
    "get_rule",
    "iter_python_files",
    "path_matches",
    "register_rule",
    "rule_names",
    "rule_registry",
    "run_check",
]
