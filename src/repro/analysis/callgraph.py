"""Project-wide call graph over a parsed :class:`Project`.

Functions are keyed by ``<module path>::<qualname>`` (methods dotted:
``server.py::TuningService.submit``). Resolution is name-based and
deliberately conservative — an edge is only added when the target is
unambiguous:

* direct calls to module-level functions, same module or via
  ``import`` / ``from ... import`` aliases;
* ``self.m(...)`` / ``cls.m(...)`` to a method of the enclosing class;
* ``ClassName(...)`` to ``ClassName.__init__``;
* ``obj.m(...)`` when exactly **one** class in the project defines
  ``m`` (the unique-method heuristic — ambiguous names add no edge);
* function *references* passed as arguments
  (``run_in_executor(None, self.submit, job)``,
  ``functools.partial(f, ...)``) count as potential calls of the
  referenced function — the executor-dispatch pattern this repo uses
  everywhere.

``@register_solver("mist")``-style decorations are indexed too:
:meth:`CallGraph.reachable_from` treats a registered class or function
as invoked wherever the reachable set touches that family's registry
(a ``get_<family>``/``make_<family>``/``*_registry`` call or a
first-argument dispatch like ``solve(job, "mist")`` is opaque to name
resolution, so the closure conservatively adds every registered
implementation of the family).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .project import ModuleSource, Project, dotted_name

__all__ = ["CallGraph", "FunctionInfo"]


@dataclass
class FunctionInfo:
    """One function definition the graph knows about."""

    qualname: str  # "<module path>::<dotted qualname>"
    module: ModuleSource
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    class_name: "str | None" = None
    #: ``(family, name)`` pairs from ``@register_<family>("name")``
    registrations: list = field(default_factory=list)


def _register_decorations(node: ast.AST) -> list:
    """``(family, registered-name)`` pairs from ``@register_*`` calls."""
    out = []
    for decorator in getattr(node, "decorator_list", []):
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func) or ""
        short = name.split(".")[-1]
        if not short.startswith("register_"):
            continue
        family = short[len("register_"):]
        registered = ""
        if decorator.args and isinstance(decorator.args[0], ast.Constant):
            value = decorator.args[0].value
            if isinstance(value, str):
                registered = value
        out.append((family, registered))
    return out


class CallGraph:
    """Name-resolved call edges plus registry-indirection metadata."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: dict[str, set] = {}
        #: family -> registered name -> owning def/class qualname
        self.registrations: dict[str, dict] = {}
        #: class qualname -> set of its method qualnames
        self.class_methods: dict[str, set] = {}
        #: bare method name -> set of qualnames (unique-name heuristic)
        self._method_index: dict[str, set] = {}
        #: module-level function name -> per-module qualname
        self._module_funcs: dict[str, dict] = {}
        #: module path -> {alias: imported dotted target}
        self._imports: dict[str, dict] = {}
        #: function qualname -> families whose registry it touches
        self.registry_users: dict[str, set] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        for module in project.modules:
            graph._index_module(module)
        for info in list(graph.functions.values()):
            graph._resolve_function(info)
        return graph

    def _index_module(self, module: ModuleSource) -> None:
        self._module_funcs[module.path] = {}
        self._imports[module.path] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self._imports[module.path][bound] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    bound = alias.asname or alias.name
                    self._imports[module.path][bound] = \
                        f"{stmt.module}.{alias.name}"

        def index(body: list, prefix: str, class_name: "str | None",
                  class_qual: "str | None") -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    qual = f"{module.path}::{prefix}{node.name}"
                    info = FunctionInfo(
                        qualname=qual, module=module, node=node,
                        class_name=class_name,
                        registrations=_register_decorations(node))
                    self.functions[qual] = info
                    if not prefix:
                        self._module_funcs[module.path][node.name] = qual
                    if class_qual is not None and prefix.count(".") == 1:
                        self.class_methods[class_qual].add(qual)
                        self._method_index.setdefault(
                            node.name, set()).add(qual)
                    for family, registered in info.registrations:
                        self.registrations.setdefault(
                            family, {})[registered] = qual
                    index(node.body, f"{prefix}{node.name}.", class_name,
                          None)
                elif isinstance(node, ast.ClassDef):
                    qual = f"{module.path}::{prefix}{node.name}"
                    self.class_methods.setdefault(qual, set())
                    for family, registered in _register_decorations(node):
                        self.registrations.setdefault(
                            family, {})[registered] = qual
                    index(node.body, f"{prefix}{node.name}.", node.name,
                          qual)

        index(module.tree.body, "", None, None)

    # -- resolution --------------------------------------------------------

    def _class_qual(self, info: FunctionInfo) -> "str | None":
        if info.class_name is None:
            return None
        qual, _, _ = info.qualname.rpartition(".")
        return qual

    def _resolve_name(self, module_path: str, name: str) -> "str | None":
        """A bare callable name -> function qualname, if unambiguous."""
        local = self._module_funcs.get(module_path, {}).get(name)
        if local is not None:
            return local
        imported = self._imports.get(module_path, {}).get(name)
        if imported is not None:
            target_module, _, target_name = imported.rpartition(".")
            suffix = target_module.replace(".", "/") + ".py"
            for path, funcs in self._module_funcs.items():
                if path.endswith(suffix) and target_name in funcs:
                    return funcs[target_name]
            # imported class: constructor edge
            class_suffix = f"::{target_name}"
            for qual in self.class_methods:
                if (qual.endswith(class_suffix)
                        and qual.split("::")[0].endswith(suffix)):
                    init = f"{qual}.__init__"
                    return init if init in self.functions else None
        return None

    def resolve_call(self, info: FunctionInfo,
                     call: ast.Call) -> set:
        """Target qualnames of one call expression (may be empty)."""
        out: set = set()
        func = call.func
        name = dotted_name(func)
        module_path = info.module.path
        if isinstance(func, ast.Name):
            target = self._resolve_name(module_path, func.id)
            if target is not None:
                out.add(target)
            # ClassName(...) in the same module
            class_qual = f"{module_path}::{func.id}"
            if class_qual in self.class_methods:
                init = f"{class_qual}.__init__"
                if init in self.functions:
                    out.add(init)
        elif isinstance(func, ast.Attribute):
            base = dotted_name(func.value)
            if base in ("self", "cls") and info.class_name is not None:
                class_qual = self._class_qual(info)
                candidate = f"{class_qual}.{func.attr}"
                if candidate in self.functions:
                    out.add(candidate)
            elif base is not None and "." not in base:
                # ClassName.m or imported-module.m
                class_qual = f"{module_path}::{base}"
                candidate = f"{class_qual}.{func.attr}"
                if candidate in self.functions:
                    out.add(candidate)
                imported = self._imports.get(module_path, {}).get(base)
                if imported is not None:
                    suffix = imported.replace(".", "/") + ".py"
                    for path, funcs in self._module_funcs.items():
                        if path.endswith(suffix) and func.attr in funcs:
                            out.add(funcs[func.attr])
            if not out:
                # unique-method heuristic for obj.m(...)
                candidates = self._method_index.get(func.attr, set())
                if len(candidates) == 1:
                    out |= candidates
        del name
        return out

    def _callable_refs(self, info: FunctionInfo, call: ast.Call) -> set:
        """Function refs passed *as arguments* (executor dispatch)."""
        out: set = set()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name):
                target = self._resolve_name(info.module.path, arg.id)
                if target is not None:
                    out.add(target)
            elif isinstance(arg, ast.Attribute):
                base = dotted_name(arg.value)
                if base in ("self", "cls") and info.class_name is not None:
                    candidate = f"{self._class_qual(info)}.{arg.attr}"
                    if candidate in self.functions:
                        out.add(candidate)
        return out

    def _resolve_function(self, info: FunctionInfo) -> None:
        edges = self.edges.setdefault(info.qualname, set())
        families = self.registry_users.setdefault(info.qualname, set())
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            edges |= self.resolve_call(info, node)
            edges |= self._callable_refs(info, node)
            name = dotted_name(node.func) or ""
            short = name.split(".")[-1]
            for family in self.registrations:
                if short in (f"get_{family}", f"make_{family}",
                             f"{family}_registry", f"{family}_names"):
                    families.add(family)

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> set:
        return set(self.edges.get(qualname, set()))

    def _registered_functions(self, family: str) -> set:
        """Every function a family's registrations can invoke."""
        out: set = set()
        for qual in self.registrations.get(family, {}).values():
            if qual in self.functions:
                out.add(qual)
            out |= self.class_methods.get(qual, set())
        return out

    def reachable_from(self, roots: "set | list", *,
                       follow_registry: bool = True) -> set:
        """Transitive closure over edges (+ registry indirection).

        When a visited function touches a family's registry, every
        implementation registered under that family joins the
        frontier — a dispatch-by-name cannot be resolved further, so
        all registered targets are conservatively reachable.
        """
        seen: set = set()
        frontier = [qual for qual in roots if qual in self.functions]
        while frontier:
            qual = frontier.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for callee in self.edges.get(qual, set()):
                if callee not in seen:
                    frontier.append(callee)
            if follow_registry:
                for family in self.registry_users.get(qual, set()):
                    for target in self._registered_functions(family):
                        if target not in seen:
                            frontier.append(target)
        return seen

    def by_suffix(self, suffix: str) -> set:
        """Qualnames whose dotted part equals or ends with ``suffix``."""
        out = set()
        for qual in self.functions:
            _, _, dotted = qual.partition("::")
            if dotted == suffix or dotted.endswith("." + suffix):
                out.add(qual)
        return out
