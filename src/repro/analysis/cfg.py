"""Intraprocedural control-flow graphs for the dataflow engine.

A :class:`CFG` is built per function (or module top level) and is the
substrate every dataflow analysis in :mod:`repro.analysis.dataflow`
runs on. Blocks hold *elements* — simple statements, branch condition
expressions, loop headers, ``withitem``\\ s, ``ExceptHandler`` heads —
in execution order, and edges over-approximate control flow (a may
analysis on top of this graph can miss nothing that can actually
happen, at the cost of some paths that cannot).

Shapes handled: ``if``/``elif``/``else``, ``while``/``for`` (+
``else``, ``break``, ``continue``), ``try``/``except``/``else``/
``finally`` (every block inside a ``try`` body gets an edge to every
handler head — an exception can occur at any statement), ``with`` /
``async with``, ``match``, ``return``/``raise``, and ``async def``
bodies (``await`` is an ordinary expression here; the lock-order rule
gives it meaning). Comprehensions stay inside their element — their
internal iteration is expression-level and handled by the transfer
functions, not the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = ["CFG", "Block", "FunctionLike", "build_cfg", "iter_functions"]

#: AST nodes a CFG can be built for
FunctionLike = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


@dataclass
class Block:
    """One basic block: elements in execution order plus edges."""

    id: int
    label: str
    elements: list = field(default_factory=list)
    succs: list = field(default_factory=list)
    preds: list = field(default_factory=list)


class CFG:
    """Control-flow graph of one function (or module) body."""

    def __init__(self, node: FunctionLike, name: str):
        self.node = node
        self.name = name
        self.blocks: dict[int, Block] = {}
        self.entry = self._new("entry").id
        self.exit = self._new("exit").id

    def _new(self, label: str) -> Block:
        block = Block(id=len(self.blocks), label=label)
        self.blocks[block.id] = block
        return block

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def block_order(self) -> list[int]:
        """Block ids in creation order (entry first, stable)."""
        return sorted(self.blocks)

    def iter_elements(self) -> "Iterator[tuple[Block, ast.AST]]":
        """Every (block, element) pair in block/element order."""
        for bid in self.block_order():
            block = self.blocks[bid]
            for element in block.elements:
                yield block, element


class _LoopCtx:
    """break/continue targets of the innermost enclosing loop."""

    def __init__(self, head: int, after: int):
        self.head = head
        self.after = after


class _TryCtx:
    """Blocks that may raise into this try's handlers."""

    def __init__(self, handler_heads: list):
        self.handler_heads = handler_heads
        self.raising_blocks: set = set()


class _Builder:
    def __init__(self, node: FunctionLike, name: str):
        self.cfg = CFG(node, name)
        self.loops: list[_LoopCtx] = []
        self.tries: list[_TryCtx] = []
        #: innermost pending ``finally`` entry, for abrupt exits
        self.finals: list[int] = []

    # -- plumbing ----------------------------------------------------------

    def _block(self, label: str) -> Block:
        return self.cfg._new(label)

    def _add(self, cur: Block, element: ast.AST) -> None:
        cur.elements.append(element)
        # an exception can occur at any element: wire the block into
        # every active try's handler set (done lazily at try close)
        for ctx in self.tries:
            ctx.raising_blocks.add(cur.id)

    def _abrupt_target(self) -> int:
        """Where return/raise transfers control: finally, else exit."""
        return self.finals[-1] if self.finals else self.cfg.exit

    # -- statement lists ---------------------------------------------------

    def build(self) -> CFG:
        entry = self.cfg.blocks[self.cfg.entry]
        node = self.cfg.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # parameters are definitions at entry; represent them by
            # the arguments node so transfer functions can bind them
            self._add(entry, node.args)
            body = node.body
        else:
            body = node.body
        last = self._stmts(body, entry)
        if last is not None:
            self.cfg._edge(last.id, self.cfg.exit)
        return self.cfg

    def _stmts(self, body: list, cur: "Block | None") -> "Block | None":
        for stmt in body:
            if cur is None:
                # code after return/raise/break: unreachable block
                cur = self._block("unreachable")
            cur = self._stmt(stmt, cur)
        return cur

    # -- single statements -------------------------------------------------

    def _stmt(self, stmt: ast.stmt, cur: Block) -> "Block | None":
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, ast.While):
            return self._while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cur)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._add(cur, stmt)
            self.cfg._edge(cur.id, self._abrupt_target())
            if self.finals:
                # conservatively also reach the exit directly so
                # may-analyses see the abrupt path without the finally
                self.cfg._edge(cur.id, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            self._add(cur, stmt)
            if self.loops:
                self.cfg._edge(cur.id, self.loops[-1].after)
            return None
        if isinstance(stmt, ast.Continue):
            self._add(cur, stmt)
            if self.loops:
                self.cfg._edge(cur.id, self.loops[-1].head)
            return None
        # simple statement (incl. nested def/class, which bind a name
        # but whose bodies are separate CFGs)
        self._add(cur, stmt)
        return cur

    def _if(self, stmt: ast.If, cur: Block) -> "Block | None":
        self._add(cur, stmt.test)
        after = self._block("if-join")
        then = self._block("if-then")
        self.cfg._edge(cur.id, then.id)
        then_end = self._stmts(stmt.body, then)
        if then_end is not None:
            self.cfg._edge(then_end.id, after.id)
        if stmt.orelse:
            other = self._block("if-else")
            self.cfg._edge(cur.id, other.id)
            other_end = self._stmts(stmt.orelse, other)
            if other_end is not None:
                self.cfg._edge(other_end.id, after.id)
        else:
            self.cfg._edge(cur.id, after.id)
        return after if after.preds else None

    def _while(self, stmt: ast.While, cur: Block) -> Block:
        head = self._block("while-head")
        self.cfg._edge(cur.id, head.id)
        self._add(head, stmt.test)
        after = self._block("while-after")
        body = self._block("while-body")
        self.cfg._edge(head.id, body.id)
        self.loops.append(_LoopCtx(head.id, after.id))
        body_end = self._stmts(stmt.body, body)
        self.loops.pop()
        if body_end is not None:
            self.cfg._edge(body_end.id, head.id)
        if stmt.orelse:
            other = self._block("while-else")
            self.cfg._edge(head.id, other.id)
            other_end = self._stmts(stmt.orelse, other)
            if other_end is not None:
                self.cfg._edge(other_end.id, after.id)
        else:
            self.cfg._edge(head.id, after.id)
        return after

    def _for(self, stmt: "ast.For | ast.AsyncFor", cur: Block) -> Block:
        head = self._block("for-head")
        self.cfg._edge(cur.id, head.id)
        # the For node itself is the element: it defines its target
        # from its iter on every entry into the body
        self._add(head, stmt)
        after = self._block("for-after")
        body = self._block("for-body")
        self.cfg._edge(head.id, body.id)
        self.loops.append(_LoopCtx(head.id, after.id))
        body_end = self._stmts(stmt.body, body)
        self.loops.pop()
        if body_end is not None:
            self.cfg._edge(body_end.id, head.id)
        if stmt.orelse:
            other = self._block("for-else")
            self.cfg._edge(head.id, other.id)
            other_end = self._stmts(stmt.orelse, other)
            if other_end is not None:
                self.cfg._edge(other_end.id, after.id)
        else:
            self.cfg._edge(head.id, after.id)
        return after

    def _with(self, stmt: "ast.With | ast.AsyncWith",
              cur: Block) -> "Block | None":
        for item in stmt.items:
            self._add(cur, item)
        return self._stmts(stmt.body, cur)

    def _try(self, stmt: ast.Try, cur: Block) -> "Block | None":
        after = self._block("try-join")
        final_entry: "Block | None" = None
        if stmt.finalbody:
            final_entry = self._block("finally")
            self.finals.append(final_entry.id)
        # handler heads exist before the body so raising blocks can be
        # wired to them once the body is built
        heads = []
        for handler in stmt.handlers:
            head = self._block(f"except:{_handler_label(handler)}")
            self._add(head, handler)
            heads.append(head)
        ctx = _TryCtx([head.id for head in heads])
        self.tries.append(ctx)
        body = self._block("try-body")
        self.cfg._edge(cur.id, body.id)
        body_end = self._stmts(stmt.body, body)
        self.tries.pop()
        for bid in sorted(ctx.raising_blocks):
            for head_id in ctx.handler_heads:
                self.cfg._edge(bid, head_id)
        # no handlers (try/finally): the raising path goes to finally
        if not heads and final_entry is not None:
            for bid in sorted(ctx.raising_blocks):
                self.cfg._edge(bid, final_entry.id)
        success_end = body_end
        if stmt.orelse and body_end is not None:
            other = self._block("try-else")
            self.cfg._edge(body_end.id, other.id)
            success_end = self._stmts(stmt.orelse, other)
        ends = [] if success_end is None else [success_end]
        for handler, head in zip(stmt.handlers, heads):
            handler_end = self._stmts(handler.body, head)
            if handler_end is not None:
                ends.append(handler_end)
        if stmt.finalbody:
            self.finals.pop()
            assert final_entry is not None
            for end in ends:
                self.cfg._edge(end.id, final_entry.id)
            final_end = self._stmts(stmt.finalbody, final_entry)
            if final_end is None:
                return None
            self.cfg._edge(final_end.id, after.id)
            # the exceptional route re-raises after the finally body
            self.cfg._edge(final_end.id, self.cfg.exit)
            return after
        for end in ends:
            self.cfg._edge(end.id, after.id)
        return after if after.preds else None

    def _match(self, stmt: ast.Match, cur: Block) -> "Block | None":
        self._add(cur, stmt.subject)
        after = self._block("match-join")
        matched_all = False
        for case in stmt.cases:
            head = self._block("case")
            self.cfg._edge(cur.id, head.id)
            # the match_case binds its pattern captures
            self._add(head, case)
            end = self._stmts(case.body, head)
            if end is not None:
                self.cfg._edge(end.id, after.id)
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                matched_all = True
        if not matched_all:
            self.cfg._edge(cur.id, after.id)
        return after if after.preds else None


def _handler_label(handler: ast.ExceptHandler) -> str:
    if handler.type is None:
        return "bare"
    return ast.dump(handler.type)[:24] if not isinstance(
        handler.type, ast.Name) else handler.type.id


def build_cfg(node: FunctionLike, name: str = "") -> CFG:
    """Build the CFG of one function (or module) body."""
    if not name:
        name = getattr(node, "name", "<module>")
    return _Builder(node, name).build()


def iter_functions(tree: ast.Module) -> (
        "Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]"):
    """Yield ``(qualname, def-node)`` for every function in a module.

    Nested functions and methods get dotted qualnames
    (``Class.method``, ``outer.inner``) matching :mod:`callgraph`'s
    naming.
    """

    def walk(body: list, prefix: str) -> (
            "Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]"):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                yield qual, node
                yield from walk(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.")

    yield from walk(tree.body, "")
