"""Where each rule family applies: the project's invariant surface map.

Path patterns are matched against a module's POSIX-style path:

* a pattern ending in ``/`` matches any module under that directory
  (``repro/service/`` matches ``src/repro/service/server.py``);
* any other pattern is a path suffix (``repro/api/job.py`` matches
  ``src/repro/api/job.py`` and ``/checkout/src/repro/api/job.py``).

The defaults encode this repo's contracts; tests (and downstream
embedders) construct a custom :class:`CheckConfig` to point rules at
fixture trees instead.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CheckConfig", "DEFAULT_CONFIG", "path_matches"]


def path_matches(rel: str, patterns: tuple[str, ...]) -> bool:
    """True when ``rel`` (POSIX path) matches any pattern."""
    probe = "/" + rel.replace("\\", "/")
    for pattern in patterns:
        if pattern.endswith("/"):
            if f"/{pattern}" in probe + "/":
                return True
        elif probe.endswith("/" + pattern):
            return True
    return False


@dataclass(frozen=True)
class CheckConfig:
    """Per-rule path scoping (see module docstring for pattern syntax)."""

    #: fingerprint / memo-key / serialization code paths: anything
    #: wall-clock, RNG- or hash-order-dependent here corrupts the
    #: PlanCache, campaign resume, or the CI perf gate
    determinism_paths: tuple[str, ...] = (
        "repro/api/job.py",
        "repro/api/cache.py",
        "repro/api/report.py",
        "repro/core/memo.py",
        "repro/core/plan.py",
        "repro/campaigns/spec.py",
        "repro/campaigns/manifest.py",
        "repro/service/state.py",
    )
    #: modules whose ``async def`` bodies share the service event loop
    async_paths: tuple[str, ...] = (
        "repro/service/",
    )
    #: hot batched-evaluation modules that must stay loop-free over
    #: config-menu rows: the vectorized cost-model engine's speed rests
    #: on whole-menu numpy calls, and a stray per-config Python loop
    #: here silently re-interprets the menu row by row
    vectorization_paths: tuple[str, ...] = (
        "repro/core/intra_stage.py",
    )
    #: modules allowed to import registry-decorated classes directly
    #: (everyone else dispatches by name through the registry)
    registry_allowed_paths: tuple[str, ...] = (
        "repro/api/registry.py",
        "repro/campaigns/executors.py",
        "repro/analysis/registry.py",
        # the built-in rule package is its own registration wiring
        "repro/analysis/rules/",
        "tests/",
        "conftest.py",
    )
    #: modules whose locals are taint-tracked into fingerprint sinks
    #: (the dataflow companion to ``determinism_paths``: same surface,
    #: but flows instead of direct references)
    taint_paths: tuple[str, ...] = (
        "repro/api/job.py",
        "repro/api/cache.py",
        "repro/api/report.py",
        "repro/core/memo.py",
        "repro/core/plan.py",
        "repro/campaigns/spec.py",
        "repro/campaigns/manifest.py",
        "repro/service/state.py",
    )
    #: modules contributing to the global lock-acquisition graph
    lock_order_paths: tuple[str, ...] = (
        "repro/service/",
        "repro/campaigns/",
        "repro/api/cache.py",
        "repro/core/memo.py",
    )
    #: modules audited for broad handlers on solver-reachable paths
    exception_paths: tuple[str, ...] = (
        "repro/core/",
        "repro/service/",
        "repro/campaigns/",
        "repro/api/",
    )
    #: control-flow exceptions a broad handler must never swallow
    guarded_exceptions: tuple[str, ...] = (
        "SearchCancelled",
        "WorkerDiedError",
        "AdmissionError",
    )
    #: base classes of the guarded exceptions — a handler naming one of
    #: these catches the guarded exceptions just as surely as
    #: ``except Exception`` does
    guarded_exception_bases: tuple[str, ...] = (
        "RuntimeError",
    )
    #: solver-loop entry points (method suffixes) for reachability
    solver_roots: tuple[str, ...] = (
        "MistTuner.search",
        "TuningService.submit",
        "TuningService._run_search",
        "TuningService._run_flight",
        "run_campaign",
    )


DEFAULT_CONFIG = CheckConfig()
