"""Dataflow analyses over :mod:`repro.analysis.cfg` graphs.

Three layers, each built on the one below:

* **definitions/uses** — :func:`element_defs` / :func:`element_uses`
  turn one CFG element into the variables it binds and the names it
  reads (assignments, ``for`` targets, ``with ... as``, ``except ...
  as``, imports, walrus, parameters, ``match`` captures);
* **reaching definitions** — :class:`ReachingDefinitions`, the classic
  forward may-analysis (worklist over blocks, union join), exposing
  per-element states and :func:`use_def_chains`;
* **taint** — :class:`TaintAnalysis`, a forward fixpoint propagating
  :class:`TaintSource` sets through assignments and expressions, with
  kind-aware sanitizers (``sorted`` launders hash-order, not
  wall-clock) and pluggable call summaries so rules can splice in one
  level of call-graph propagation.

Everything here is a *may* analysis over an over-approximated CFG: a
reported flow might be infeasible, but no feasible flow is missed
within the modeled feature set (locals only — attribute and global
flows are out of scope by design).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from .cfg import CFG, Block
from .project import dotted_name

__all__ = [
    "Definition",
    "ReachingDefinitions",
    "TaintAnalysis",
    "TaintSource",
    "TaintSpec",
    "UseDef",
    "element_defs",
    "element_uses",
    "use_def_chains",
]


@dataclass(frozen=True, eq=False)
class Definition:
    """One binding of ``name`` (identity-hashed: each site is unique)."""

    name: str
    line: int
    kind: str  # assign | aug | ann | param | for | with | except | import | walrus | def | class | match

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Definition({self.name}@{self.line}:{self.kind})"


def _target_names(target: ast.AST) -> list:
    """Name nodes bound by an assignment target (tuple-unpack aware)."""
    out: list = []
    if isinstance(target, ast.Name):
        out.append(target)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            out.extend(_target_names(elt))
    elif isinstance(target, ast.Starred):
        out.extend(_target_names(target.value))
    return out


def _walrus_defs(element: ast.AST) -> list:
    """``(name, line)`` for every walrus binding inside an element."""
    out = []
    for node in ast.walk(element):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target,
                                                          ast.Name):
            out.append(Definition(node.target.id, node.target.lineno,
                                  "walrus"))
    return out


def element_defs(element: ast.AST) -> list:
    """:class:`Definition` list one CFG element binds."""
    out: list = []
    if isinstance(element, ast.arguments):
        args = (list(element.posonlyargs) + list(element.args)
                + list(element.kwonlyargs))
        if element.vararg:
            args.append(element.vararg)
        if element.kwarg:
            args.append(element.kwarg)
        for arg in args:
            out.append(Definition(arg.arg, arg.lineno, "param"))
        return out
    if isinstance(element, ast.Assign):
        for target in element.targets:
            for name in _target_names(target):
                out.append(Definition(name.id, name.lineno, "assign"))
    elif isinstance(element, ast.AnnAssign):
        if element.value is not None and isinstance(element.target,
                                                    ast.Name):
            out.append(Definition(element.target.id,
                                  element.target.lineno, "ann"))
    elif isinstance(element, ast.AugAssign):
        if isinstance(element.target, ast.Name):
            out.append(Definition(element.target.id,
                                  element.target.lineno, "aug"))
    elif isinstance(element, (ast.For, ast.AsyncFor)):
        for name in _target_names(element.target):
            out.append(Definition(name.id, name.lineno, "for"))
    elif isinstance(element, ast.withitem):
        if element.optional_vars is not None:
            for name in _target_names(element.optional_vars):
                out.append(Definition(name.id, name.lineno, "with"))
    elif isinstance(element, ast.ExceptHandler):
        if element.name:
            out.append(Definition(element.name, element.lineno, "except"))
    elif isinstance(element, (ast.Import, ast.ImportFrom)):
        for alias in element.names:
            bound = alias.asname or alias.name.split(".")[0]
            out.append(Definition(bound, element.lineno, "import"))
    elif isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef)):
        out.append(Definition(element.name, element.lineno, "def"))
    elif isinstance(element, ast.ClassDef):
        out.append(Definition(element.name, element.lineno, "class"))
    elif isinstance(element, ast.match_case):
        for node in ast.walk(element.pattern):
            if isinstance(node, (ast.MatchAs, ast.MatchStar)):
                if node.name:
                    out.append(Definition(node.name, node.lineno, "match"))
            elif isinstance(node, ast.MatchMapping) and node.rest:
                out.append(Definition(node.rest, node.lineno, "match"))
    own = _own_exprs(element)
    if own is not None:
        # composite heads: only their own expressions can hold a walrus
        for expr in own:
            out.extend(_walrus_defs(expr))
    else:
        out.extend(_walrus_defs(element))
    return out


#: node types whose inner scopes do not read the enclosing frame's
#: locals directly at this element's program point
_SKIP_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _own_exprs(element: ast.AST) -> "list | None":
    """For composite CFG elements whose bodies live in *other* blocks
    (loop heads, handler heads, match cases), the expressions that
    belong to the element itself; ``None`` for ordinary elements."""
    if isinstance(element, (ast.For, ast.AsyncFor)):
        return [element.iter]
    if isinstance(element, ast.ExceptHandler):
        return [element.type] if element.type is not None else []
    if isinstance(element, ast.match_case):
        return [element.guard] if element.guard is not None else []
    return None


def element_uses(element: ast.AST) -> list:
    """``ast.Name`` loads one element performs (nested scopes skipped).

    Composite elements (``for`` heads, ``except`` heads, ``match``
    cases) contribute only their own expressions — their bodies are
    separate CFG elements and would double-count here.
    """
    out: list = []
    #: names bound by comprehension generators, per active comp scope
    comp_bound: list = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, _SKIP_SCOPES):
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            bound = set()
            for gen in node.generators:
                for name in _target_names(gen.target):
                    bound.add(name.id)
            comp_bound.append(bound)
            for child in ast.iter_child_nodes(node):
                visit(child)
            comp_bound.pop()
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if not any(node.id in bound for bound in comp_bound):
                out.append(node)
        for child in ast.iter_child_nodes(node):
            visit(child)

    if isinstance(element, ast.arguments):
        return out
    own = _own_exprs(element)
    if own is not None:
        for expr in own:
            visit(expr)
        return out
    visit(element)
    return out


class ReachingDefinitions:
    """Which definitions of each variable may reach each element."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        # definitions are identity-hashed: compute them once per
        # element so repeated transfers reuse the same objects and the
        # fixpoint can observe convergence
        self._defs: dict[int, list] = {
            id(element): element_defs(element)
            for _block, element in cfg.iter_elements()}
        self._in: dict[int, dict] = {}
        self._out: dict[int, dict] = {}
        self._element_state: dict[int, dict] = {}
        self._solve()

    def _transfer(self, state: dict, element: ast.AST) -> dict:
        defs = self._defs[id(element)]
        if not defs:
            return state
        state = dict(state)
        for definition in defs:
            state[definition.name] = frozenset({definition})
        return state

    def _solve(self) -> None:
        order = self.cfg.block_order()
        self._in = {bid: {} for bid in order}
        self._out = {bid: {} for bid in order}
        work = list(order)
        while work:
            bid = work.pop(0)
            block = self.cfg.blocks[bid]
            state: dict = {}
            for pred in block.preds:
                for name, defs in self._out[pred].items():
                    state[name] = state.get(name, frozenset()) | defs
            self._in[bid] = state
            for element in block.elements:
                state = self._transfer(state, element)
            if state != self._out[bid]:
                self._out[bid] = state
                for succ in block.succs:
                    if succ not in work:
                        work.append(succ)
        # record the state *before* each element for queries
        for bid in order:
            state = self._in[bid]
            for element in self.cfg.blocks[bid].elements:
                self._element_state[id(element)] = state
                state = self._transfer(state, element)

    def before(self, element: ast.AST) -> dict:
        """``{name: frozenset[Definition]}`` just before ``element``."""
        return self._element_state.get(id(element), {})


@dataclass(frozen=True, eq=False)
class UseDef:
    """One name load and every definition that may reach it."""

    name: str
    use: ast.Name
    element: ast.AST
    defs: frozenset


def use_def_chains(cfg: CFG) -> list:
    """Every :class:`UseDef` chain of a CFG, in element order."""
    reaching = ReachingDefinitions(cfg)
    chains = []
    for _block, element in cfg.iter_elements():
        state = reaching.before(element)
        for use in element_uses(element):
            chains.append(UseDef(name=use.id, use=use, element=element,
                                 defs=state.get(use.id, frozenset())))
    return chains


# -- taint ----------------------------------------------------------------


@dataclass(frozen=True)
class TaintSource:
    """Why a value is suspect: what kind of source, where, what it was."""

    kind: str  # "wall-clock" | "entropy" | "hash-order" | "env" | ...
    description: str
    line: int


@dataclass(frozen=True)
class TaintSpec:
    """What taints, what launders, and what summarizes calls.

    * ``call_sources`` / ``ref_sources``: dotted name -> (kind,
      description); a call source fires on ``name(...)``, a ref source
      on any load of the dotted name (``field(default_factory=...)``).
    * ``prefix_sources``: dotted prefix -> (kind, description), e.g.
      ``random.`` for the whole unseeded-RNG module surface.
    * ``sanitizers``: dotted call name -> kinds it launders (``"*"``
      for every kind): ``sorted`` clears ``hash-order`` but a
      wall-clock stamp stays tainted through it.
    * ``set_order_kind``: taint kind attached to materializing or
      iterating an unordered ``set``/``frozenset`` expression.
    """

    call_sources: dict
    ref_sources: dict
    prefix_sources: dict
    sanitizers: dict
    set_order_kind: str = "hash-order"

    def source_for_call(self, name: "str | None") -> "TaintSource | None":
        if name is None:
            return None
        hit = self.call_sources.get(name)
        if hit is None:
            for prefix, info in self.prefix_sources.items():
                if name.startswith(prefix):
                    hit = (info[0], name)
                    break
        return None if hit is None else TaintSource(hit[0], hit[1], 0)

    def source_for_ref(self, name: "str | None") -> "TaintSource | None":
        if name is None:
            return None
        hit = self.ref_sources.get(name)
        return None if hit is None else TaintSource(hit[0], hit[1], 0)

    def launder(self, name: "str | None", taints: frozenset) -> frozenset:
        if name is None or name not in self.sanitizers:
            return taints
        cleared = self.sanitizers[name]
        if cleared == "*":
            return frozenset()
        return frozenset(t for t in taints if t.kind not in cleared)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    return False


class TaintAnalysis:
    """Forward taint fixpoint over one CFG.

    ``call_summary(node)`` (optional) returns extra
    :class:`TaintSource` sets for a resolved call — the hook the
    fingerprint-taint rule uses to splice in one level of call-graph
    propagation. ``param_taints`` seeds parameter names, which turns
    the same machinery into a "does this argument reach a sink /
    the return value" query for callee summaries.
    """

    def __init__(self, cfg: CFG, spec: TaintSpec, *,
                 call_summary: "Optional[Callable]" = None,
                 param_taints: "dict | None" = None):
        self.cfg = cfg
        self.spec = spec
        self._call_summary = call_summary
        self._param_taints = dict(param_taints or {})
        self.return_taint: frozenset = frozenset()
        self._element_state: dict[int, dict] = {}
        self._solve()

    # -- expression evaluation --------------------------------------------

    def expr_taint(self, node: "ast.AST | None", state: dict) -> frozenset:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return state.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            return self._call_taint(node, state)
        if isinstance(node, ast.Attribute):
            source = self.spec.source_for_ref(dotted_name(node))
            if source is not None:
                return frozenset({TaintSource(source.kind,
                                              source.description,
                                              node.lineno)})
            return self.expr_taint(node.value, state)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            taints: frozenset = frozenset()
            for gen in node.generators:
                taints |= self.expr_taint(gen.iter, state)
                if _is_set_expr(gen.iter):
                    taints |= frozenset({TaintSource(
                        self.spec.set_order_kind,
                        "iteration over an unordered set",
                        gen.iter.lineno)})
            return taints
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return frozenset()
        if isinstance(node, ast.NamedExpr):
            return self.expr_taint(node.value, state)
        # structural default: union over child expressions
        taints = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword)):
                value = child.value if isinstance(child, ast.keyword) \
                    else child
                taints |= self.expr_taint(value, state)
        return taints

    def _call_taint(self, node: ast.Call, state: dict) -> frozenset:
        name = dotted_name(node.func)
        source = self.spec.source_for_call(name)
        if source is not None:
            return frozenset({TaintSource(source.kind, source.description,
                                          node.lineno)})
        taints: frozenset = frozenset()
        for arg in node.args:
            taints |= self.expr_taint(arg, state)
        for kw in node.keywords:
            taints |= self.expr_taint(kw.value, state)
        # list(set(...)) / tuple({...}) materializes hash order
        if (name in ("list", "tuple") and node.args
                and _is_set_expr(node.args[0])):
            taints |= frozenset({TaintSource(
                self.spec.set_order_kind,
                f"{name}() over an unordered set", node.lineno)})
        # a method call on a tainted receiver stays tainted
        if isinstance(node.func, ast.Attribute):
            taints |= self.expr_taint(node.func.value, state)
        if self._call_summary is not None:
            extra = self._call_summary(node)
            if extra:
                taints |= frozenset(extra)
        return self.spec.launder(name, taints)

    # -- transfer ----------------------------------------------------------

    def _assign(self, state: dict, target: ast.AST,
                taints: frozenset) -> None:
        for name in _target_names(target):
            state[name.id] = taints
        # out["k"] = tainted / obj.attr = tainted: weak-update the base
        # local so container flows survive
        base: "ast.AST | None" = None
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
        if isinstance(base, ast.Name):
            state[base.id] = state.get(base.id, frozenset()) | taints

    def _transfer(self, state: dict, element: ast.AST) -> dict:
        state = dict(state)
        # walrus bindings can occur in any element
        for node in ast.walk(element):
            if isinstance(node, _SKIP_SCOPES):
                continue
            if isinstance(node, ast.NamedExpr) and isinstance(
                    node.target, ast.Name):
                state[node.target.id] = self.expr_taint(node.value, state)
        if isinstance(element, ast.arguments):
            for definition in element_defs(element):
                state[definition.name] = self._param_taints.get(
                    definition.name, frozenset())
        elif isinstance(element, ast.Assign):
            taints = self.expr_taint(element.value, state)
            for target in element.targets:
                self._assign(state, target, taints)
        elif isinstance(element, ast.AnnAssign) and element.value:
            self._assign(state, element.target,
                         self.expr_taint(element.value, state))
        elif isinstance(element, ast.AugAssign):
            taints = self.expr_taint(element.value, state)
            if isinstance(element.target, ast.Name):
                state[element.target.id] = (
                    state.get(element.target.id, frozenset()) | taints)
            else:
                self._assign(state, element.target, taints)
        elif isinstance(element, (ast.For, ast.AsyncFor)):
            taints = self.expr_taint(element.iter, state)
            if _is_set_expr(element.iter):
                taints |= frozenset({TaintSource(
                    self.spec.set_order_kind,
                    "iteration over an unordered set",
                    element.iter.lineno)})
            self._assign(state, element.target, taints)
        elif isinstance(element, ast.withitem):
            if element.optional_vars is not None:
                self._assign(state, element.optional_vars,
                             self.expr_taint(element.context_expr, state))
        elif isinstance(element, ast.ExceptHandler):
            if element.name:
                state[element.name] = frozenset()
        elif isinstance(element, (ast.Import, ast.ImportFrom)):
            for definition in element_defs(element):
                state[definition.name] = frozenset()
        elif isinstance(element, ast.Return):
            self.return_taint |= self.expr_taint(element.value, state)
        return state

    # -- fixpoint ----------------------------------------------------------

    def _solve(self) -> None:
        order = self.cfg.block_order()
        out_states: dict[int, dict] = {bid: {} for bid in order}
        work = list(order)
        iterations = 0
        limit = max(64, 8 * len(order) * (len(order) + 1))
        while work and iterations < limit:
            iterations += 1
            bid = work.pop(0)
            block = self.cfg.blocks[bid]
            state: dict = {}
            for pred in block.preds:
                for name, taints in out_states[pred].items():
                    state[name] = state.get(name, frozenset()) | taints
            for element in block.elements:
                state = self._transfer(state, element)
            if state != out_states[bid]:
                out_states[bid] = state
                for succ in block.succs:
                    if succ not in work:
                        work.append(succ)
        # record the state before each element
        self.return_taint = frozenset()
        for bid in order:
            block = self.cfg.blocks[bid]
            state = {}
            for pred in block.preds:
                for name, taints in out_states[pred].items():
                    state[name] = state.get(name, frozenset()) | taints
            for element in block.elements:
                self._element_state[id(element)] = state
                state = self._transfer(state, element)

    def before(self, element: ast.AST) -> dict:
        """``{name: frozenset[TaintSource]}`` just before ``element``."""
        return self._element_state.get(id(element), {})

    def iter_states(self) -> "Iterator[tuple[Block, ast.AST, dict]]":
        """Every (block, element, state-before) triple in order."""
        for block, element in self.cfg.iter_elements():
            yield block, element, self.before(element)
