"""The unit of ``repro check`` output: one rule violation at one line.

Findings are plain data — JSON round-trippable so the CI ``check`` job
can upload the report as an artifact and tooling can diff runs — and
carry a ``hint`` so every violation names its fix, not just its
location.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One invariant violation: rule id, location, message, fix hint."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def format(self) -> str:
        """The one-line text rendering (``--format text``)."""
        out = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            message=str(data["message"]),
            hint=str(data.get("hint", "")),
        )
