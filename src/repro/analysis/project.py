"""Parsed-module collection every rule runs over, plus AST helpers.

A :class:`Project` is the unit of analysis: a list of
:class:`ModuleSource` (path, source text, parsed ``ast`` tree) plus the
:class:`~repro.analysis.config.CheckConfig` that scopes path-sensitive
rules. Build one from filesystem paths (:meth:`Project.from_paths`, the
CLI route) or from in-memory sources (:meth:`Project.from_sources`, the
fixture route tests use).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .config import DEFAULT_CONFIG, CheckConfig
from .findings import Finding

__all__ = ["ModuleSource", "Project", "dotted_name", "iter_python_files"]

#: directories never worth scanning
_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "build", "dist",
              ".eggs", "node_modules"}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    The workhorse of every rule: turns ``time.time`` / ``self._lock`` /
    ``loop.run_in_executor`` references into matchable strings.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


@dataclass
class ModuleSource:
    """One parsed module: where it lives, its text, and its AST."""

    path: str
    source: str
    tree: ast.Module
    #: line-indexed source (1-based access via ``lines[lineno - 1]``)
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


def iter_python_files(paths: "list[str | Path]") -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: list[Path] = []
    seen: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            candidates = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
            )
        for path in candidates:
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(path)
    return out


@dataclass
class Project:
    """Everything one ``repro check`` invocation analyzes."""

    modules: list[ModuleSource]
    config: CheckConfig = DEFAULT_CONFIG
    #: modules that failed to parse, surfaced as unsuppressable findings
    parse_failures: list[Finding] = field(default_factory=list)

    @classmethod
    def from_paths(cls, paths: "list[str | Path]",
                   config: CheckConfig = DEFAULT_CONFIG) -> "Project":
        modules: list[ModuleSource] = []
        failures: list[Finding] = []
        for path in iter_python_files(paths):
            rel = path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                failures.append(Finding(
                    rule="parse-error", path=rel, line=0,
                    message=f"cannot read module: {exc}",
                    hint="fix the file encoding/permissions or exclude it",
                ))
                continue
            parsed = _parse(rel, source, failures)
            if parsed is not None:
                modules.append(parsed)
        return cls(modules=modules, config=config, parse_failures=failures)

    @classmethod
    def from_sources(cls, sources: dict,
                     config: CheckConfig = DEFAULT_CONFIG) -> "Project":
        """Build from ``{path: source}`` — the test-fixture entry point."""
        modules: list[ModuleSource] = []
        failures: list[Finding] = []
        for rel, source in sources.items():
            parsed = _parse(str(rel), source, failures)
            if parsed is not None:
                modules.append(parsed)
        return cls(modules=modules, config=config, parse_failures=failures)


def _parse(rel: str, source: str,
           failures: list[Finding]) -> ModuleSource | None:
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        failures.append(Finding(
            rule="parse-error", path=rel, line=int(exc.lineno or 0),
            message=f"syntax error: {exc.msg}",
            hint="repro check only analyzes modules that parse",
        ))
        return None
    return ModuleSource(path=rel, source=source, tree=tree)
