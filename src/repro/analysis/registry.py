"""Rule registry: every invariant checker plugs in under a stable id.

Mirrors :func:`repro.api.registry.register_solver` /
:func:`repro.campaigns.executors.register_executor` — a rule family is
a registry entry, not a hard-coded branch in the runner::

    @register_rule("my-invariant")
    class MyRule:
        \"\"\"One-line description shown by ``repro check --list-rules``.\"\"\"

        hint = "how a violation is usually fixed"

        def check(self, project: Project) -> list[Finding]:
            ...

``repro check --rule my-invariant`` then runs it in isolation, and
``# repro: allow[my-invariant]`` suppresses it inline.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from .findings import Finding

__all__ = [
    "Rule",
    "RuleNotFoundError",
    "register_rule",
    "get_rule",
    "rule_names",
    "rule_registry",
]

_REGISTRY: dict[str, type] = {}


class RuleNotFoundError(KeyError):
    """No rule registered under the requested id."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown rule {name!r}; registered: {rule_names()}"
        )
        self.name = name


@runtime_checkable
class Rule(Protocol):
    """What a registered rule class must implement."""

    def check(self, project) -> list[Finding]:  # pragma: no cover
        ...


def register_rule(name: str, *,
                  overwrite: bool = False) -> Callable[[type], type]:
    """Class decorator: expose a rule class under ``name``."""

    def decorate(cls: type) -> type:
        if not overwrite and name in _REGISTRY and _REGISTRY[name] is not cls:
            raise ValueError(f"rule {name!r} already registered")
        cls.rule_id = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_rule(name: str) -> Rule:
    """Instantiate the rule registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise RuleNotFoundError(name) from None
    return cls()


def rule_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def rule_registry() -> dict[str, type]:
    """A snapshot of the registry (rule id -> rule class)."""
    return dict(_REGISTRY)
