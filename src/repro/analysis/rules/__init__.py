"""Built-in ``repro check`` rules.

Importing this package registers every built-in rule with
:mod:`repro.analysis.registry` — the same import-time side-effect
pattern the solver registry uses. Third-party rules register the same
way: decorate a class with ``@register_rule("my-rule")`` and import the
module before running the checker.
"""

from __future__ import annotations

from .async_safety import AsyncSafetyRule
from .determinism import DeterminismRule
from .exception_flow import ExceptionFlowRule
from .lock_order import LockOrderRule
from .locks import LockDisciplineRule
from .registry_discipline import RegistryDisciplineRule
from .serialization import SerializationRule
from .taint import FingerprintTaintRule
from .vectorization import VectorizationDisciplineRule

__all__ = [
    "AsyncSafetyRule",
    "DeterminismRule",
    "ExceptionFlowRule",
    "FingerprintTaintRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "RegistryDisciplineRule",
    "SerializationRule",
    "VectorizationDisciplineRule",
]
