"""Async-safety rule: nothing blocking on the service event loop.

The ``repro serve`` daemon runs one asyncio loop; every solver search,
cache read, and lock-taking state access is pushed to worker threads
via ``loop.run_in_executor``. One blocking call inside an ``async def``
stalls every connected client at once. Inside the configured path set
(:attr:`~repro.analysis.config.CheckConfig.async_paths`) this rule
flags *direct calls* in ``async def`` bodies to:

* ``time.sleep`` (use ``asyncio.sleep``);
* sync file I/O: ``open`` / ``io.open`` / ``Path.read_text`` /
  ``write_text`` / ``read_bytes`` / ``write_bytes``;
* sync sockets & subprocesses: ``socket.*``, ``subprocess.*``,
  ``urllib.request.urlopen``, ``requests.*``;
* a solver search: ``solve(...)`` or any ``*.solve(...)``;
* service state entry points that take locks and touch disk:
  ``self.submit``, ``self.submit_campaign``, ``self.cache.*``.

Passing a blocking callable *to* the executor
(``loop.run_in_executor(None, self.submit, job)``) is the sanctioned
pattern and is not a call, so it never fires. Bodies of nested sync
``def``\\ s are skipped — they run wherever they are invoked.
"""

from __future__ import annotations

import ast

from ..config import path_matches
from ..findings import Finding
from ..project import ModuleSource, Project, dotted_name
from ..registry import register_rule

__all__ = ["AsyncSafetyRule"]

_BLOCKING_EXACT = {
    "time.sleep": "use await asyncio.sleep(...)",
    "open": "do file I/O in a worker: await loop.run_in_executor(...)",
    "io.open": "do file I/O in a worker: await loop.run_in_executor(...)",
    "os.system": "use asyncio.create_subprocess_exec(...)",
    "socket.socket": "use asyncio streams (asyncio.open_connection)",
    "socket.create_connection": "use asyncio.open_connection(...)",
    "subprocess.run": "use asyncio.create_subprocess_exec(...)",
    "subprocess.call": "use asyncio.create_subprocess_exec(...)",
    "subprocess.check_call": "use asyncio.create_subprocess_exec(...)",
    "subprocess.check_output": "use asyncio.create_subprocess_exec(...)",
    "subprocess.Popen": "use asyncio.create_subprocess_exec(...)",
    "urllib.request.urlopen": "route through a worker thread",
    "self.submit": "submit takes the service lock and reads the plan "
                   "cache: await loop.run_in_executor(None, self.submit, "
                   "...)",
    "self.submit_campaign": "await loop.run_in_executor(None, "
                            "self.submit_campaign, ...)",
}

_BLOCKING_PREFIXES = {
    "requests.": "route HTTP through a worker thread",
    "self.cache.": "the plan cache is disk I/O: await "
                   "loop.run_in_executor(...)",
}

_BLOCKING_ATTRS = {
    "read_text": "file I/O blocks the loop: run it in an executor",
    "write_text": "file I/O blocks the loop: run it in an executor",
    "read_bytes": "file I/O blocks the loop: run it in an executor",
    "write_bytes": "file I/O blocks the loop: run it in an executor",
    "solve": "a solver search runs for seconds-to-minutes: hand it to "
             "the worker pool",
}


def _blocking_hint(node: ast.Call) -> "tuple[str, str] | None":
    name = dotted_name(node.func)
    if name is not None:
        if name in _BLOCKING_EXACT:
            return name, _BLOCKING_EXACT[name]
        for prefix, hint in _BLOCKING_PREFIXES.items():
            if name.startswith(prefix):
                return name, hint
    if name == "solve":
        return name, _BLOCKING_ATTRS["solve"]
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in _BLOCKING_ATTRS:
            return (name or f"*.{attr}"), _BLOCKING_ATTRS[attr]
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: ModuleSource):
        self.module = module
        self.findings: list[Finding] = []
        self._async_fn: str | None = None

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        outer, self._async_fn = self._async_fn, node.name
        self.generic_visit(node)
        self._async_fn = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # a nested sync def runs wherever it is called (often inside
        # the executor) — its body is not event-loop code
        outer, self._async_fn = self._async_fn, None
        self.generic_visit(node)
        self._async_fn = outer

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_fn is not None:
            blocking = _blocking_hint(node)
            if blocking is not None:
                name, hint = blocking
                self.findings.append(Finding(
                    rule="async-safety", path=self.module.path,
                    line=node.lineno,
                    message=f"blocking call {name}() inside "
                            f"'async def {self._async_fn}'",
                    hint=hint,
                ))
        self.generic_visit(node)


@register_rule("async-safety")
class AsyncSafetyRule:
    """Flag blocking calls inside service ``async def`` bodies."""

    hint = "the event loop must only await; blocking work goes to workers"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if not path_matches(module.path, project.config.async_paths):
                continue
            visitor = _Visitor(module)
            visitor.visit(module.tree)
            findings.extend(visitor.findings)
        return findings
