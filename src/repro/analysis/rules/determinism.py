"""Determinism rule: fingerprint/memo/serialization paths must be pure.

``TuningJob.fingerprint()``, menu-memo keys, and every serialized
artifact are content addresses: two processes building the same value
must produce the same bytes, or the :class:`~repro.api.cache.PlanCache`
and campaign resume silently stop deduplicating (worse: serve stale
mismatches). Inside the configured path set
(:attr:`~repro.analysis.config.CheckConfig.determinism_paths`) this
rule flags:

* wall-clock reads (``time.time``, ``datetime.now``, ...) — including
  bare references such as ``field(default_factory=time.time)``;
* nondeterministic randomness (module-level ``random.*``,
  ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``);
* direct iteration over sets (hash-order-dependent), including
  ``list(set(...))`` / ``tuple(set(...))``;
* ``json.dump(s)`` without ``sort_keys=True`` (unsorted dict emission).

Wall-clock *display* timestamps are legitimate — suppress them with a
justification: ``# repro: allow[determinism] wall-clock display only``.

Since the dataflow engine landed, the rule additionally reports
**flow** findings on the same engine the ``fingerprint-taint`` rule
uses: a source laundered through locals into a fingerprint sink is a
determinism violation even though no single line pattern-matches. The
pattern-matched findings above are kept verbatim, so this rule's
output is a strict superset of the pre-engine rule (the differential
test pins that).
"""

from __future__ import annotations

import ast

from ..config import path_matches
from ..findings import Finding
from ..project import ModuleSource, Project, dotted_name
from ..registry import register_rule

__all__ = ["DeterminismRule", "legacy_findings"]

#: dotted references that read the wall clock or equivalent
_CLOCK_REFS = {
    "time.time": "use time.monotonic()/time.perf_counter() for "
                 "durations; wall-clock is display-only here",
    "time.time_ns": "use time.monotonic_ns() for durations",
    "datetime.now": "inject the timestamp from the caller instead",
    "datetime.utcnow": "inject the timestamp from the caller instead",
    "datetime.today": "inject the timestamp from the caller instead",
    "datetime.datetime.now": "inject the timestamp from the caller instead",
    "datetime.datetime.utcnow": "inject the timestamp from the caller "
                                "instead",
    "datetime.datetime.today": "inject the timestamp from the caller "
                               "instead",
    "date.today": "inject the date from the caller instead",
    "datetime.date.today": "inject the date from the caller instead",
}

#: dotted references to nondeterministic entropy sources
_ENTROPY_REFS = {
    "os.urandom": "derive bytes from the content being fingerprinted",
    "uuid.uuid1": "uuid1 mixes in host + wall clock",
    "uuid.uuid4": "uuid4 is fresh entropy every call; derive ids from "
                  "content, or suppress for runtime-only identifiers",
    "secrets.token_hex": "secrets is entropy by design",
    "secrets.token_bytes": "secrets is entropy by design",
    "secrets.token_urlsafe": "secrets is entropy by design",
}

#: module-level random is unseeded global state
_RANDOM_ALLOWED = {"random.Random"}

#: calls whose output order follows set hash order
_SET_CASTS = {"list", "tuple"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: ModuleSource):
        self.module = module
        self.findings: list[Finding] = []
        #: lines already flagged, to avoid Call + Attribute double hits
        self._seen: set = set()

    def _flag(self, node: ast.AST, message: str, hint: str) -> None:
        key = (node.lineno, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            rule="determinism", path=self.module.path, line=node.lineno,
            message=message, hint=hint,
        ))

    # -- wall clock / entropy: flag references, not just calls -------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = dotted_name(node)
        if name in _CLOCK_REFS:
            self._flag(node, f"wall-clock reference {name!r} in a "
                             f"determinism-critical path",
                       _CLOCK_REFS[name])
        elif name in _ENTROPY_REFS:
            self._flag(node, f"nondeterministic entropy source {name!r}",
                       _ENTROPY_REFS[name])
        elif (name is not None and name.startswith("random.")
                and name not in _RANDOM_ALLOWED):
            self._flag(node, f"unseeded global RNG {name!r}",
                       "use an explicitly seeded random.Random(seed) "
                       "instance")
        self.generic_visit(node)

    # -- set-order dependence ----------------------------------------------

    def _check_iter(self, node: ast.AST, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._flag(node, "iteration over a set follows hash order",
                       "sort first: iterate sorted(...) for a "
                       "deterministic order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- calls: set casts + unsorted JSON emission -------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if (name in _SET_CASTS and node.args
                and _is_set_expr(node.args[0])):
            self._flag(node, f"{name}(set(...)) materializes hash order",
                       "use sorted(...) for a deterministic order")
        if name in ("json.dumps", "json.dump"):
            sort_keys = next((kw for kw in node.keywords
                              if kw.arg == "sort_keys"), None)
            unsorted = sort_keys is None or (
                isinstance(sort_keys.value, ast.Constant)
                and sort_keys.value.value is not True)
            has_kwargs = any(kw.arg is None for kw in node.keywords)
            if unsorted and not (sort_keys is None and has_kwargs):
                self._flag(node, f"{name}() without sort_keys=True emits "
                                 f"dict-insertion order",
                           "pass sort_keys=True so emitted JSON is "
                           "canonical")
        self.generic_visit(node)


def legacy_findings(project: Project) -> list[Finding]:
    """The pre-engine (PR 6) pattern-matched findings, verbatim.

    Exposed so the differential test can pin the superset guarantee:
    ``DeterminismRule.check(p) ⊇ legacy_findings(p)`` on any corpus.
    """
    findings: list[Finding] = []
    for module in project.modules:
        if not path_matches(module.path,
                            project.config.determinism_paths):
            continue
        visitor = _Visitor(module)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings


@register_rule("determinism")
class DeterminismRule:
    """Ban wall-clock, entropy, and hash-order in fingerprint paths."""

    hint = ("fingerprints, memo keys, and serialized artifacts must be "
            "pure functions of their inputs")

    def check(self, project: Project) -> list[Finding]:
        # deferred import: rules.taint also imports this package
        from .taint import taint_findings
        findings = legacy_findings(project)
        seen = {(f.path, f.line, f.message) for f in findings}
        for flow in taint_findings(project,
                                   project.config.determinism_paths,
                                   rule="determinism"):
            key = (flow.path, flow.line, flow.message)
            if key not in seen:
                seen.add(key)
                findings.append(flow)
        return findings
