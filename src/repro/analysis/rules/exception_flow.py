"""Exception-flow rule: broad handlers must not swallow control flow.

``SearchCancelled``, ``WorkerDiedError``, and ``AdmissionError`` (see
:attr:`~repro.analysis.config.CheckConfig.guarded_exceptions`) are not
error *reports* — they are control-flow signals the solver loop, the
worker tier, and the admission gate rely on crossing function
boundaries intact. A ``try: ... except Exception: log(...)`` anywhere
on such a path converts "cancel this search" into "keep burning the
worker on a dead job".

The analysis computes, per function, which guarded exceptions **may
escape** it: direct ``raise`` statements (minus those caught by
enclosing ``try`` blocks *inside* the same function) plus everything
escaping its callees, closed over the project call graph to a
fixpoint. Callable references passed as arguments count as calls —
``run_in_executor(None, self.submit, job)`` re-raises ``submit``'s
``AdmissionError`` at the ``await``.

A finding fires when, inside a function reachable from
:attr:`~repro.analysis.config.CheckConfig.solver_roots` (registry
dispatch included) and within
:attr:`~repro.analysis.config.CheckConfig.exception_paths`, a **broad**
handler — bare ``except``, ``except Exception``/``BaseException``, or
one naming a guarded *base* class such as ``RuntimeError`` — can
receive a guarded exception and does not re-raise it. A bare ``raise``
(or ``raise <bound name>``) anywhere in the handler body exempts it:
that is the standard "inspect, then propagate" shape.

Deliberate last-line-of-defense handlers (a daemon's top-level catch)
carry ``# repro: allow[exception-flow] <why>`` with the justification.
"""

from __future__ import annotations

import ast

from ..callgraph import CallGraph, FunctionInfo
from ..config import path_matches
from ..findings import Finding
from ..project import Project, dotted_name
from ..registry import register_rule

__all__ = ["ExceptionFlowRule"]

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _own_try_nodes(func: ast.AST) -> list:
    """``Try`` nodes in a function body, nested scopes excluded.

    Nested defs are separate call-graph functions and get their own
    reachability-gated pass; walking into them here would double-report
    (or report unreachable closures).
    """
    out: list = []

    def scan(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(child, ast.Try):
                out.append(child)
            scan(child)

    scan(func)
    return out


def _handler_type_names(handler: ast.ExceptHandler) -> "set | None":
    """Short class names a handler catches; ``None`` for bare except."""
    if handler.type is None:
        return None
    nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names = set()
    for node in nodes:
        name = dotted_name(node)
        if name is not None:
            names.add(name.split(".")[-1])
    return names


class _EscapeAnalysis:
    """Fixpoint of guarded exceptions escaping each function."""

    def __init__(self, graph: CallGraph, guarded: frozenset,
                 bases: frozenset):
        self.graph = graph
        self.guarded = guarded
        self.bases = bases
        self.escapes: dict[str, frozenset] = {
            qual: frozenset() for qual in graph.functions}
        self._solve()

    # -- handler semantics -------------------------------------------------

    def catches(self, handler: ast.ExceptHandler, exc: str) -> bool:
        names = _handler_type_names(handler)
        if names is None:
            return True
        return bool(names & ({exc} | _BROAD_NAMES | self.bases))

    def is_broad(self, handler: ast.ExceptHandler) -> bool:
        names = _handler_type_names(handler)
        if names is None:
            return True
        return bool(names & (_BROAD_NAMES | self.bases))

    def reraises(self, handler: ast.ExceptHandler) -> bool:
        """Bare ``raise`` / ``raise <bound name>`` in the handler body."""
        def scan(node: ast.AST) -> bool:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                return False
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    return True
                if (handler.name is not None
                        and isinstance(node.exc, ast.Name)
                        and node.exc.id == handler.name):
                    return True
            return any(scan(child)
                       for child in ast.iter_child_nodes(node))
        return any(scan(stmt) for stmt in handler.body)

    # -- escape computation ------------------------------------------------

    def _call_escapes(self, info: FunctionInfo,
                      node: ast.Call) -> frozenset:
        out: frozenset = frozenset()
        targets = self.graph.resolve_call(info, node)
        targets |= self.graph._callable_refs(info, node)
        for callee in targets:
            out |= self.escapes.get(callee, frozenset())
        return out

    def _expr_escapes(self, info: FunctionInfo,
                      node: ast.AST) -> frozenset:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return frozenset()
        out: frozenset = frozenset()
        if isinstance(node, ast.Call):
            out |= self._call_escapes(info, node)
        for child in ast.iter_child_nodes(node):
            out |= self._expr_escapes(info, child)
        return out

    def stmt_escapes(self, info: FunctionInfo,
                     stmt: ast.AST) -> frozenset:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return frozenset()
        if isinstance(stmt, ast.Raise):
            out = frozenset()
            if stmt.exc is not None:
                name = dotted_name(
                    stmt.exc.func if isinstance(stmt.exc, ast.Call)
                    else stmt.exc)
                if name is not None:
                    short = name.split(".")[-1]
                    if short in self.guarded:
                        out = frozenset({short})
                if isinstance(stmt.exc, ast.Call):
                    out |= self._expr_escapes(info, stmt.exc)
            return out
        if isinstance(stmt, ast.Try):
            return self._try_escapes(info, stmt)
        out = frozenset()
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.excepthandler,
                                  ast.match_case)):
                out |= self.stmt_escapes(info, child)
            else:
                out |= self._expr_escapes(info, child)
        return out

    def body_escapes(self, info: FunctionInfo,
                     body: list) -> frozenset:
        out: frozenset = frozenset()
        for stmt in body:
            out |= self.stmt_escapes(info, stmt)
        return out

    def _try_escapes(self, info: FunctionInfo,
                     stmt: ast.Try) -> frozenset:
        potential = self.body_escapes(info, stmt.body)
        remaining: frozenset = frozenset()
        for exc in potential:
            handler = next((h for h in stmt.handlers
                            if self.catches(h, exc)), None)
            if handler is None or self.reraises(handler):
                remaining |= frozenset({exc})
        for handler in stmt.handlers:
            remaining |= self.body_escapes(info, handler.body)
        remaining |= self.body_escapes(info, stmt.orelse)
        remaining |= self.body_escapes(info, stmt.finalbody)
        return remaining

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for qual, info in self.graph.functions.items():
                escaped = self.body_escapes(info, info.node.body)
                if escaped != self.escapes[qual]:
                    self.escapes[qual] = escaped
                    changed = True


@register_rule("exception-flow")
class ExceptionFlowRule:
    """Flag broad handlers that can swallow guarded exceptions."""

    hint = ("cancellation/worker-death/admission signals must cross "
            "the solver loop intact; catch them by name or re-raise")

    def check(self, project: Project) -> list:
        config = project.config
        graph = CallGraph.build(project)
        analysis = _EscapeAnalysis(
            graph,
            guarded=frozenset(config.guarded_exceptions),
            bases=frozenset(config.guarded_exception_bases))
        roots: set = set()
        for suffix in config.solver_roots:
            roots |= graph.by_suffix(suffix)
        reachable = graph.reachable_from(roots)
        findings: list = []
        for qual in sorted(reachable):
            info = graph.functions[qual]
            if not path_matches(info.module.path, config.exception_paths):
                continue
            for node in _own_try_nodes(info.node):
                potential = analysis.body_escapes(info, node.body)
                remaining = set(potential)
                for handler in node.handlers:
                    caught = {exc for exc in remaining
                              if analysis.catches(handler, exc)}
                    remaining -= caught
                    if not caught or not analysis.is_broad(handler):
                        continue
                    if analysis.reraises(handler):
                        continue
                    what = ", ".join(sorted(caught))
                    label = ("bare except"
                             if handler.type is None else
                             "broad except")
                    findings.append(Finding(
                        rule="exception-flow",
                        path=info.module.path,
                        line=handler.lineno,
                        message=(f"{label} in "
                                 f"{qual.partition('::')[2]}() can "
                                 f"swallow {what} on a solver-reachable "
                                 "path"),
                        hint=("catch the guarded exception by name and "
                              "re-raise it before the broad handler, "
                              "or justify with # repro: "
                              "allow[exception-flow]"),
                    ))
        findings.sort(key=lambda f: f.sort_key())
        return findings
