"""Lock-order rule: the global lock-acquisition graph must be acyclic.

The lock-discipline rule (PR 6) checks that guarded state is touched
*under* its lock; this rule checks the relationship **between** locks.
It collects every lock declaration across
:attr:`~repro.analysis.config.CheckConfig.lock_order_paths` (class
``__init__``/dataclass fields and module level, same shapes the
lock-discipline rule recognizes), then walks every function recording
which locks are acquired *while others are already held* — through
nested ``with`` blocks and through direct calls resolved on the
project call graph. Three findings fall out:

* **cycle** — the acquisition graph has a cycle (``A → B`` somewhere,
  ``B → A`` elsewhere): two threads interleaving those paths deadlock.
* **re-acquisition** — a path acquires the same ``threading.Lock``
  while already holding it; ``threading.Lock`` is not reentrant, so
  this self-deadlocks deterministically.
* **await-under-lock** — an ``await`` while holding a *threading*
  lock parks the entire event loop behind a worker-thread mutex; any
  coroutine needing that lock (or that thread needing the loop)
  deadlocks the service.

Lock identity is ``ClassName.attr`` for instance locks (collapsing all
instances of a class — the usual conservative choice) and
``<module stem>.name`` for module-level locks. ``obj._lock`` with an
unknown receiver resolves only when exactly one known class declares
that attribute name. Callable *references* passed to executors are
deliberately **not** followed: ``pool.submit(self._work)`` runs later,
on another thread, not under the caller's locks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..callgraph import CallGraph, FunctionInfo
from ..config import path_matches
from ..findings import Finding
from ..project import Project, dotted_name
from ..registry import register_rule
from .locks import _class_attrs, _initializer_kind

__all__ = ["LockOrderRule"]


@dataclass(frozen=True)
class _Site:
    """Where an ordered pair of acquisitions was observed."""

    path: str
    line: int
    where: str


class _LockIndex:
    """Every lock declaration in scope, with resolution helpers."""

    def __init__(self) -> None:
        #: lock id -> declaring module path
        self.locks: dict[str, str] = {}
        #: attr name -> set of "ClassName.attr" ids (for obj.attr)
        self.by_attr: dict[str, set] = {}
        #: module path -> {bare name: lock id} (module-level locks)
        self.module_locks: dict[str, dict] = {}
        #: module path -> {class name: {attr: lock id}}
        self.class_locks: dict[str, dict] = {}

    @classmethod
    def build(cls, project: Project,
              paths: tuple) -> "_LockIndex":
        index = cls()
        for module in project.modules:
            if not path_matches(module.path, paths):
                continue
            stem = module.path.rsplit("/", 1)[-1].removesuffix(".py")
            index.module_locks[module.path] = {}
            index.class_locks[module.path] = {}
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    targets = (stmt.targets
                               if isinstance(stmt, ast.Assign)
                               else [stmt.target])
                    value = stmt.value
                    if value is None or _initializer_kind(value) != "lock":
                        continue
                    for target in targets:
                        if isinstance(target, ast.Name):
                            lock_id = f"{stem}.{target.id}"
                            index.locks[lock_id] = module.path
                            index.module_locks[module.path][target.id] = \
                                lock_id
                elif isinstance(stmt, ast.ClassDef):
                    lock_attrs, _ = _class_attrs(stmt)
                    attrs = {}
                    for attr in lock_attrs:
                        lock_id = f"{stmt.name}.{attr}"
                        index.locks[lock_id] = module.path
                        index.by_attr.setdefault(attr, set()).add(lock_id)
                        attrs[attr] = lock_id
                    if attrs:
                        index.class_locks[module.path][stmt.name] = attrs
        return index

    def resolve(self, info: FunctionInfo,
                expr: ast.AST) -> "str | None":
        """Lock id for a ``with`` context expression, if known."""
        name = dotted_name(expr)
        if name is None:
            return None
        module_path = info.module.path
        if "." not in name:
            return self.module_locks.get(module_path, {}).get(name)
        base, _, attr = name.rpartition(".")
        if base in ("self", "cls") and info.class_name is not None:
            owned = self.class_locks.get(module_path, {}) \
                .get(info.class_name, {})
            if attr in owned:
                return owned[attr]
        # obj.attr with a unique declaring class project-wide
        candidates = self.by_attr.get(attr, set())
        if len(candidates) == 1:
            return next(iter(candidates))
        return None


class _FunctionScan:
    """Per-function facts: acquisitions, ordered pairs, awaits."""

    def __init__(self, info: FunctionInfo, index: _LockIndex,
                 graph: CallGraph):
        self.info = info
        self.index = index
        self.graph = graph
        #: locks this function acquires at any nesting (incl. top level)
        self.acquires: set = set()
        #: (held, acquired) -> first _Site observed
        self.pairs: dict = {}
        #: (call node, tuple of locks held at the call)
        self.calls: list = []
        #: (await line, locks held) — only under at least one lock
        self.awaits: list = []
        self._held: list = []
        self._walk(info.node.body)

    # -- traversal ---------------------------------------------------------

    def _walk(self, body: list) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.AST) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scope: analyzed as its own function
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in stmt.items:
                lock_id = self.index.resolve(self.info, item.context_expr)
                # async with = asyncio primitives; only sync `with`
                # acquisitions of threading locks block a thread
                if lock_id is not None and isinstance(stmt, ast.With):
                    self._acquire(lock_id, item.context_expr.lineno)
                    acquired.append(lock_id)
                else:
                    self._scan_exprs(item.context_expr)
            self._walk(stmt.body)
            for lock_id in reversed(acquired):
                assert self._held and self._held[-1] == lock_id
                self._held.pop()
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.excepthandler,
                                  ast.match_case)):
                self._stmt(child)
            else:
                self._scan_exprs(child)

    def _scan_exprs(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return  # nested scope: not executed under these locks
        if isinstance(node, ast.Call):
            self.calls.append((node, tuple(self._held)))
        elif isinstance(node, ast.Await) and self._held:
            self.awaits.append((node.lineno, tuple(self._held)))
        for child in ast.iter_child_nodes(node):
            self._scan_exprs(child)

    def _acquire(self, lock_id: str, line: int) -> None:
        self.acquires.add(lock_id)
        dotted = self.info.qualname.partition("::")[2]
        site = _Site(self.info.module.path, line, f"{dotted}()")
        for held in self._held:
            self.pairs.setdefault((held, lock_id), site)
        if lock_id in self._held:
            # direct re-acquisition in one lexical path
            self.pairs.setdefault((lock_id, lock_id), site)
        self._held.append(lock_id)


def _find_cycles(edges: dict) -> list:
    """Distinct simple cycles (as lock-id tuples), canonicalized."""
    graph: dict = {}
    for held, acquired in edges:
        graph.setdefault(held, set()).add(acquired)
    cycles: set = set()

    def dfs(start: str, node: str, path: list, seen: set) -> None:
        for nxt in sorted(graph.get(node, set())):
            if nxt == start:
                cycle = tuple(path)
                pivot = cycle.index(min(cycle))
                cycles.add(cycle[pivot:] + cycle[:pivot])
            elif nxt not in seen and nxt > start:
                # only explore nodes >= start: each cycle is found
                # exactly once, from its smallest member
                dfs(start, nxt, path + [nxt], seen | {nxt})

    for node in sorted(graph):
        dfs(node, node, [node], {node})
    return sorted(cycles)


@register_rule("lock-order")
class LockOrderRule:
    """Flag lock-graph cycles, re-acquisition, and await-under-lock."""

    hint = ("two threads taking the same locks in opposite orders "
            "deadlock under load, never in unit tests")

    def check(self, project: Project) -> list:
        index = _LockIndex.build(project,
                                 project.config.lock_order_paths)
        if not index.locks:
            return []
        graph = CallGraph.build(project)
        scans: dict[str, _FunctionScan] = {}
        for qual, info in graph.functions.items():
            if path_matches(info.module.path,
                            project.config.lock_order_paths):
                scans[qual] = _FunctionScan(info, index, graph)

        # transitive acquisition summaries over direct-call edges
        summary = {qual: set(scan.acquires)
                   for qual, scan in scans.items()}
        changed = True
        while changed:
            changed = False
            for qual, scan in scans.items():
                for call, _held in scan.calls:
                    for callee in graph.resolve_call(scan.info, call):
                        extra = summary.get(callee, set()) - summary[qual]
                        if extra:
                            summary[qual] |= extra
                            changed = True

        # ordered pairs: lexical nesting + calls made while holding
        pairs: dict = {}
        for qual, scan in scans.items():
            for pair, site in scan.pairs.items():
                pairs.setdefault(pair, site)
            for call, held in scan.calls:
                if not held:
                    continue
                acquired: set = set()
                for callee in graph.resolve_call(scan.info, call):
                    acquired |= summary.get(callee, set())
                dotted = qual.partition("::")[2]
                site = _Site(scan.info.module.path, call.lineno,
                             f"{dotted}()")
                for lock_id in acquired:
                    for held_id in held:
                        pairs.setdefault((held_id, lock_id), site)

        findings: list = []
        for cycle in _find_cycles(pairs):
            if len(cycle) == 1:
                continue  # self-loops reported as re-acquisition below
            chain = " -> ".join(cycle + (cycle[0],))
            for i, lock_id in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                site = pairs[(lock_id, nxt)]
                findings.append(Finding(
                    rule="lock-order", path=site.path, line=site.line,
                    message=(f"lock-order cycle {chain}: {site.where} "
                             f"acquires {nxt} while holding {lock_id}"),
                    hint=("pick one global acquisition order for these "
                          "locks and restructure the late taker"),
                ))
        for (held, acquired), site in sorted(
                pairs.items(), key=lambda kv: kv[1].line):
            if held == acquired:
                findings.append(Finding(
                    rule="lock-order", path=site.path, line=site.line,
                    message=(f"{site.where} acquires {acquired} while "
                             "already holding it; threading.Lock is "
                             "not reentrant"),
                    hint=("split the locked region or switch the "
                          "shared lock to RLock deliberately"),
                ))
        for qual, scan in scans.items():
            for line, held in scan.awaits:
                findings.append(Finding(
                    rule="lock-order", path=scan.info.module.path,
                    line=line,
                    message=(f"await while holding threading lock "
                             f"{held[-1]} in "
                             f"{qual.partition('::')[2]}(); the event "
                             "loop blocks behind a thread mutex"),
                    hint=("release the lock before awaiting, or use "
                          "an asyncio.Lock for loop-side exclusion"),
                ))
        findings.sort(key=lambda f: f.sort_key())
        return findings
