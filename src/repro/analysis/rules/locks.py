"""Lock-discipline rule: guarded mutable state stays guarded.

The service registries (``TuningService._jobs`` / ``_inflight``), the
metrics ledger, and the process-wide
:data:`~repro.core.memo.GLOBAL_MENU_MEMO` are mutated from the asyncio
loop *and* solver worker threads; their invariant is "every touch holds
the owning lock". This rule enforces it structurally, in two shapes:

* **class-scoped** — a class that creates a lock in ``__init__`` (or as
  a dataclass ``field(default_factory=threading.Lock)``) *and* owns
  mutable container attributes (``self._jobs = {}``): every method
  access to those containers must sit inside ``with self.<lock>:``.
  ``__init__`` / ``__post_init__`` are construction-time and exempt.
* **module-scoped** — a module that declares a module-level
  ``threading.Lock()``: every function-body use of a module-level
  mutable container must sit inside ``with <that lock>:``.

Deliberately lock-free fast paths (racy-but-safe reads) are exactly
what ``# repro: allow[lock-discipline] <why it is safe>`` is for.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..project import ModuleSource, Project, dotted_name
from ..registry import register_rule

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "Lock", "RLock", "Condition",
}

_MUTABLE_FACTORIES = {
    "dict", "list", "set", "dict.fromkeys",
    "OrderedDict", "collections.OrderedDict",
    "defaultdict", "collections.defaultdict",
    "deque", "collections.deque",
}


def _initializer_kind(value: ast.AST) -> str | None:
    """``"lock"`` / ``"mutable"`` / ``None`` for an assigned value."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return "mutable"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name in _LOCK_FACTORIES:
            return "lock"
        if name in _MUTABLE_FACTORIES:
            return "mutable"
        # dataclass field(default_factory=...) declarations
        if name in ("field", "dataclasses.field"):
            for kw in value.keywords:
                if kw.arg == "default_factory":
                    factory = dotted_name(kw.value)
                    if factory in _LOCK_FACTORIES:
                        return "lock"
                    if factory in _MUTABLE_FACTORIES:
                        return "mutable"
    return None


def _class_attrs(node: ast.ClassDef) -> "tuple[set, set]":
    """``(lock_attrs, mutable_attrs)`` a class declares."""
    locks: set = set()
    mutables: set = set()
    for item in node.body:
        # dataclass-style field declarations
        if (isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and item.value is not None):
            kind = _initializer_kind(item.value)
            if kind == "lock":
                locks.add(item.target.id)
            elif kind == "mutable":
                mutables.add(item.target.id)
        if (isinstance(item, ast.FunctionDef)
                and item.name in ("__init__", "__post_init__")):
            for stmt in ast.walk(item):
                targets: list[ast.AST] = []
                value = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                    targets, value = [stmt.target], stmt.value
                if value is None:
                    continue
                kind = _initializer_kind(value)
                if kind is None:
                    continue
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        (locks if kind == "lock"
                         else mutables).add(target.attr)
    return locks, mutables


class _GuardVisitor(ast.NodeVisitor):
    """Walk one function body tracking ``with <lock>:`` nesting."""

    def __init__(self, module: ModuleSource, where: str,
                 lock_names: set, flag_names: "dict[str, str]",
                 self_attrs: bool):
        self.module = module
        self.where = where
        #: dotted context-manager names that count as holding the lock
        self.lock_names = lock_names
        #: name -> description of the guarded object
        self.flag_names = flag_names
        #: match ``self.<name>`` attributes (class mode) vs bare names
        self.self_attrs = self_attrs
        self.depth = 0
        self.findings: list[Finding] = []
        self._seen: set = set()

    def _is_lock_item(self, item: ast.withitem) -> bool:
        return dotted_name(item.context_expr) in self.lock_names

    def _visit_with(self, node) -> None:
        locked = any(self._is_lock_item(item) for item in node.items)
        if locked:
            self.depth += 1
        self.generic_visit(node)
        if locked:
            self.depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _flag(self, node: ast.AST, name: str) -> None:
        key = (node.lineno, name)
        if self.depth > 0 or key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            rule="lock-discipline", path=self.module.path,
            line=node.lineno,
            message=f"{self.flag_names[name]} accessed outside "
                    f"'with <lock>' in {self.where}",
            hint="take the owning lock around the access, or suppress "
                 "with a justification for a deliberately racy read",
        ))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (self.self_attrs
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.flag_names):
            self._flag(node, node.attr)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if not self.self_attrs and node.id in self.flag_names:
            self._flag(node, node.id)
        self.generic_visit(node)


def _check_class(module: ModuleSource,
                 node: ast.ClassDef) -> list[Finding]:
    locks, mutables = _class_attrs(node)
    if not locks or not mutables:
        return []
    findings: list[Finding] = []
    flag_names = {name: f"self.{name}" for name in mutables}
    lock_names = {f"self.{name}" for name in locks}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name in ("__init__", "__post_init__"):
            continue
        visitor = _GuardVisitor(
            module, f"{node.name}.{item.name}", lock_names, flag_names,
            self_attrs=True)
        for stmt in item.body:
            visitor.visit(stmt)
        findings.extend(visitor.findings)
    return findings


def _check_module_level(module: ModuleSource) -> list[Finding]:
    locks: set = set()
    mutables: set = set()
    for stmt in module.tree.body:
        targets: list[ast.AST] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        kind = _initializer_kind(value)
        if kind is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                (locks if kind == "lock" else mutables).add(target.id)
    if not locks or not mutables:
        return []
    findings: list[Finding] = []
    flag_names = {name: f"module-level {name}" for name in mutables}
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visitor = _GuardVisitor(module, f"{stmt.name}()", locks,
                                    flag_names, self_attrs=False)
            for inner in stmt.body:
                visitor.visit(inner)
            findings.extend(visitor.findings)
    return findings


@register_rule("lock-discipline")
class LockDisciplineRule:
    """Flag lock-declaring scopes touching guarded state unlocked."""

    hint = ("state shared between the event loop and worker threads is "
            "only consistent under its owning lock")

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(_check_module_level(module))
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(_check_class(module, node))
        return findings
