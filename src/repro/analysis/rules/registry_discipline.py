"""Registry-discipline rule: resolve implementations via the registry.

Solvers and executors are looked up by name through
``repro.api.registry`` / the campaign executor table — that indirection
is what lets ``repro serve`` and campaign specs select implementations
from strings, and what keeps new backends drop-in. A direct
``from repro.api.solvers import MistSolver`` elsewhere re-couples the
call site to one concrete class and bypasses registration side effects.

This rule runs in two passes: first it collects every class registered
with ``@register_solver`` / ``@register_executor`` / ``@register_rule``
and the module defining it; then it flags ``from ... import <That>``
of those class names anywhere outside the allowed path set
(:attr:`~repro.analysis.config.CheckConfig.registry_allowed_paths`:
the registry modules themselves, executor wiring, and tests) and
outside the defining module's own package ``__init__`` re-exports —
which still need a suppression, keeping each one visible and justified.
"""

from __future__ import annotations

import ast

from ..config import path_matches
from ..findings import Finding
from ..project import Project, dotted_name
from ..registry import register_rule

__all__ = ["RegistryDisciplineRule"]

_REGISTER_DECORATORS = {
    "register_solver", "register_executor", "register_rule",
}


def _registered_classes(project: Project) -> "dict[str, str]":
    """Map registered class name -> path of the module defining it."""
    registered: dict = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                name = dotted_name(target)
                if (name is not None
                        and name.split(".")[-1] in _REGISTER_DECORATORS):
                    registered[node.name] = module.path
                    break
    return registered


@register_rule("registry-discipline")
class RegistryDisciplineRule:
    """Forbid importing registered classes outside the registry layer."""

    hint = ("look implementations up by name via the registry instead of "
            "importing concrete classes")

    def check(self, project: Project) -> list[Finding]:
        registered = _registered_classes(project)
        if not registered:
            return []
        findings: list[Finding] = []
        for module in project.modules:
            if path_matches(module.path,
                            project.config.registry_allowed_paths):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ImportFrom):
                    continue
                for alias in node.names:
                    origin = registered.get(alias.name)
                    if origin is None or origin == module.path:
                        continue
                    findings.append(Finding(
                        rule="registry-discipline", path=module.path,
                        line=alias.lineno,
                        message=f"direct import of registered class "
                                f"{alias.name!r} (defined in {origin})",
                        hint="resolve it by name via get_solver()/"
                             "get_executor(), or suppress a deliberate "
                             "public re-export",
                    ))
        return findings
