"""Serialization-contract rule: ``to_dict`` and ``from_dict`` must agree.

Every JSON-round-trippable dataclass in the tree (``TuningJob``,
``SolveReport``, ``TrainingPlan``, ``CampaignSpec``, ...) follows one
contract: ``from_dict(to_dict(x))`` reconstructs ``x``. The drift that
breaks it is always the same — a field added to the dataclass but not
to ``to_dict``, or a key renamed on one side only — and it corrupts
cache entries and campaign manifests long after the commit that caused
it. This rule cross-checks, per dataclass that defines ``to_dict``:

* a ``from_dict`` classmethod exists in the same class (one-way wire
  snapshots suppress with a justification);
* every key ``to_dict`` emits (dict-literal keys plus ``out["k"] = ...``
  assignments) is read back by ``from_dict`` (``data["k"]`` /
  ``data.get("k")``; a ``__dataclass_fields__`` sweep reads everything);
* every key ``from_dict`` *requires* (``data["k"]``) is emitted;
* every dataclass field is emitted, except private (``_x``) and
  runtime-only fields (``field(..., repr=False)``).

Classes whose ``to_dict`` delegates (no dict literal in the body) are
skipped — the contract is checked where the keys live.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..project import ModuleSource, Project, dotted_name
from ..registry import register_rule

__all__ = ["SerializationRule"]


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _emitted_keys(to_dict: ast.FunctionDef) -> set:
    """String keys ``to_dict`` can emit (dict literals + subscripts)."""
    keys: set = set()
    for node in ast.walk(to_dict):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value,
                                                                str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)):
                    keys.add(target.slice.value)
    return keys


def _consumed_keys(from_dict: ast.FunctionDef) -> "tuple[set, set, bool]":
    """``(consumed, required, wildcard)`` key sets of ``from_dict``."""
    consumed: set = set()
    required: set = set()
    wildcard = False
    args = from_dict.args.posonlyargs + from_dict.args.args
    data_name = args[1].arg if len(args) > 1 else None
    for node in ast.walk(from_dict):
        if isinstance(node, ast.Attribute):
            if node.attr == "__dataclass_fields__":
                wildcard = True
        elif (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == data_name
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            consumed.add(node.slice.value)
            required.add(node.slice.value)
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == data_name
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            consumed.add(node.args[0].value)
    return consumed, required, wildcard


def _is_classvar(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = dotted_name(target)
    return name is not None and name.split(".")[-1] == "ClassVar"


def _field_entries(node: ast.ClassDef) -> "list[tuple[str, int, bool]]":
    """``(name, line, runtime_only)`` per dataclass field declaration."""
    out = []
    for item in node.body:
        if not (isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)):
            continue
        if _is_classvar(item.annotation):
            continue
        runtime_only = False
        value = item.value
        if (isinstance(value, ast.Call)
                and dotted_name(value.func) in ("field",
                                                "dataclasses.field")):
            for kw in value.keywords:
                if (kw.arg == "repr"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False):
                    runtime_only = True
        out.append((item.target.id, item.lineno, runtime_only))
    return out


@register_rule("serialization")
class SerializationRule:
    """Cross-check every dataclass ``to_dict``/``from_dict`` pair."""

    hint = ("round-trippable dataclasses must serialize every field and "
            "read back every key they emit")

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                    findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: ModuleSource,
                     node: ast.ClassDef) -> list[Finding]:
        to_dict = _method(node, "to_dict")
        if to_dict is None:
            return []
        from_dict = _method(node, "from_dict")
        if from_dict is None:
            return [Finding(
                rule="serialization", path=module.path,
                line=to_dict.lineno,
                message=f"dataclass {node.name!r} defines to_dict but no "
                        f"from_dict",
                hint="add a from_dict classmethod, or suppress for a "
                     "one-way wire snapshot",
            )]
        emitted = _emitted_keys(to_dict)
        if not emitted:
            # to_dict delegates (e.g. to a module-level serializer);
            # the keys live elsewhere, nothing to cross-check here
            return []
        findings: list[Finding] = []
        consumed, required, wildcard = _consumed_keys(from_dict)
        if not wildcard:
            for key in sorted(emitted - consumed):
                findings.append(Finding(
                    rule="serialization", path=module.path,
                    line=to_dict.lineno,
                    message=f"{node.name}.to_dict emits {key!r} but "
                            f"from_dict never reads it",
                    hint="read it back in from_dict (data.get(...)), or "
                         "stop emitting it",
                ))
        for key in sorted(required - emitted):
            findings.append(Finding(
                rule="serialization", path=module.path,
                line=from_dict.lineno,
                message=f"{node.name}.from_dict requires {key!r} but "
                        f"to_dict never emits it",
                hint="emit the key in to_dict, or make it optional with "
                     "data.get(...)",
            ))
        for name, line, runtime_only in _field_entries(node):
            if name.startswith("_") or runtime_only or name in emitted:
                continue
            findings.append(Finding(
                rule="serialization", path=module.path, line=line,
                message=f"dataclass field {node.name}.{name} is never "
                        f"emitted by to_dict; round-trips drop it",
                hint="serialize it, or mark it runtime-only with "
                     "field(..., repr=False)",
            ))
        return findings
