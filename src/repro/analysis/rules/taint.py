"""Fingerprint-taint rule: no nondeterminism may *flow* into a key.

The determinism rule flags nondeterministic **references** inside
fingerprint paths; this rule closes the laundering gap it cannot see:
a ``time.time()`` stashed in a local, threaded through arithmetic, an
f-string, a dict, or a helper function's return value, and only then
handed to a fingerprint/serialization sink. Powered by the dataflow
engine (:mod:`repro.analysis.dataflow`) with one level of call-graph
propagation (:mod:`repro.analysis.callgraph`).

**Sources** (kind): wall clock incl. monotonic/perf counters
(``wall-clock``); ``random.*`` / ``os.urandom`` / ``uuid.uuid1/4`` /
``secrets.*`` (``entropy``); ``os.environ`` / ``os.getenv`` (``env``);
materializing or iterating an unordered ``set`` (``hash-order``).

**Sinks**: any ``fingerprint(...)``/``*.fingerprint(...)`` argument,
``json.dump(s)`` payloads, ``hashlib.*`` digests, and memo-key calls
(``*.lookup``/``*.store`` on a ``*memo*`` receiver, ``*_key(...)``
helpers).

**Sanitizers** are kind-aware: ``sorted(...)`` launders ``hash-order``
(a sorted set is deterministic) but *not* a wall-clock or entropy
value flowing through it; ``len``/``min``/``max``/``sum`` launder
``hash-order`` too (order-insensitive folds).

Scope: modules matching
:attr:`~repro.analysis.config.CheckConfig.taint_paths`. Locals only —
attribute/global flows stay the determinism rule's domain.
"""

from __future__ import annotations

import ast

from ..callgraph import CallGraph, FunctionInfo
from ..cfg import build_cfg, iter_functions
from ..config import path_matches
from ..dataflow import TaintAnalysis, TaintSpec
from ..findings import Finding
from ..project import Project, dotted_name
from ..registry import register_rule

__all__ = ["FingerprintTaintRule", "TAINT_SPEC", "taint_findings"]

_WALL_CLOCK = {
    name: ("wall-clock", name) for name in (
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "date.today", "datetime.date.today",
    )
}

_ENTROPY = {
    name: ("entropy", name) for name in (
        "os.urandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_hex", "secrets.token_bytes", "secrets.token_urlsafe",
    )
}

_ENV = {
    "os.getenv": ("env", "os.getenv"),
    "os.environ.get": ("env", "os.environ.get"),
}

#: the one seeded, reproducible entry point in the random module
_RANDOM_ALLOWED = frozenset({"random.Random", "random.seed"})

TAINT_SPEC = TaintSpec(
    call_sources={**_WALL_CLOCK, **_ENTROPY, **_ENV},
    ref_sources={**_WALL_CLOCK, **_ENTROPY,
                 "os.environ": ("env", "os.environ")},
    prefix_sources={"random.": ("entropy", "unseeded random.*")},
    sanitizers={
        "sorted": frozenset({"hash-order"}),
        "len": frozenset({"hash-order"}),
        "min": frozenset({"hash-order"}),
        "max": frozenset({"hash-order"}),
        "sum": frozenset({"hash-order"}),
    },
)

#: call-name suffixes that key a cache / fingerprint something
_SINK_SUFFIXES = ("fingerprint", "_key")
_SINK_EXACT = frozenset({"json.dumps", "json.dump"})
_SINK_PREFIXES = ("hashlib.",)
#: ``memo.lookup(key)`` / ``memo.store(key, ...)``: the key argument
_MEMO_METHODS = frozenset({"lookup", "store"})


def _sink_description(node: ast.Call) -> "str | None":
    """Sink label for a call node, or ``None`` if it is not a sink."""
    name = dotted_name(node.func)
    if name is not None:
        if name in _SINK_EXACT:
            return name
        if any(name.startswith(prefix) for prefix in _SINK_PREFIXES):
            return name
        short = name.split(".")[-1]
        if any(short == suffix or short.endswith(suffix)
               for suffix in _SINK_SUFFIXES):
            return name
    if isinstance(node.func, ast.Attribute):
        receiver = dotted_name(node.func.value) or ""
        if (node.func.attr in _MEMO_METHODS
                and "memo" in receiver.lower()):
            return f"{receiver}.{node.func.attr}"
    return None


def _spec_with_random_exemption() -> TaintSpec:
    """``random.Random(seed)`` is reproducible; keep it source-free."""
    return TAINT_SPEC


class _Summaries:
    """Lazy intraprocedural return-taint summaries, one per function.

    ``summary(qualname)`` answers: do this function's *own* sources
    reach its return value? Used at call sites for exactly one level
    of call-graph propagation (a summary never includes its callees'
    summaries, so laundering chains longer than one hop are out of
    scope by design — and documented as such).
    """

    def __init__(self, graph: CallGraph, spec: TaintSpec):
        self.graph = graph
        self.spec = spec
        self._cache: dict[str, frozenset] = {}

    def summary(self, qualname: str) -> frozenset:
        if qualname in self._cache:
            return self._cache[qualname]
        self._cache[qualname] = frozenset()  # cycle guard
        info = self.graph.functions.get(qualname)
        if info is None:
            return frozenset()
        cfg = build_cfg(info.node)
        analysis = TaintAnalysis(cfg, self.spec)
        self._cache[qualname] = analysis.return_taint
        return analysis.return_taint


class _FunctionChecker:
    def __init__(self, info: FunctionInfo, graph: CallGraph,
                 summaries: _Summaries, spec: TaintSpec,
                 rule: str = "fingerprint-taint"):
        self.info = info
        self.graph = graph
        self.summaries = summaries
        self.spec = spec
        self.rule = rule

    def _call_summary(self, node: ast.Call) -> frozenset:
        taints: frozenset = frozenset()
        for callee in self.graph.resolve_call(self.info, node):
            for source in self.summaries.summary(callee):
                _, _, dotted = callee.partition("::")
                taints |= frozenset({type(source)(
                    source.kind,
                    f"{source.description} via {dotted}()",
                    node.lineno)})
        return taints

    def findings(self) -> list:
        cfg = build_cfg(self.info.node)
        analysis = TaintAnalysis(cfg, self.spec,
                                 call_summary=self._call_summary)
        out = []
        seen: set = set()
        for _block, element, state in analysis.iter_states():
            for node in ast.walk(element):
                if not isinstance(node, ast.Call):
                    continue
                sink = _sink_description(node)
                if sink is None:
                    continue
                args = list(node.args) + [kw.value for kw in node.keywords
                                          if kw.arg != "sort_keys"]
                taints: frozenset = frozenset()
                for arg in args:
                    taints |= analysis.expr_taint(arg, state)
                taints = frozenset(
                    t for t in taints
                    if not t.description.startswith(tuple(_RANDOM_ALLOWED)))
                for taint in sorted(taints,
                                    key=lambda t: (t.kind, t.description)):
                    key = (node.lineno, sink, taint.kind, taint.description)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(Finding(
                        rule=self.rule,
                        path=self.info.module.path,
                        line=node.lineno,
                        message=(f"{taint.kind} value from "
                                 f"{taint.description} (line {taint.line}) "
                                 f"flows into {sink}()"),
                        hint=("fingerprints/memo keys must be pure "
                              "functions of their inputs; drop the "
                              "nondeterministic input or sanitize the "
                              "flow (sorted() launders hash-order)"),
                    ))
        return out


def taint_findings(project: Project, paths: tuple,
                   rule: str = "fingerprint-taint") -> list:
    """Run the taint scan over ``paths``, reporting under ``rule``.

    Shared by :class:`FingerprintTaintRule` and the ported determinism
    rule (which reports flows in its own path set under its own id).
    """
    graph = CallGraph.build(project)
    spec = _spec_with_random_exemption()
    summaries = _Summaries(graph, spec)
    findings = []
    for module in project.modules:
        if not path_matches(module.path, paths):
            continue
        for qual, node in iter_functions(module.tree):
            info = graph.functions.get(f"{module.path}::{qual}")
            if info is None:
                info = FunctionInfo(
                    qualname=f"{module.path}::{qual}",
                    module=module, node=node)
            checker = _FunctionChecker(info, graph, summaries, spec,
                                       rule=rule)
            findings.extend(checker.findings())
    findings.sort(key=lambda f: f.sort_key())
    return findings


@register_rule("fingerprint-taint")
class FingerprintTaintRule:
    """Trace nondeterministic values flowing into fingerprint sinks."""

    hint = ("a laundered clock/entropy/hash-order value poisons every "
            "cache keyed on the fingerprint it reaches")

    def check(self, project: Project) -> list:
        return taint_findings(project, project.config.taint_paths)
