"""Vectorization-discipline rule: no per-config loops in hot menu code.

The batched cost-model engine's contract is that an intra-stage config
menu is evaluated as columnar numpy arrays in a handful of whole-menu
calls — a Python ``for``/``while`` over menu rows silently degrades
that path back to per-config interpretation, which is exactly the
regression the vectorized/interpreted split exists to prevent.

Scope is the hot batched-evaluation modules
(:attr:`~repro.analysis.config.CheckConfig.vectorization_paths`). Every
loop statement there is flagged unless it lives inside a function whose
name marks it as the sanctioned ``engine="interpreted"`` reference path
(the name contains ``interpreted``). Loops that iterate something other
than menu rows — option blocks, already-reduced frontiers — stay, each
carrying a ``# repro: allow[vectorization-discipline] <why>``
suppression so the exception is visible and justified.
"""

from __future__ import annotations

import ast

from ..config import path_matches
from ..findings import Finding
from ..project import Project
from ..registry import register_rule

__all__ = ["VectorizationDisciplineRule"]


def _loops_outside_reference(tree: ast.AST) -> "list[ast.stmt]":
    """Loop statements not enclosed by an ``*interpreted*`` function."""
    out: list[ast.stmt] = []

    def visit(node: ast.AST, in_reference: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_reference = in_reference
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_in_reference = (in_reference
                                      or "interpreted" in child.name.lower())
            elif isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                if not in_reference:
                    out.append(child)
            visit(child, child_in_reference)

    visit(tree, False)
    return out


@register_rule("vectorization-discipline")
class VectorizationDisciplineRule:
    """Flag per-config loops outside the interpreted reference path."""

    hint = ("evaluate the whole menu through batched numpy calls; "
            "per-config iteration belongs to the engine=\"interpreted\" "
            "reference path only")

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if not path_matches(module.path,
                                project.config.vectorization_paths):
                continue
            for loop in _loops_outside_reference(module.tree):
                kind = ("while" if isinstance(loop, ast.While) else "for")
                findings.append(Finding(
                    rule="vectorization-discipline", path=module.path,
                    line=loop.lineno,
                    message=(f"python {kind!r} loop in batched-evaluation "
                             "code — menu rows must be evaluated as "
                             "columnar arrays"),
                    hint="vectorize it, move it into the interpreted "
                         "reference path, or suppress a justified "
                         "non-row loop",
                ))
        return findings
