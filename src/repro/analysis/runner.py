"""Run registered rules over a project and fold in suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .config import DEFAULT_CONFIG, CheckConfig
from .findings import Finding
from .project import Project
from .registry import get_rule, rule_names
from .suppressions import SuppressionIndex

__all__ = ["CheckResult", "check_project", "run_check"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one checker run: surviving findings + what ran."""

    findings: tuple[Finding, ...]
    rules: tuple[str, ...]
    #: modules examined, for reporting coverage
    module_count: int = 0
    suppression_count: int = field(default=0, repr=False)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:  # repro: allow[serialization] 'ok' is derived from findings on load
        return {
            "ok": self.ok,
            "rules": list(self.rules),
            "module_count": self.module_count,
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResult":
        return cls(
            findings=tuple(Finding.from_dict(f)
                           for f in data.get("findings", ())),
            rules=tuple(data.get("rules", ())),
            module_count=data.get("module_count", 0),
        )


def _resolve_rules(rules: "list[str] | None") -> tuple[str, ...]:
    if rules is None:
        return tuple(rule_names())
    # get_rule raises RuleNotFoundError (with the known names) on typos
    for name in rules:
        get_rule(name)
    return tuple(dict.fromkeys(rules))


def check_project(project: Project,
                  rules: "list[str] | None" = None) -> CheckResult:
    """Run ``rules`` (default: all registered) over a parsed project."""
    active = _resolve_rules(rules)
    findings: list[Finding] = list(project.parse_failures)
    for name in active:
        findings.extend(get_rule(name).check(project))
    index = SuppressionIndex(project.modules)
    findings = index.apply(findings, active)
    findings.sort(key=lambda f: f.sort_key())
    return CheckResult(
        findings=tuple(findings),
        rules=active,
        module_count=len(project.modules),
        suppression_count=len(index._suppressions),
    )


def run_check(paths: "list[str | Path]",
              rules: "list[str] | None" = None,
              config: "CheckConfig | None" = None) -> CheckResult:
    """Parse ``paths`` (files or directories) and check them."""
    project = Project.from_paths(paths, config=config or DEFAULT_CONFIG)
    return check_project(project, rules=rules)
