"""SARIF 2.1.0 emission for ``repro check --format sarif``.

SARIF (Static Analysis Results Interchange Format, OASIS) is what
GitHub code scanning ingests: CI uploads the file with
``github/codeql-action/upload-sarif`` and every finding annotates the
PR diff at its exact line. The mapping is deliberately small and
total:

* one ``run`` per invocation, tool ``repro-check``;
* one ``reportingDescriptor`` per rule that *ran* (its class docstring
  becomes the short description, its ``hint`` the full one) — so the
  rule index is stable even on clean runs;
* one ``result`` per finding: ``ruleId``, ``level: "error"`` (the
  check job fails on any unsuppressed finding, so every finding is
  blocking by definition), message text of ``message — hint``, and a
  physical location with the repo-relative URI.

Paths are emitted as given (the CLI passes paths relative to the
checkout root, which is what code scanning expects).
"""

from __future__ import annotations

from .findings import Finding
from .registry import rule_registry
from .runner import CheckResult

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_TOOL_NAME = "repro-check"
_INFO_URI = "https://github.com/mist-repro/mist-repro"


def _rule_descriptor(rule_id: str) -> dict:
    registry = rule_registry()
    cls = registry.get(rule_id)
    doc = ""
    hint = ""
    if cls is not None:
        doc = (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ \
            else ""
        hint = getattr(cls, "hint", "") or doc
    descriptor = {
        "id": rule_id,
        "name": "".join(part.capitalize()
                        for part in rule_id.split("-")),
        "defaultConfiguration": {"level": "error"},
    }
    if doc:
        descriptor["shortDescription"] = {"text": doc}
    if hint:
        descriptor["fullDescription"] = {"text": hint}
    return descriptor


def _result(finding: Finding, rule_index: dict) -> dict:
    text = finding.message
    if finding.hint:
        text = f"{finding.message} — {finding.hint}"
    result = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": text},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {"startLine": max(1, finding.line)},
            },
        }],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    return result


def to_sarif(result: CheckResult, *,
             tool_version: "str | None" = None) -> dict:
    """Render one check run as a SARIF 2.1.0 log dict."""
    if tool_version is None:
        from repro import __version__ as tool_version
    # findings can carry rule ids outside the configured run (the
    # unused-suppression meta-rule): include those descriptors too
    rule_ids = list(dict.fromkeys(
        list(result.rules) + [f.rule for f in result.findings]))
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "version": tool_version,
                    "informationUri": _INFO_URI,
                    "rules": [_rule_descriptor(rule_id)
                              for rule_id in rule_ids],
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": [_result(f, rule_index)
                        for f in result.findings],
        }],
    }
