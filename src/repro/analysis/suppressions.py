"""Inline suppressions: ``# repro: allow[rule-id] <justification>``.

A suppression silences matching findings on its own line (trailing
comment) or on the next line (comment-only line). Several ids may be
listed comma-separated: ``# repro: allow[determinism, lock-discipline]``.
Anything after the bracket is the justification — required by
convention, enforced by review.

Suppressions are themselves checked: one that silences nothing is
reported as an ``unused-suppression`` finding, so stale allows cannot
accumulate and quietly mask future regressions. Unused-suppression
findings cannot be suppressed.

Comments are found with :mod:`tokenize`, so ``repro: allow[...]``
inside a string literal never counts as a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding
from .project import ModuleSource

__all__ = ["Suppression", "SuppressionIndex", "UNUSED_RULE_ID",
           "collect_suppressions"]

UNUSED_RULE_ID = "unused-suppression"

_ALLOW_RE = re.compile(r"repro:\s*allow\[([^\]]+)\]")


@dataclass
class Suppression:
    """One allow-comment: where it is and which rules it silences."""

    path: str
    #: line the comment sits on (where unused-suppression reports)
    line: int
    #: line whose findings it silences
    target_line: int
    rules: tuple[str, ...]
    #: rule ids that actually matched a finding
    used: set = field(default_factory=set)

    def matches(self, finding: Finding) -> bool:
        return (finding.path == self.path
                and finding.line == self.target_line
                and finding.rule in self.rules
                and finding.rule != UNUSED_RULE_ID)


def collect_suppressions(module: ModuleSource) -> list[Suppression]:
    out: list[Suppression] = []
    readline = io.StringIO(module.source).readline
    try:
        tokens = list(tokenize.generate_tokens(readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(tok.string)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group(1).split(",")
            if rule.strip()
        )
        if not rules:
            continue
        line = tok.start[0]
        # a comment-only line guards the line below it; a trailing
        # comment guards its own line
        own_line = module.lines[line - 1] if line <= len(module.lines) else ""
        comment_only = own_line.lstrip().startswith("#")
        out.append(Suppression(
            path=module.path, line=line,
            target_line=line + 1 if comment_only else line,
            rules=rules,
        ))
    return out


class SuppressionIndex:
    """All suppressions of a project, ready to filter findings."""

    def __init__(self, modules: list[ModuleSource]):
        self._suppressions: list[Suppression] = []
        for module in modules:
            self._suppressions.extend(collect_suppressions(module))

    def apply(self, findings: list[Finding],
              active_rules: tuple[str, ...]) -> list[Finding]:
        """Drop suppressed findings; append unused-suppression findings.

        ``active_rules`` is the set this run actually executed: an
        allow for a rule that was filtered out with ``--rule`` is
        neither applied nor reported unused.
        """
        kept: list[Finding] = []
        for finding in findings:
            matched = None
            for suppression in self._suppressions:
                if suppression.matches(finding):
                    matched = suppression
                    break
            if matched is not None:
                matched.used.add(finding.rule)
            else:
                kept.append(finding)
        for suppression in self._suppressions:
            for rule in suppression.rules:
                # an allow[unused-suppression] can never match anything
                # (the meta-rule is unsuppressable), so it is stale by
                # definition whatever rules ran
                if rule != UNUSED_RULE_ID and rule not in active_rules:
                    continue
                if rule not in suppression.used:
                    kept.append(Finding(
                        rule=UNUSED_RULE_ID,
                        path=suppression.path,
                        line=suppression.line,
                        message=(f"allow[{rule}] suppresses nothing on "
                                 f"line {suppression.target_line}"),
                        hint="remove the stale suppression comment",
                    ))
        return kept
