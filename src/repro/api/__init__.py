"""Unified solver API: declarative jobs, a solver registry, plan caching.

The stable surface every tuning backend plugs into::

    from repro.api import TuningJob, solve

    job = TuningJob(model="gpt3-1.3b", gpu="L4", num_gpus=2,
                    global_batch=32, scale="quick", parallelism=4)
    report = solve(job, solver="mist")
    print(report.plan.describe())
    report_json = report.to_json()          # round-trippable

    for name in ("megatron", "deepspeed", "aceso"):
        print(name, solve(job, solver=name).throughput)

See :mod:`repro.api.job` (inputs), :mod:`repro.api.report` (outputs),
:mod:`repro.api.registry` (the ``@register_solver`` protocol),
:mod:`repro.api.solvers` (built-in backends),
:mod:`repro.api.cache` (fingerprint-keyed on-disk plan cache), and
:mod:`repro.api.replan` (elastic re-tuning after a cluster change).
"""

from .cache import PlanCache, default_cache_dir
from .job import JobValidationError, TuningJob
from .registry import (
    Solver,
    SolverNotFoundError,
    get_solver,
    register_solver,
    solver_names,
    solver_registry,
)
from .replan import delta_job, replan
from .report import SolveReport
from .solvers import (
    AcesoSolver,  # repro: allow[registry-discipline] public API re-export
    DeepSpeedSolver,  # repro: allow[registry-discipline] public API re-export
    MegatronSolver,  # repro: allow[registry-discipline] public API re-export
    MistSolver,  # repro: allow[registry-discipline] public API re-export
    UniformSolver,  # repro: allow[registry-discipline] public API re-export
    solve,
)

__all__ = [
    "AcesoSolver",
    "DeepSpeedSolver",
    "JobValidationError",
    "MegatronSolver",
    "MistSolver",
    "PlanCache",
    "Solver",
    "SolveReport",
    "SolverNotFoundError",
    "TuningJob",
    "UniformSolver",
    "default_cache_dir",
    "delta_job",
    "get_solver",
    "register_solver",
    "replan",
    "solve",
    "solver_names",
    "solver_registry",
]
