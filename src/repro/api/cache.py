"""On-disk plan cache keyed by job fingerprint.

Tuning is deterministic for a given :class:`~repro.api.job.TuningJob`,
so a solved report can be reused by any later process that submits an
equivalent job (``parallelism`` differences excluded — they change
speed, not the answer). Entries are one JSON file per
``(solver, job.fingerprint())`` pair under a root directory taken from,
in order: the constructor argument, ``$REPRO_PLAN_CACHE``, or
``~/.cache/repro/plans``.
"""

from __future__ import annotations

import os
from pathlib import Path

from .job import TuningJob
from .report import SolveReport

__all__ = ["PlanCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_PLAN_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "plans"


class PlanCache:
    """Filesystem-backed store of solved reports."""

    def __init__(self, root: "str | Path | None" = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, job: TuningJob, solver: str) -> Path:
        return self.root / f"{solver}-{job.fingerprint()}.json"

    def load(self, job: TuningJob, solver: str) -> SolveReport | None:
        """The cached report, or ``None`` on miss/corruption."""
        path = self.path_for(job, solver)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            report = SolveReport.from_json(text)
        except (ValueError, KeyError, TypeError):
            return None
        report.from_cache = True
        return report

    def store(self, report: SolveReport) -> Path:
        path = self.path_for(report.job, report.solver)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(report.to_json())
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
