"""On-disk plan cache keyed by job fingerprint.

Tuning is deterministic for a given :class:`~repro.api.job.TuningJob`,
so a solved report can be reused by any later process that submits an
equivalent job (``parallelism`` differences excluded — they change
speed, not the answer). Entries are one JSON file per
``(solver, job.fingerprint())`` pair under a root directory taken from,
in order: the constructor argument, ``$REPRO_PLAN_CACHE``, or
``~/.cache/repro/plans``.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from .job import TuningJob
from .report import SolveReport

__all__ = ["PlanCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_PLAN_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "plans"


class PlanCache:
    """Filesystem-backed store of solved reports.

    Safe under concurrent readers and writers in one or many processes:
    writes go to a per-writer temp file and land with an atomic rename,
    so a reader only ever sees a complete entry (or none). The ``repro
    serve`` daemon shares a single instance across its worker pool.
    """

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, job: TuningJob, solver: str) -> Path:
        return self.path_for_fingerprint(job.fingerprint(), solver)

    def path_for_fingerprint(self, fingerprint: str, solver: str) -> Path:
        return self.root / f"{solver}-{fingerprint}.json"

    def load(self, job: TuningJob, solver: str) -> SolveReport | None:
        """The cached report, or ``None`` on miss/corruption."""
        return self.load_fingerprint(job.fingerprint(), solver)

    def load_fingerprint(self, fingerprint: str,
                         solver: str) -> SolveReport | None:
        """Look up by raw fingerprint (the ``GET /plans/<fp>`` path)."""
        path = self.path_for_fingerprint(fingerprint, solver)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            report = SolveReport.from_json(text)
        except (ValueError, KeyError, TypeError):
            return None
        report.from_cache = True
        return report

    def store(self, report: SolveReport) -> Path:
        path = self.path_for(report.job, report.solver)
        path.parent.mkdir(parents=True, exist_ok=True)
        # unique per writer: concurrent stores of the same key must not
        # truncate each other's in-progress temp file
        tmp = path.with_name(
            f".{path.stem}.{os.getpid()}-{threading.get_ident()}.tmp")
        try:
            tmp.write_text(report.to_json())
            tmp.replace(path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
