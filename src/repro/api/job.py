"""Declarative tuning jobs — the input half of the solver API.

A :class:`TuningJob` pins down everything a solver needs to produce a
:class:`~repro.api.report.SolveReport`: the workload (model, cluster
shape, batch, sequence length), the search space and tuning-scale
preset, the interference-model policy, and the search budget
(``parallelism`` worker count for the outer (S, G) fan-out, ``keep_top``
candidate plans to execute).

Jobs are plain data: JSON round-trippable via :meth:`TuningJob.to_json`
/ :meth:`TuningJob.from_json`, and content-addressed via
:meth:`TuningJob.fingerprint` (the plan cache key). Spaces and scales
are stored either as registry slugs (``"mist"``, ``"quick"``) or as
fully inlined dicts for customized instances — both serialize.

Clusters default to the homogeneous shape implied by ``gpu`` /
``num_gpus``; an explicit ``cluster`` dict (the
:func:`repro.hardware.cluster_from_dict` schema, see ``docs/API.md``)
pins the exact topology and is how heterogeneous fleets — named device
groups with different GPU types — enter the API. Build such jobs with
:meth:`TuningJob.for_cluster`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.spaces import SearchSpace, get_space, space_from_dict
from repro.symbolic import validate_engine
from repro.evaluation.workloads import (
    TuningScale,
    WorkloadSpec,
    get_scale,
    mixed_workload,
    scale_from_dict,
)
from repro.hardware import (
    ClusterSpec,
    HeterogeneousCluster,
    cluster_from_dict,
)

__all__ = ["TuningJob", "JobValidationError"]

#: interference-model policies a job may request
_INTERFERENCE_POLICIES = ("auto", "none")


class JobValidationError(ValueError):
    """A job's fields are inconsistent or out of range."""


@dataclass(frozen=True)
class TuningJob:
    """One declarative auto-tuning request.

    ``space`` / ``scale`` accept either a registry slug (see
    ``repro.core.spaces.NAMED_SPACES`` and
    ``repro.evaluation.workloads.SCALES``) or an inlined dict produced
    by ``space_to_dict`` / ``scale_to_dict``.
    """

    model: str
    num_gpus: int
    global_batch: int
    gpu: str = "L4"
    seq_len: int = 2048
    flash: bool = True
    space: str | dict = "mist"
    scale: str | dict = "quick"
    #: "auto" fits the interference model to the cluster fabric;
    #: "none" disables interference-aware prediction
    interference: str = "auto"
    #: worker threads for the outer (S, G) search; 1 = serial,
    #: 0 = one per CPU core
    parallelism: int = 1
    #: cost-model evaluation engine: "vectorized" (compiled numpy
    #: closures over whole config menus, the default) or "interpreted"
    #: (per-config tree walking — the slow differential-test reference).
    #: Solved plans are bit-identical across engines.
    engine: str = "vectorized"
    #: number of top predicted plans the solver may execute/verify
    keep_top: int = 3
    #: explicit cluster topology (repro.hardware.cluster_from_dict
    #: schema); None = homogeneous cluster implied by gpu/num_gpus
    cluster: dict | None = None
    #: free-form per-solver knobs (must stay JSON-serializable)
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise JobValidationError("num_gpus must be >= 1")
        if self.cluster is not None:
            try:
                parsed = cluster_from_dict(self.cluster)
            except (KeyError, TypeError, ValueError) as exc:
                raise JobValidationError(
                    f"invalid cluster description: {exc}"
                ) from exc
            if parsed.total_gpus != self.num_gpus:
                raise JobValidationError(
                    f"cluster has {parsed.total_gpus} GPUs but "
                    f"num_gpus={self.num_gpus}"
                )
        if self.global_batch < 1:
            raise JobValidationError("global_batch must be >= 1")
        if self.seq_len < 1:
            raise JobValidationError("seq_len must be >= 1")
        if self.parallelism < 0:
            raise JobValidationError("parallelism must be >= 0")
        if self.keep_top < 1:
            raise JobValidationError("keep_top must be >= 1")
        if self.interference not in _INTERFERENCE_POLICIES:
            raise JobValidationError(
                f"interference must be one of {_INTERFERENCE_POLICIES}, "
                f"got {self.interference!r}"
            )
        try:
            validate_engine(self.engine)
        except ValueError as exc:
            raise JobValidationError(str(exc)) from exc

    # -- resolution --------------------------------------------------------

    @property
    def workload(self) -> WorkloadSpec:
        return WorkloadSpec(
            model_spec=self.model, gpu_name=self.gpu,
            num_gpus=self.num_gpus, global_batch=self.global_batch,
            seq_len=self.seq_len, flash=self.flash,
            cluster_dict=self.cluster,
        )

    def resolved_cluster(self) -> "ClusterSpec | HeterogeneousCluster":
        """The cluster this job tunes for (explicit dict or implied)."""
        return self.workload.cluster

    @classmethod
    def from_workload(cls, spec: WorkloadSpec,
                      **overrides: Any) -> "TuningJob":
        if spec.cluster_dict is not None:
            overrides.setdefault("cluster", spec.cluster_dict)
        return cls(
            model=spec.model_spec, gpu=spec.gpu_name,
            num_gpus=spec.num_gpus, global_batch=spec.global_batch,
            seq_len=spec.seq_len, flash=spec.flash, **overrides,
        )

    @classmethod
    def for_cluster(cls,
                    cluster: "dict | ClusterSpec | HeterogeneousCluster",
                    *, model: str, global_batch: int, seq_len: int = 2048,
                    flash: bool = True, **kwargs: Any) -> "TuningJob":
        """Build a job for an explicit (possibly heterogeneous) cluster.

        ``num_gpus`` and ``gpu`` are derived from the cluster (via
        :func:`repro.evaluation.workloads.mixed_workload`); all other
        :class:`TuningJob` fields pass through ``kwargs``.
        """
        try:
            spec = mixed_workload(cluster, model, global_batch,
                                  seq_len=seq_len, flash=flash)
        except (KeyError, TypeError, ValueError) as exc:
            raise JobValidationError(
                f"invalid cluster description: {exc}"
            ) from exc
        return cls.from_workload(spec, **kwargs)

    def resolved_space(self) -> SearchSpace:
        if isinstance(self.space, str):
            return get_space(self.space)
        return space_from_dict(self.space)

    def resolved_scale(self) -> TuningScale:
        if isinstance(self.scale, str):
            return get_scale(self.scale)
        return scale_from_dict(self.scale)

    def with_(self, **changes: Any) -> "TuningJob":
        return replace(self, **changes)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "model": self.model,
            "gpu": self.gpu,
            "num_gpus": self.num_gpus,
            "global_batch": self.global_batch,
            "seq_len": self.seq_len,
            "flash": self.flash,
            "space": self.space,
            "scale": self.scale,
            "interference": self.interference,
            "parallelism": self.parallelism,
            "keep_top": self.keep_top,
            "options": self.options,
        }
        # serialized only when explicit, so pre-existing jobs keep their
        # dict shape — and, below, their cache fingerprints
        if self.cluster is not None:
            out["cluster"] = self.cluster
        if self.engine != "vectorized":
            out["engine"] = self.engine
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TuningJob":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TuningJob":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Stable content hash — the on-disk plan-cache key.

        ``parallelism`` and ``engine`` are excluded: they change how
        fast the search runs, never which plan it returns (the engines
        are bit-identical by contract, and the differential test suite
        holds them to it).
        """
        payload = self.to_dict()
        payload.pop("parallelism")
        payload.pop("engine", None)
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]
