"""Solver registry: one stable protocol every tuning backend plugs into.

A *solver* consumes a declarative :class:`~repro.api.job.TuningJob` and
returns a :class:`~repro.api.report.SolveReport`. Backends register
under a short name::

    @register_solver("my-system")
    class MySolver:
        \"\"\"One-line description shown by ``repro solvers``.\"\"\"

        def solve(self, job: TuningJob) -> SolveReport:
            ...

and become reachable from the CLI (``repro tune --solver my-system``,
``--compare my-system``), sweeps, and the evaluation runner without any
call-site changes — adding a new scenario is a registry entry, not a
code fork.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from .job import TuningJob
from .report import SolveReport

__all__ = [
    "Solver",
    "SolverNotFoundError",
    "register_solver",
    "get_solver",
    "solver_names",
    "solver_registry",
]

_REGISTRY: dict[str, type] = {}


class SolverNotFoundError(KeyError):
    """No solver registered under the requested name."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown solver {name!r}; registered: {solver_names()}"
        )
        self.name = name


@runtime_checkable
class Solver(Protocol):
    """What a registered backend must implement."""

    def solve(self, job: TuningJob) -> SolveReport:  # pragma: no cover
        ...


def register_solver(name: str, *,
                    overwrite: bool = False) -> Callable[[type], type]:
    """Class decorator: expose a solver class under ``name``."""

    def decorate(cls: type) -> type:
        if not overwrite and name in _REGISTRY and _REGISTRY[name] is not cls:
            raise ValueError(f"solver {name!r} already registered")
        cls.solver_name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_solver(name: str) -> Solver:
    """Instantiate the solver registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise SolverNotFoundError(name) from None
    return cls()


def solver_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def solver_registry() -> dict[str, type]:
    """A snapshot of the registry (name -> solver class)."""
    return dict(_REGISTRY)
