"""Elastic re-tuning: warm-started replanning after a cluster change.

The entry point for "the fleet just changed — get me a new plan,
fast". :func:`delta_job` applies a
:class:`~repro.hardware.ClusterDelta` to a job's cluster and returns
the post-change job (same model, batch, space, scale — only the
topology moves, so the new job's fingerprint is the natural cache key
for the re-tuned plan). :func:`replan` then solves that job
warm-started from the incumbent plan: the branch-and-bound seeds its
best-first order with the incumbent's (S, G) cell and prunes against
the first solved objective from step zero, while the engine-scoped
menu memo keeps serving device groups the delta did not touch.

The contract (held by ``tests/core/test_replan.py`` and gated in CI by
``repro bench --min-warm-speedup``): the warm plan is **bit-identical**
to what a cold :func:`repro.api.solve` of the same post-delta job
would choose — warm-starting changes how much work the search does,
never its answer. The incumbent's *old* objective is never reused as a
bound; the delta changed the cost landscape, so only the incumbent's
shape (stage count, gradient-accumulation factor, device-group
sequence) carries over.

::

    from repro.api import TuningJob, replan
    from repro.hardware import ClusterDelta

    job = TuningJob(model="gpt3-2.7b", gpu="L4", num_gpus=8,
                    global_batch=64)
    report = solve(job, cache=cache)             # day 0: cold tune
    delta = ClusterDelta.remove_nodes(1)         # day 7: a node dies
    new = replan(job, delta, cache=cache)        # warm re-tune
    new.extra["replan"]["warm"]                  # -> True
"""

from __future__ import annotations

from typing import Callable

from repro.core.plan import TrainingPlan
from repro.hardware import ClusterDelta

from .cache import PlanCache
from .job import TuningJob
from .registry import get_solver
from .report import SolveReport
from .solvers import solve

__all__ = ["delta_job", "replan"]


def delta_job(job: TuningJob, delta: "ClusterDelta | dict") -> TuningJob:
    """The job ``job`` becomes once ``delta`` hits its cluster.

    Everything except the topology is preserved — model, batch, search
    space, scale preset, interference policy, budgets, options. The
    returned job always carries an explicit ``cluster`` dict (even when
    the original relied on the implied ``gpu``/``num_gpus`` shape), so
    warm and cold solves of the same delta share one fingerprint.
    """
    if isinstance(delta, dict):
        delta = ClusterDelta.from_dict(delta)
    new_cluster = delta.apply(job.resolved_cluster())
    return TuningJob.for_cluster(
        new_cluster, model=job.model, global_batch=job.global_batch,
        seq_len=job.seq_len, flash=job.flash,
        space=job.space, scale=job.scale,
        interference=job.interference, parallelism=job.parallelism,
        engine=job.engine, keep_top=job.keep_top,
        options=dict(job.options),
    )


def replan(job: TuningJob, delta: "ClusterDelta | dict",
           solver: str = "mist", *,
           cache: PlanCache | None = None,
           incumbent: "TrainingPlan | SolveReport | None" = None,
           progress: "Callable[[int, int], None] | None" = None,
           should_stop: "Callable[[], bool] | None" = None) -> SolveReport:
    """Re-tune ``job`` for its cluster after ``delta``, warm-started.

    The incumbent plan is taken from the ``incumbent`` argument (a
    plan or a prior :class:`SolveReport`) or, failing that, looked up
    in the ``cache`` under the *pre-delta* job. With an incumbent and
    the ``mist`` solver, the search warm-starts (and ``keep_top`` is
    pinned to 1 — a replan wants the winner fast); without one, or for
    baseline solvers, it falls back to a cold :func:`solve` of the
    post-delta job — correct either way, just slower.

    ``report.extra["replan"]`` records the provenance: the delta, the
    pre-delta fingerprint, whether the warm path ran, and where the
    incumbent came from. The result is cached under the post-delta
    job's fingerprint, so a repeated replan (or a cold solve of the
    same changed cluster) is a cache hit.
    """
    if isinstance(delta, dict):
        delta = ClusterDelta.from_dict(delta)
    new_job = delta_job(job, delta)
    provenance: dict = {
        "delta": delta.to_dict(),
        "describe": delta.describe(),
        "base_fingerprint": job.fingerprint(),
    }
    if cache is not None:
        hit = cache.load(new_job, solver)
        if hit is not None:
            hit.extra = {**hit.extra, "replan": {
                **provenance, "warm": False, "incumbent": "cache-hit"}}
            return hit

    plan: TrainingPlan | None = None
    source = "none"
    if isinstance(incumbent, SolveReport):
        plan, source = incumbent.plan, "report"
    elif isinstance(incumbent, TrainingPlan):
        plan, source = incumbent, "explicit"
    elif cache is not None:
        base_hit = cache.load(job, solver)
        if base_hit is not None and base_hit.plan is not None:
            plan, source = base_hit.plan, "cache"

    # capability check, not a class check: any registered solver that
    # exposes replan() gets the warm path (today that is mist)
    backend = get_solver(solver)
    if plan is not None and callable(getattr(backend, "replan", None)):
        report = backend.replan(new_job, plan, progress=progress,
                                should_stop=should_stop)
        warm = True
    else:
        report = solve(new_job, solver, cache=None,
                       progress=progress, should_stop=should_stop)
        warm = False
    report.extra = {**report.extra, "replan": {
        **provenance, "warm": warm, "incumbent": source}}
    if cache is not None:
        cache.store(report)
    return report
