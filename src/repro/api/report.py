"""Unified solver output — the result half of the solver API.

Every registered solver returns a :class:`SolveReport`: the winning
:class:`~repro.core.plan.TrainingPlan`, the solver's *predicted* metrics
(when it has a performance model), the *measured* metrics from executing
the plan on the simulated cluster, and the search log. Reports are JSON
round-trippable — ``SolveReport.from_json(r.to_json()).to_json()`` is
byte-identical to ``r.to_json()`` — so sweep results and cached plans
survive on disk across processes.

The live :class:`~repro.execution.engine.IterationResult` (pipeline
timeline, per-stage memory traces) is kept on the runtime-only
``result`` attribute and is *not* serialized.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.plan import TrainingPlan

from .job import TuningJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.execution import IterationResult

__all__ = ["SolveReport"]


@dataclass
class SolveReport:
    """One solver's outcome on one :class:`~repro.api.job.TuningJob`."""

    solver: str
    job: TuningJob
    plan: TrainingPlan | None = None
    #: model-predicted metrics (empty for measure-only grid searches):
    #: ``iteration_time`` (s), ``throughput`` (samples/s)
    predicted: dict = field(default_factory=dict)
    #: metrics measured by executing ``plan`` on the simulated cluster:
    #: ``iteration_time``, ``throughput``, ``peak_memory`` (bytes)
    measured: dict = field(default_factory=dict)
    tuning_time_seconds: float = 0.0
    configurations_evaluated: int = 0
    #: per-candidate diagnostics, solver-specific entries
    search_log: list = field(default_factory=list)
    #: explored/pruned/memo-hit counters from the prune-and-memoize
    #: search engine (``SearchStats.to_dict()``; empty for solvers
    #: without one) — aggregated into the service ``/metrics``
    search_stats: dict = field(default_factory=dict)
    #: runner-executed candidate plans, best predicted first
    top_plans: list = field(default_factory=list)
    #: free-form solver extras (must stay JSON-serializable)
    extra: dict = field(default_factory=dict)
    #: live execution result — runtime-only, never serialized
    result: "IterationResult | None" = field(
        default=None, compare=False, repr=False)
    #: True when this report was loaded from a plan cache — runtime-only
    from_cache: bool = field(default=False, compare=False, repr=False)

    @property
    def found(self) -> bool:
        return self.plan is not None

    @property
    def throughput(self) -> float:
        """Measured samples/second (0.0 when nothing executed)."""
        return float(self.measured.get("throughput", 0.0))

    def describe(self) -> str:
        lines = [f"[{self.solver}] job {self.job.fingerprint()}"]
        if self.plan is None:
            lines.append("  no feasible plan found")
            return "\n".join(lines)
        lines.append("  " + self.plan.describe().replace("\n", "\n  "))
        if self.predicted:
            lines.append(
                f"  predicted: {self.predicted.get('iteration_time', 0.0) * 1e3:.1f} ms"
                f" / {self.predicted.get('throughput', 0.0):.2f} samples/s"
            )
        if self.measured:
            lines.append(
                f"  measured:  {self.measured.get('iteration_time', 0.0) * 1e3:.1f} ms"
                f" / {self.measured.get('throughput', 0.0):.2f} samples/s"
            )
        lines.append(
            f"  evaluated {self.configurations_evaluated} configurations "
            f"in {self.tuning_time_seconds:.1f}s"
        )
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "solver": self.solver,
            "job": self.job.to_dict(),
            "plan": self.plan.to_dict() if self.plan else None,
            "predicted": self.predicted,
            "measured": self.measured,
            "tuning_time_seconds": self.tuning_time_seconds,
            "configurations_evaluated": self.configurations_evaluated,
            "search_log": self.search_log,
            "search_stats": self.search_stats,
            "top_plans": [plan.to_dict() for plan in self.top_plans],
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolveReport":
        return cls(
            solver=data["solver"],
            job=TuningJob.from_dict(data["job"]),
            plan=(TrainingPlan.from_dict(data["plan"])
                  if data.get("plan") else None),
            predicted=dict(data.get("predicted", {})),
            measured=dict(data.get("measured", {})),
            tuning_time_seconds=float(data.get("tuning_time_seconds", 0.0)),
            configurations_evaluated=int(
                data.get("configurations_evaluated", 0)),
            search_log=list(data.get("search_log", [])),
            search_stats=dict(data.get("search_stats", {})),
            top_plans=[TrainingPlan.from_dict(p)
                       for p in data.get("top_plans", [])],
            extra=dict(data.get("extra", {})),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        # allow_nan=False: reports must parse under *strict* JSON (jq,
        # JSON.parse), so a stray inf/nan is a bug here, not output
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent,
                          allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "SolveReport":
        return cls.from_dict(json.loads(text))
