"""Built-in solvers: Mist plus the paper's comparison systems.

Every backend the paper evaluates (Figs. 11–16) is a registry entry
here, all speaking the same ``solve(job) -> SolveReport`` protocol:

* ``mist``      — the hierarchical memory-parallelism co-optimizing
  tuner (predict, then execute the top plans to de-bias the winner's
  curse);
* ``megatron`` / ``deepspeed`` — execute-and-measure grid searches over
  each manual system's configuration space (Section 6.1);
* ``aceso``     — iterative bottleneck alleviation with an
  overlap-unaware predictor;
* ``uniform``   — the uniform-strategy heuristic (Yuan et al., §3.3).

Heterogeneous clusters (``job.cluster``): ``mist`` tunes them natively
— per-device-group analyzers, group-aware stage partitioning, and
execution on the mixed fleet. The baselines predate heterogeneity, so
they fall back to the conservative worst-GPU homogeneous view
(:meth:`~repro.hardware.HeterogeneousCluster.fallback_homogeneous`)
with a :class:`RuntimeWarning` — mirroring how one would actually run
Megatron-LM/DeepSpeed on a mixed fleet.
"""

from __future__ import annotations

import inspect
import json
import os
import time
import warnings
from typing import Any, Callable, ClassVar

from repro.baselines import (
    AcesoTuner,
    BaselineResult,
    DeepSpeedTuner,
    MegatronTuner,
    UniformHeuristicTuner,
)
from repro.core import MistTuner
from repro.core.plan import TrainingPlan
from repro.core.tuner import SearchCancelled
from repro.evaluation.runner import calibrated_interference
from repro.execution import ExecutionEngine, IterationResult, OOMError
from repro.hardware import ClusterSpec, HeterogeneousCluster

from .cache import PlanCache
from .job import TuningJob
from .registry import get_solver, register_solver
from .report import SolveReport

__all__ = [
    "MistSolver",
    "MegatronSolver",
    "DeepSpeedSolver",
    "AcesoSolver",
    "UniformSolver",
    "SyntheticSolver",
    "solve",
]


def _measured(result: IterationResult | None) -> dict:
    if result is None:
        return {}
    return {
        "iteration_time": float(result.iteration_time),
        "throughput": float(result.throughput),
        "peak_memory": float(result.peak_memory),
    }


def _job_interference(job: TuningJob) -> Any:
    """Interference model(s) for the job's fabric(s).

    Homogeneous clusters get one calibrated model; heterogeneous
    clusters a per-device-group mapping (the shape
    :class:`~repro.core.MistTuner` accepts).
    """
    if job.interference == "none":
        return None
    cluster = job.resolved_cluster()
    if isinstance(cluster, HeterogeneousCluster):
        return {
            group.name: calibrated_interference(not group.gpu.has_nvlink)
            for group in cluster.groups
        }
    return calibrated_interference(not cluster.gpu.has_nvlink)


def _baseline_cluster(
        job: TuningJob,
        solver_name: str) -> "ClusterSpec | HeterogeneousCluster":
    """Baselines see mixed fleets as worst-GPU homogeneous (warned)."""
    cluster = job.resolved_cluster()
    if isinstance(cluster, HeterogeneousCluster):
        fallback = cluster.fallback_homogeneous()
        warnings.warn(
            f"solver {solver_name!r} does not support heterogeneous "
            f"clusters; tuning {cluster.name} as the worst-GPU homogeneous "
            f"cluster {fallback.name}",
            RuntimeWarning, stacklevel=3,
        )
        return fallback
    return cluster


@register_solver("mist")
class MistSolver:
    """Mist: hierarchical memory-parallelism co-optimization (§5).

    Accepts the optional service hooks: ``progress(done, total)`` is
    relayed from the (S, G) search, and ``should_stop()`` cancels it
    cooperatively (raising :class:`~repro.core.tuner.SearchCancelled`).
    """

    def make_tuner(self, job: TuningJob) -> MistTuner:
        """The configured :class:`MistTuner` for one job (shared by
        :meth:`solve` and :meth:`replan`)."""
        spec = job.workload
        scale = job.resolved_scale()
        return MistTuner(
            spec.model, spec.cluster, seq_len=spec.seq_len,
            flash=spec.flash, space=scale.apply(job.resolved_space()),
            interference=_job_interference(job),
            max_pareto_points=scale.max_pareto_points,
            max_gacc_candidates=scale.max_gacc_candidates,
        )

    def solve(self, job: TuningJob, *,
              progress: "Callable[[int, int], None] | None" = None,
              should_stop: "Callable[[], bool] | None" = None
              ) -> SolveReport:
        tuner = self.make_tuner(job)
        tuning = tuner.search(job.global_batch,
                              parallelism=job.parallelism,
                              keep_top=job.keep_top,
                              engine=job.engine,
                              progress=progress, should_stop=should_stop)
        return self._report(job, tuning)

    def replan(self, job: TuningJob, incumbent: "TrainingPlan", *,
               progress: "Callable[[int, int], None] | None" = None,
               should_stop: "Callable[[], bool] | None" = None
               ) -> SolveReport:
        """Warm-started solve of ``job`` from an ``incumbent`` plan.

        ``job`` already describes the *changed* cluster (see
        :func:`repro.api.replan.delta_job`); ``incumbent`` is the plan
        that was running before the change. The predicted winner is
        bit-identical to :meth:`solve` on the same job, reached with
        fewer configuration evaluations; ``keep_top`` is forced to 1 —
        a replan wants *the* plan fast, so only the winner is executed
        (set up a cold :meth:`solve` for a full top-k comparison).
        """
        tuner = self.make_tuner(job)
        tuning = tuner.replan(job.global_batch, incumbent=incumbent,
                              parallelism=job.parallelism, keep_top=1,
                              engine=job.engine,
                              progress=progress, should_stop=should_stop)
        return self._report(job, tuning)

    def _report(self, job: TuningJob, tuning: Any) -> SolveReport:
        # Execute the top predicted plans and keep the best measured one
        # (the artifact's benchmark-one-case step, which absorbs the
        # winner's-curse bias of the argmin over noisy predictions).
        spec = job.workload
        scale = job.resolved_scale()
        space = scale.apply(job.resolved_space())
        engine = ExecutionEngine(spec.cluster, system="mist")
        result = None
        best_plan = None
        for plan in tuning.top_plans or (
                [tuning.best_plan] if tuning.best_plan else []):
            try:
                candidate = engine.run(plan, spec.model,
                                       seq_len=spec.seq_len,
                                       flash=spec.flash)
            except OOMError:
                continue
            if result is None or candidate.throughput > result.throughput:
                result = candidate
                best_plan = plan
        predicted = {}
        if tuning.found:
            predicted = {
                "iteration_time": float(tuning.predicted_iteration_time),
                "throughput": float(tuning.predicted_throughput),
            }
        return SolveReport(
            solver=self.solver_name,
            job=job,
            plan=best_plan if best_plan is not None else tuning.best_plan,
            predicted=predicted,
            measured=_measured(result),
            tuning_time_seconds=tuning.tuning_time_seconds,
            configurations_evaluated=tuning.configurations_evaluated,
            search_log=tuning.search_log,
            search_stats=(tuning.stats.to_dict() if tuning.stats else {}),
            top_plans=list(tuning.top_plans),
            extra={"space": space.name, "scale": scale.name},
            result=result,
        )


class _BaselineSolver:
    """Shared adapter: wrap a baseline tuner class into the protocol."""

    #: set by the decorator in :func:`register_solver`
    solver_name: ClassVar[str]
    tuner_cls: "ClassVar[type | None]" = None

    def make_tuner(self, job: TuningJob) -> Any:
        spec = job.workload
        cluster = _baseline_cluster(job, self.solver_name)
        return self.tuner_cls(spec.model, cluster,
                              seq_len=spec.seq_len, flash=spec.flash)

    def solve(self, job: TuningJob) -> SolveReport:
        tuner = self.make_tuner(job)
        outcome: BaselineResult = tuner.tune(job.global_batch)
        extra = {
            "candidates_tried": outcome.candidates_tried,
            "candidates_oom": outcome.candidates_oom,
        }
        if job.cluster is not None and isinstance(
                job.resolved_cluster(), HeterogeneousCluster):
            extra["heterogeneous_fallback"] = tuner.cluster.name
        return SolveReport(
            solver=self.solver_name,
            job=job,
            plan=outcome.best_plan,
            measured=_measured(outcome.best_result),
            tuning_time_seconds=outcome.tuning_time_seconds,
            configurations_evaluated=outcome.candidates_tried,
            extra=extra,
            result=outcome.best_result,
        )


@register_solver("megatron")
class MegatronSolver(_BaselineSolver):
    """Megatron-LM: measured grid search over 3D parallelism."""

    tuner_cls = MegatronTuner


@register_solver("deepspeed")
class DeepSpeedSolver(_BaselineSolver):
    """DeepSpeed: measured grid search with ZeRO + coarse offloading."""

    tuner_cls = DeepSpeedTuner


@register_solver("aceso")
class AcesoSolver(_BaselineSolver):
    """Aceso: iterative bottleneck alleviation, overlap-unaware."""

    tuner_cls = AcesoTuner


@register_solver("uniform")
class UniformSolver(_BaselineSolver):
    """Uniform-strategy heuristic: one shared config for all stages."""

    tuner_cls = UniformHeuristicTuner

    def make_tuner(self, job: TuningJob) -> Any:
        spec = job.workload
        space = job.resolved_scale().apply(job.resolved_space())
        cluster = _baseline_cluster(job, self.solver_name)
        interference = None
        if job.interference != "none":
            # single-model tuner: calibrate for the fallback fabric
            interference = calibrated_interference(not cluster.gpu.has_nvlink)
        return self.tuner_cls(
            spec.model, cluster, seq_len=spec.seq_len,
            flash=spec.flash, space=space,
            interference=interference,
        )


@register_solver("synthetic")
class SyntheticSolver:
    """Deterministic CPU-burning stand-in workload (no real search).

    Not one of the paper's systems: ``synthetic`` exists for the
    service load/chaos harness (``repro load``, ``tests/service/``),
    where tests need a solver whose *service time* is controllable and
    whose answer is reproducible. Knobs ride
    ``job.options["synthetic"]``:

    * ``seconds`` (float, default ``0.05``) — how long to busy-spin.
      The spin is pure Python bytecode, so thread-based worker tiers
      serialize on the GIL while process tiers scale with cores —
      exactly the contrast the load generator measures;
    * ``throughput`` (float, default ``100.0``) — the reported
      "measured" throughput;
    * ``die_file`` (path) — chaos hook: if the named file exists when
      the solve starts, the process hard-exits (``os._exit``), which
      looks exactly like a ``kill -9`` to a process worker tier. The
      flag lives *outside* the job (the fingerprint is unchanged), so
      deleting the file and resubmitting — or resuming a campaign —
      the very same job succeeds.

    Knob *defaults* may also be injected through the
    ``REPRO_SYNTHETIC_DEFAULTS`` environment variable (a JSON object,
    overridden by per-job options). Campaign cells carry no free-form
    options, so this is how the chaos tests arm ``die_file`` for jobs
    born from a :class:`~repro.campaigns.spec.CampaignSpec`; worker
    processes inherit the daemon's environment.

    ``progress`` is reported as 0/1 -> 1/1 and ``should_stop`` is
    polled every few thousand spins (raising
    :class:`~repro.core.tuner.SearchCancelled`), so cancellation
    behaves like the real tuner's cell-boundary checks. The report is
    deterministic for a given job: the nominal (not measured) spin
    duration is recorded as the tuning time.
    """

    #: set by :func:`repro.api.registry.register_solver`
    solver_name: ClassVar[str]

    def solve(self, job: TuningJob, *,
              progress: "Callable[[int, int], None] | None" = None,
              should_stop: "Callable[[], bool] | None" = None
              ) -> SolveReport:
        knobs = job.options.get("synthetic", {})
        if not isinstance(knobs, dict):
            knobs = {}
        env = os.environ.get("REPRO_SYNTHETIC_DEFAULTS")
        if env:
            try:
                defaults = json.loads(env)
            except json.JSONDecodeError:
                defaults = None
            if isinstance(defaults, dict):
                knobs = {**defaults, **knobs}
        seconds = float(knobs.get("seconds", 0.05))
        throughput = float(knobs.get("throughput", 100.0))
        die_file = knobs.get("die_file")
        if die_file is not None and os.path.exists(str(die_file)):
            os._exit(3)
        if progress is not None:
            progress(0, 1)
        deadline = time.perf_counter() + seconds
        spins = 0
        while time.perf_counter() < deadline:
            spins += 1
            if spins % 4096 == 0 and should_stop is not None \
                    and should_stop():
                raise SearchCancelled("synthetic solve cancelled")
        if progress is not None:
            progress(1, 1)
        return SolveReport(
            solver=self.solver_name,
            job=job,
            plan=None,
            measured={"throughput": throughput,
                      "iteration_time": 1.0 / throughput},
            tuning_time_seconds=seconds,
            configurations_evaluated=1,
            extra={"synthetic": True},
        )


def solve(job: TuningJob, solver: str = "mist", *,
          cache: PlanCache | None = None,
          progress: "Callable[[int, int], None] | None" = None,
          should_stop: "Callable[[], bool] | None" = None) -> SolveReport:
    """Solve ``job`` with the named registered solver.

    With a ``cache``, a previously solved equivalent job is returned
    straight from disk (``report.from_cache`` is set) and fresh results
    are stored for the next caller.

    ``progress`` / ``should_stop`` are forwarded to solvers whose
    ``solve()`` accepts them (currently ``mist``); other backends run
    uninstrumented — submission-time cancellation still applies in the
    service, mid-search cancellation does not.
    """
    if cache is not None:
        hit = cache.load(job, solver)
        if hit is not None:
            return hit
    backend = get_solver(solver)
    hooks = {}
    if progress is not None or should_stop is not None:
        accepted = inspect.signature(backend.solve).parameters
        if "progress" in accepted:
            hooks["progress"] = progress
        if "should_stop" in accepted:
            hooks["should_stop"] = should_stop
    report = backend.solve(job, **hooks)
    if cache is not None:
        cache.store(report)
    return report
