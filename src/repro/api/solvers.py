"""Built-in solvers: Mist plus the paper's comparison systems.

Every backend the paper evaluates (Figs. 11–16) is a registry entry
here, all speaking the same ``solve(job) -> SolveReport`` protocol:

* ``mist``      — the hierarchical memory-parallelism co-optimizing
  tuner (predict, then execute the top plans to de-bias the winner's
  curse);
* ``megatron`` / ``deepspeed`` — execute-and-measure grid searches over
  each manual system's configuration space (Section 6.1);
* ``aceso``     — iterative bottleneck alleviation with an
  overlap-unaware predictor;
* ``uniform``   — the uniform-strategy heuristic (Yuan et al., §3.3).

Heterogeneous clusters (``job.cluster``): ``mist`` tunes them natively
— per-device-group analyzers, group-aware stage partitioning, and
execution on the mixed fleet. The baselines predate heterogeneity, so
they fall back to the conservative worst-GPU homogeneous view
(:meth:`~repro.hardware.HeterogeneousCluster.fallback_homogeneous`)
with a :class:`RuntimeWarning` — mirroring how one would actually run
Megatron-LM/DeepSpeed on a mixed fleet.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Any, Callable, ClassVar

from repro.baselines import (
    AcesoTuner,
    BaselineResult,
    DeepSpeedTuner,
    MegatronTuner,
    UniformHeuristicTuner,
)
from repro.core import MistTuner
from repro.evaluation.runner import calibrated_interference
from repro.execution import ExecutionEngine, IterationResult, OOMError
from repro.hardware import ClusterSpec, HeterogeneousCluster

from .cache import PlanCache
from .job import TuningJob
from .registry import get_solver, register_solver
from .report import SolveReport

__all__ = [
    "MistSolver",
    "MegatronSolver",
    "DeepSpeedSolver",
    "AcesoSolver",
    "UniformSolver",
    "solve",
]


def _measured(result: IterationResult | None) -> dict:
    if result is None:
        return {}
    return {
        "iteration_time": float(result.iteration_time),
        "throughput": float(result.throughput),
        "peak_memory": float(result.peak_memory),
    }


def _job_interference(job: TuningJob) -> Any:
    """Interference model(s) for the job's fabric(s).

    Homogeneous clusters get one calibrated model; heterogeneous
    clusters a per-device-group mapping (the shape
    :class:`~repro.core.MistTuner` accepts).
    """
    if job.interference == "none":
        return None
    cluster = job.resolved_cluster()
    if isinstance(cluster, HeterogeneousCluster):
        return {
            group.name: calibrated_interference(not group.gpu.has_nvlink)
            for group in cluster.groups
        }
    return calibrated_interference(not cluster.gpu.has_nvlink)


def _baseline_cluster(
        job: TuningJob,
        solver_name: str) -> "ClusterSpec | HeterogeneousCluster":
    """Baselines see mixed fleets as worst-GPU homogeneous (warned)."""
    cluster = job.resolved_cluster()
    if isinstance(cluster, HeterogeneousCluster):
        fallback = cluster.fallback_homogeneous()
        warnings.warn(
            f"solver {solver_name!r} does not support heterogeneous "
            f"clusters; tuning {cluster.name} as the worst-GPU homogeneous "
            f"cluster {fallback.name}",
            RuntimeWarning, stacklevel=3,
        )
        return fallback
    return cluster


@register_solver("mist")
class MistSolver:
    """Mist: hierarchical memory-parallelism co-optimization (§5).

    Accepts the optional service hooks: ``progress(done, total)`` is
    relayed from the (S, G) search, and ``should_stop()`` cancels it
    cooperatively (raising :class:`~repro.core.tuner.SearchCancelled`).
    """

    def solve(self, job: TuningJob, *,
              progress: "Callable[[int, int], None] | None" = None,
              should_stop: "Callable[[], bool] | None" = None
              ) -> SolveReport:
        spec = job.workload
        cluster = spec.cluster  # ClusterSpec or HeterogeneousCluster
        scale = job.resolved_scale()
        space = scale.apply(job.resolved_space())
        tuner = MistTuner(
            spec.model, cluster, seq_len=spec.seq_len,
            flash=spec.flash, space=space,
            interference=_job_interference(job),
            max_pareto_points=scale.max_pareto_points,
            max_gacc_candidates=scale.max_gacc_candidates,
        )
        tuning = tuner.search(job.global_batch,
                              parallelism=job.parallelism,
                              keep_top=job.keep_top,
                              progress=progress, should_stop=should_stop)
        # Execute the top predicted plans and keep the best measured one
        # (the artifact's benchmark-one-case step, which absorbs the
        # winner's-curse bias of the argmin over noisy predictions).
        engine = ExecutionEngine(cluster, system="mist")
        result = None
        best_plan = None
        for plan in tuning.top_plans or (
                [tuning.best_plan] if tuning.best_plan else []):
            try:
                candidate = engine.run(plan, spec.model,
                                       seq_len=spec.seq_len,
                                       flash=spec.flash)
            except OOMError:
                continue
            if result is None or candidate.throughput > result.throughput:
                result = candidate
                best_plan = plan
        predicted = {}
        if tuning.found:
            predicted = {
                "iteration_time": float(tuning.predicted_iteration_time),
                "throughput": float(tuning.predicted_throughput),
            }
        return SolveReport(
            solver=self.solver_name,
            job=job,
            plan=best_plan if best_plan is not None else tuning.best_plan,
            predicted=predicted,
            measured=_measured(result),
            tuning_time_seconds=tuning.tuning_time_seconds,
            configurations_evaluated=tuning.configurations_evaluated,
            search_log=tuning.search_log,
            search_stats=(tuning.stats.to_dict() if tuning.stats else {}),
            top_plans=list(tuning.top_plans),
            extra={"space": space.name, "scale": scale.name},
            result=result,
        )


class _BaselineSolver:
    """Shared adapter: wrap a baseline tuner class into the protocol."""

    #: set by the decorator in :func:`register_solver`
    solver_name: ClassVar[str]
    tuner_cls: "ClassVar[type | None]" = None

    def make_tuner(self, job: TuningJob) -> Any:
        spec = job.workload
        cluster = _baseline_cluster(job, self.solver_name)
        return self.tuner_cls(spec.model, cluster,
                              seq_len=spec.seq_len, flash=spec.flash)

    def solve(self, job: TuningJob) -> SolveReport:
        tuner = self.make_tuner(job)
        outcome: BaselineResult = tuner.tune(job.global_batch)
        extra = {
            "candidates_tried": outcome.candidates_tried,
            "candidates_oom": outcome.candidates_oom,
        }
        if job.cluster is not None and isinstance(
                job.resolved_cluster(), HeterogeneousCluster):
            extra["heterogeneous_fallback"] = tuner.cluster.name
        return SolveReport(
            solver=self.solver_name,
            job=job,
            plan=outcome.best_plan,
            measured=_measured(outcome.best_result),
            tuning_time_seconds=outcome.tuning_time_seconds,
            configurations_evaluated=outcome.candidates_tried,
            extra=extra,
            result=outcome.best_result,
        )


@register_solver("megatron")
class MegatronSolver(_BaselineSolver):
    """Megatron-LM: measured grid search over 3D parallelism."""

    tuner_cls = MegatronTuner


@register_solver("deepspeed")
class DeepSpeedSolver(_BaselineSolver):
    """DeepSpeed: measured grid search with ZeRO + coarse offloading."""

    tuner_cls = DeepSpeedTuner


@register_solver("aceso")
class AcesoSolver(_BaselineSolver):
    """Aceso: iterative bottleneck alleviation, overlap-unaware."""

    tuner_cls = AcesoTuner


@register_solver("uniform")
class UniformSolver(_BaselineSolver):
    """Uniform-strategy heuristic: one shared config for all stages."""

    tuner_cls = UniformHeuristicTuner

    def make_tuner(self, job: TuningJob) -> Any:
        spec = job.workload
        space = job.resolved_scale().apply(job.resolved_space())
        cluster = _baseline_cluster(job, self.solver_name)
        interference = None
        if job.interference != "none":
            # single-model tuner: calibrate for the fallback fabric
            interference = calibrated_interference(not cluster.gpu.has_nvlink)
        return self.tuner_cls(
            spec.model, cluster, seq_len=spec.seq_len,
            flash=spec.flash, space=space,
            interference=interference,
        )


def solve(job: TuningJob, solver: str = "mist", *,
          cache: PlanCache | None = None,
          progress: "Callable[[int, int], None] | None" = None,
          should_stop: "Callable[[], bool] | None" = None) -> SolveReport:
    """Solve ``job`` with the named registered solver.

    With a ``cache``, a previously solved equivalent job is returned
    straight from disk (``report.from_cache`` is set) and fresh results
    are stored for the next caller.

    ``progress`` / ``should_stop`` are forwarded to solvers whose
    ``solve()`` accepts them (currently ``mist``); other backends run
    uninstrumented — submission-time cancellation still applies in the
    service, mid-search cancellation does not.
    """
    if cache is not None:
        hit = cache.load(job, solver)
        if hit is not None:
            return hit
    backend = get_solver(solver)
    hooks = {}
    if progress is not None or should_stop is not None:
        accepted = inspect.signature(backend.solve).parameters
        if "progress" in accepted:
            hooks["progress"] = progress
        if "should_stop" in accepted:
            hooks["should_stop"] = should_stop
    report = backend.solve(job, **hooks)
    if cache is not None:
        cache.store(report)
    return report
