"""Baseline distributed-training systems (paper Table 1 and Section 6.1)."""

from .aceso import AcesoTuner, SerialInterferenceModel
from .common import BaselineResult, Capabilities, GridSearchTuner, pipeline_grids
from .deepspeed import DeepSpeedTuner
from .heuristics import UniformHeuristicTuner
from .megatron import MegatronTuner

#: Table 1 rows for the systems this reproduction implements; Mist's row
#: is appended by the Table 1 benchmark from the tuner's search space.
CAPABILITY_TABLE = (
    MegatronTuner.capabilities,
    DeepSpeedTuner.capabilities,
    AcesoTuner.capabilities,
    UniformHeuristicTuner.capabilities,
    Capabilities(
        name="Mist",
        offload_p="fine", offload_g="fine", offload_o="fine",
        offload_a="fine",
        zero23=True,
        auto_tuning="full",
    ),
)

__all__ = [
    "AcesoTuner",
    "BaselineResult",
    "CAPABILITY_TABLE",
    "Capabilities",
    "DeepSpeedTuner",
    "GridSearchTuner",
    "MegatronTuner",
    "SerialInterferenceModel",
    "UniformHeuristicTuner",
    "pipeline_grids",
]
