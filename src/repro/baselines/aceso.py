"""Aceso baseline (automatic system; Liu et al., EuroSys 2024).

Per the paper's characterization (Table 1 and Sections 3.2/6.2):

* search space: DP/TP/PP, microbatch, and *per-stage flexible*
  activation-checkpoint counts — larger than Megatron-LM's;
* **no sharded data parallelism** (ZeRO-2/3) and no offloading;
* search strategy: iterative bottleneck alleviation — find the slowest
  (or OOM-ing) stage and apply a local mitigation (move a layer away,
  adjust recomputation);
* predictions are **overlap-unaware** (communication is assumed to
  serialize with compute) and **imbalance-unaware** (all microbatches
  cost the stable time), which is why it sometimes selects plans that
  underperform Megatron-LM despite the larger space.

Being an automatic system, Aceso commits to its *predicted* best plan —
it does not grid-measure. We execute its choice (falling back through
its ranking on OOM, as its iterative loop would).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.analyzer import SymbolicPerformanceAnalyzer
from repro.core.objectives import pipeline_time_uniform
from repro.core.plan import PlanValidationError, StageConfig, TrainingPlan
from repro.costmodel.interference import InterferenceModel
from repro.execution import ExecutionEngine, OOMError
from repro.hardware import ClusterSpec
from repro.models.config import ModelConfig
from repro.tracing import trace

from .common import BaselineResult, Capabilities, pipeline_grids

__all__ = ["AcesoTuner", "SerialInterferenceModel"]


class SerialInterferenceModel(InterferenceModel):
    """Overlap-unaware cost combination: channels simply serialize."""

    def __init__(self):
        super().__init__(factors={})

    def predict(self, comp, g2g, c2g, g2c):
        return (np.asarray(comp, dtype=float) + np.asarray(g2g, dtype=float)
                + np.asarray(c2g, dtype=float) + np.asarray(g2c, dtype=float))


class AcesoTuner:
    """Iterative bottleneck alleviation with a degraded predictor."""

    system = "aceso"
    capabilities = Capabilities(
        name="Aceso",
        zero23=False,
        auto_tuning="partial",
    )

    #: maximum alleviation iterations per pipeline configuration
    MAX_ITERATIONS = 32
    #: how many predicted-best plans to try executing (OOM fallback)
    EXECUTE_TOP_K = 5

    def __init__(self, model: ModelConfig, cluster: ClusterSpec, *,
                 seq_len: int, flash: bool = True):
        self.model = model
        self.cluster = cluster
        self.seq_len = seq_len
        self.flash = flash
        traced = trace(model, cluster.gpu, flash=flash)
        self.analyzer = SymbolicPerformanceAnalyzer(
            traced, cluster, interference=SerialInterferenceModel()
        )
        self.engine = ExecutionEngine(cluster, system=self.system)

    # -- prediction tables -----------------------------------------------------

    def _stage_table(self, *, dp: int, tp: int, b: int, gacc: int,
                     inflight: int, has_pre: bool, has_post: bool,
                     max_layers: int):
        """t[l][c] and mem[l][c] for l in 1..max_layers, c in 0..l."""
        l_vals, c_vals = np.meshgrid(
            np.arange(1, max_layers + 1), np.arange(0, max_layers + 1),
            indexing="ij",
        )
        flat_l, flat_c = l_vals.reshape(-1), c_vals.reshape(-1)
        valid = flat_c <= flat_l
        flat_l, flat_c = flat_l[valid], flat_c[valid]
        n = flat_l.size
        hw = {k: float(v.reshape(-1)[0])
              for k, v in self.analyzer.hardware_env(dp, tp).items()}
        env = self.analyzer.build_env(
            b=np.full(n, b), s=np.full(n, self.seq_len),
            tp=np.full(n, tp), dp=np.full(n, dp),
            l=flat_l, ckpt=flat_c,
            z1=np.zeros(n), z2=np.zeros(n), z3=np.zeros(n),
            wo=np.zeros(n), go=np.zeros(n), oo=np.zeros(n), ao=np.zeros(n),
            gacc=np.full(n, gacc), inflight=np.full(n, inflight),
            has_pre=np.full(n, int(has_pre)),
            has_post=np.full(n, int(has_post)),
            **hw,
        )
        pred = self.analyzer.predict(env)
        t = np.full((max_layers + 1, max_layers + 1), np.inf)
        mem = np.full((max_layers + 1, max_layers + 1), np.inf)
        t[flat_l, flat_c] = pred.t_stable
        mem[flat_l, flat_c] = pred.peak_mem
        return t, mem

    def _min_feasible_ckpt(self, mem_table, layers: int) -> int | None:
        feasible = np.nonzero(
            mem_table[layers, :layers + 1] <= self.analyzer.memory_budget
        )[0]
        return int(feasible[0]) if feasible.size else None

    # -- bottleneck alleviation ---------------------------------------------------

    def _alleviate(self, tables, num_stages: int, gacc: int):
        """Hill-climb (layers, ckpt) per stage from the uniform split."""
        total = self.model.num_layers
        base = total // num_stages
        layers = [base + (1 if i < total % num_stages else 0)
                  for i in range(num_stages)]
        ckpt = []
        for i in range(num_stages):
            _, mem = tables[i]
            c = self._min_feasible_ckpt(mem, layers[i])
            if c is None:
                return None
            ckpt.append(c)

        def predicted(ls, cs):
            t = np.array([tables[i][0][ls[i], cs[i]]
                          for i in range(num_stages)])
            if not np.isfinite(t).all():
                return np.inf, t
            return pipeline_time_uniform(t, gacc), t

        best_obj, t = predicted(layers, ckpt)
        if not np.isfinite(best_obj):
            return None

        for _ in range(self.MAX_ITERATIONS):
            bottleneck = int(np.argmax(t))
            moves = []
            # (a) reduce recomputation on the bottleneck stage
            if ckpt[bottleneck] > 0:
                trial = list(ckpt)
                trial[bottleneck] -= 1
                _, mem = tables[bottleneck]
                if mem[layers[bottleneck], trial[bottleneck]] <= \
                        self.analyzer.memory_budget:
                    moves.append((layers, trial))
            # (b) move one layer from the bottleneck to a neighbour
            for nb in (bottleneck - 1, bottleneck + 1):
                if not 0 <= nb < num_stages or layers[bottleneck] <= 1:
                    continue
                trial_l = list(layers)
                trial_l[bottleneck] -= 1
                trial_l[nb] += 1
                trial_c = list(ckpt)
                trial_c[bottleneck] = min(trial_c[bottleneck],
                                          trial_l[bottleneck])
                _, mem_nb = tables[nb]
                c_nb = self._min_feasible_ckpt(mem_nb, trial_l[nb])
                if c_nb is None:
                    continue
                trial_c[nb] = max(trial_c[nb], c_nb)
                if trial_c[nb] > trial_l[nb]:
                    continue
                moves.append((trial_l, trial_c))

            improved = False
            for trial_l, trial_c in moves:
                obj, trial_t = predicted(trial_l, trial_c)
                if obj < best_obj - 1e-9:
                    layers, ckpt = list(trial_l), list(trial_c)
                    best_obj, t = obj, trial_t
                    improved = True
                    break
            if not improved:
                break
        return best_obj, layers, ckpt

    # -- main search ---------------------------------------------------------------

    def tune(self, global_batch: int) -> BaselineResult:
        start = time.perf_counter()
        ranked: list[tuple[float, TrainingPlan]] = []
        tried = 0

        for num_stages, dp, tp, gacc, microbatch in pipeline_grids(
                self.model, self.cluster, global_batch):
            tried += 1
            max_layers = self.model.num_layers - num_stages + 1
            tables = []
            feasible = True
            cache: dict[tuple, tuple] = {}
            for i in range(num_stages):
                inflight = min(gacc, num_stages - i)
                key = (inflight, i == 0, i == num_stages - 1)
                if key not in cache:
                    cache[key] = self._stage_table(
                        dp=dp, tp=tp, b=microbatch, gacc=gacc,
                        inflight=inflight, has_pre=key[1], has_post=key[2],
                        max_layers=max_layers,
                    )
                tables.append(cache[key])
            outcome = self._alleviate(tables, num_stages, gacc)
            if outcome is None:
                feasible = False
            if not feasible:
                continue
            objective, layers, ckpt = outcome
            try:
                plan = TrainingPlan(
                    global_batch=global_batch, gacc=gacc,
                    stages=tuple(
                        StageConfig(layers=layers[i], microbatch=microbatch,
                                    dp=dp, tp=tp, ckpt=ckpt[i])
                        for i in range(num_stages)
                    ),
                    source="aceso",
                )
                plan.validate(self.model, self.cluster)
            except PlanValidationError:
                continue
            ranked.append((objective, plan))

        # Commit to the predicted best; fall back through the ranking on
        # OOM (Aceso's iterative loop would retry with more recompute).
        ranked.sort(key=lambda item: item[0])
        best_plan = None
        best_result = None
        oom = 0
        for _, plan in ranked[:self.EXECUTE_TOP_K]:
            try:
                best_result = self.engine.run(plan, self.model,
                                              seq_len=self.seq_len,
                                              flash=self.flash)
                best_plan = plan
                break
            except OOMError:
                oom += 1
        return BaselineResult(
            system=self.system,
            best_plan=best_plan,
            best_result=best_result,
            tuning_time_seconds=time.perf_counter() - start,
            candidates_tried=tried,
            candidates_oom=oom,
        )
