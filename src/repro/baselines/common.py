"""Shared infrastructure for baseline system reproductions.

Each baseline is characterized by (per paper Table 1):

* a :class:`Capabilities` row — which optimizations the system supports
  and at what granularity;
* a search space — which of those its (grid-search or automatic) tuner
  can actually vary;
* an execution :class:`~repro.execution.schedule.OverlapCapability` —
  what its runtime overlaps.

Manual systems (Megatron-LM, DeepSpeed) are represented the way the
paper evaluates them: a grid search over their configuration space with
every candidate *executed* on the engine and the best measured
throughput kept ("we perform a grid search over all possible
optimization combinations", Section 6.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.plan import PlanValidationError, TrainingPlan
from repro.execution import ExecutionEngine, IterationResult, OOMError
from repro.hardware import ClusterSpec
from repro.models.config import ModelConfig

__all__ = ["Capabilities", "BaselineResult", "GridSearchTuner",
           "pipeline_grids"]


def pipeline_grids(model: ModelConfig, cluster: ClusterSpec,
                   global_batch: int):
    """(num_stages, dp, tp, gacc, microbatch) tuples of the uniform-stage
    power-of-two configuration space shared by the baseline systems."""
    for num_stages in cluster.pipeline_stage_counts():
        if num_stages > model.num_layers:
            continue
        if model.num_layers % num_stages != 0:
            continue
        stage_gpus = cluster.total_gpus // num_stages
        for dp, tp in cluster.stage_parallelism_options(stage_gpus):
            if model.hidden_size % tp != 0:
                continue
            gacc = 1
            while gacc <= global_batch:
                per_wave = global_batch // gacc
                if global_batch % gacc == 0 and per_wave % dp == 0:
                    microbatch = per_wave // dp
                    if microbatch >= 1:
                        yield num_stages, dp, tp, gacc, microbatch
                gacc *= 2


@dataclass(frozen=True)
class Capabilities:
    """One row of the paper's Table 1."""

    name: str
    dp: bool = True
    tp: bool = True
    pp: bool = True
    #: offloading support for params/grads/optimizer/activations:
    #: "none", "coarse" (on/off) or "fine" (ratios)
    offload_p: str = "none"
    offload_g: str = "none"
    offload_o: str = "none"
    offload_a: str = "none"
    zero23: bool = False
    #: "none" (manual), "partial" (tunes a subset), "full"
    auto_tuning: str = "none"

    def as_row(self) -> dict:
        return {
            "System": self.name,
            "DP": self.dp, "TP": self.tp, "PP": self.pp,
            "Offload P": self.offload_p, "Offload G": self.offload_g,
            "Offload O": self.offload_o, "Offload A": self.offload_a,
            "ZeRO-2/3": self.zero23,
            "Auto-Tuning": self.auto_tuning,
        }


@dataclass
class BaselineResult:
    """Outcome of a baseline's configuration search."""

    system: str
    best_plan: TrainingPlan | None
    best_result: IterationResult | None
    tuning_time_seconds: float
    candidates_tried: int
    candidates_oom: int

    @property
    def found(self) -> bool:
        return self.best_plan is not None

    @property
    def throughput(self) -> float:
        return self.best_result.throughput if self.best_result else 0.0


class GridSearchTuner:
    """Execute-and-measure grid search (how the paper runs manual systems).

    Subclasses define :meth:`candidate_plans`; every structurally valid
    candidate is executed on this system's engine and ranked by measured
    throughput. OOMs are recorded, exactly like failed launches on a
    real cluster.
    """

    #: engine system key (overlap capability) — subclasses override
    system = "megatron"
    capabilities = Capabilities(name="grid-search")

    def __init__(self, model: ModelConfig, cluster: ClusterSpec, *,
                 seq_len: int, flash: bool = True):
        self.model = model
        self.cluster = cluster
        self.seq_len = seq_len
        self.flash = flash
        self.engine = ExecutionEngine(cluster, system=self.system)

    # -- to be provided by subclasses ----------------------------------------

    def candidate_plans(self, global_batch: int):
        raise NotImplementedError

    # -- shared enumeration helpers ---------------------------------------------

    def _pipeline_grids(self, global_batch: int):
        return pipeline_grids(self.model, self.cluster, global_batch)

    # -- search ------------------------------------------------------------------

    def tune(self, global_batch: int) -> BaselineResult:
        start = time.perf_counter()
        best_plan: TrainingPlan | None = None
        best_result: IterationResult | None = None
        tried = 0
        oom = 0
        for plan in self.candidate_plans(global_batch):
            tried += 1
            try:
                result = self.engine.run(plan, self.model,
                                         seq_len=self.seq_len,
                                         flash=self.flash)
            except OOMError:
                oom += 1
                continue
            except PlanValidationError:
                continue
            if best_result is None or result.throughput > best_result.throughput:
                best_plan, best_result = plan, result
        return BaselineResult(
            system=self.system,
            best_plan=best_plan,
            best_result=best_result,
            tuning_time_seconds=time.perf_counter() - start,
            candidates_tried=tried,
            candidates_oom=oom,
        )
