"""DeepSpeed baseline (manual system; paper Table 1 row 2).

Search space: DP/TP/PP sizes, microbatch, ZeRO stages 0-3, full-or-none
recomputation, and coarse (on/off) ZeRO-Offload of gradients and
optimizer states. Uniform stages; ratios are not tunable — this is the
"broader memory optimizations but only coarse-grained configuration"
column of Table 1.

DeepSpeed's runtime overlaps gradient collectives but serializes the
offload traffic (``system="deepspeed"``), which is why it loses to
Megatron-LM whenever its parallelization plans hit memory limits and it
must fall back to sub-optimal configurations (Section 6.2 observation 1).
"""

from __future__ import annotations

from repro.core.plan import PlanValidationError, StageConfig, TrainingPlan

from .common import Capabilities, GridSearchTuner

__all__ = ["DeepSpeedTuner"]


class DeepSpeedTuner(GridSearchTuner):
    system = "deepspeed"
    capabilities = Capabilities(
        name="DeepSpeed",
        offload_g="coarse",
        offload_o="coarse",
        zero23=True,
        auto_tuning="none",
    )

    ZERO_LEVELS = (0, 1, 2, 3)
    CKPT_MODES = ("none", "full")
    #: ZeRO-Offload: all-or-nothing optimizer/gradient offload
    OFFLOAD_MODES = ((0.0, 0.0), (1.0, 0.0), (1.0, 1.0))  # (oo, go)

    def candidate_plans(self, global_batch: int):
        layers_total = self.model.num_layers
        for num_stages, dp, tp, gacc, microbatch in \
                self._pipeline_grids(global_batch):
            layers = layers_total // num_stages
            for zero in self.ZERO_LEVELS:
                for ckpt_mode in self.CKPT_MODES:
                    ckpt = layers if ckpt_mode == "full" else 0
                    for oo, go in self.OFFLOAD_MODES:
                        if (oo or go) and zero == 0:
                            continue  # ZeRO-Offload requires ZeRO
                        if go and zero < 2:
                            continue  # gradient offload rides ZeRO-2
                        try:
                            stage = StageConfig(
                                layers=layers, microbatch=microbatch,
                                dp=dp, tp=tp, zero=zero, ckpt=ckpt,
                                oo=oo, go=go,
                            )
                            yield TrainingPlan(
                                global_batch=global_batch, gacc=gacc,
                                stages=tuple(stage
                                             for _ in range(num_stages)),
                                source="deepspeed-grid",
                            )
                        except PlanValidationError:
                            continue
