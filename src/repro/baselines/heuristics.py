"""Uniform-strategy heuristic baseline (Yuan et al., ATC 2024; paper §3.3).

Tunes Mist's full optimization set but constrains every pipeline stage
to the *same* checkpoint count and offloading ratios — the search-space
reduction the paper argues is sub-optimal because pipeline stages have
inherently imbalanced memory and compute (26%/20% degradation in the
motivational examples).

Implemented on top of Mist's analyzer: enumerate shared configurations
batched, evaluate every stage position, and keep the best Eq. 1
objective.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.analyzer import SymbolicPerformanceAnalyzer
from repro.core.objectives import pipeline_iteration_time
from repro.core.plan import PlanValidationError, StageConfig, TrainingPlan
from repro.core.spaces import SPACE_MIST, SearchSpace
from repro.costmodel.interference import InterferenceModel
from repro.execution import ExecutionEngine, OOMError
from repro.hardware import ClusterSpec
from repro.models.config import ModelConfig
from repro.tracing import trace

from .common import BaselineResult, Capabilities, pipeline_grids

__all__ = ["UniformHeuristicTuner"]


class UniformHeuristicTuner:
    """Same memory-optimization configuration across all stages."""

    system = "mist"  # executes on Mist's runtime; only the tuner differs
    capabilities = Capabilities(
        name="Uniform Heuristic (Yuan et al.)",
        offload_o="fine", offload_a="fine",
        zero23=False,
        auto_tuning="partial",
    )

    def __init__(self, model: ModelConfig, cluster: ClusterSpec, *,
                 seq_len: int, flash: bool = True,
                 space: SearchSpace = SPACE_MIST,
                 interference: InterferenceModel | None = None):
        self.model = model
        self.cluster = cluster
        self.seq_len = seq_len
        self.flash = flash
        self.space = space
        traced = trace(model, cluster.gpu, flash=flash)
        self.analyzer = SymbolicPerformanceAnalyzer(
            traced, cluster, interference=interference
        )
        self.engine = ExecutionEngine(cluster, system=self.system)

    def _shared_config_grid(self, layers: int):
        """(zero, ckpt, wo, go, oo, ao) arrays of shared configurations."""
        space = self.space
        if space.tune_ckpt:
            points = min(space.ckpt_grid_points, layers + 1)
            ckpt_vals = np.unique(
                np.round(np.linspace(0, layers, points)).astype(int)
            )
        else:
            ckpt_vals = np.array([0, layers])
        grids = np.meshgrid(
            np.asarray(space.zero_levels), ckpt_vals,
            np.asarray(space.wo_grid), np.asarray(space.go_grid),
            np.asarray(space.oo_grid), np.asarray(space.ao_grid),
            indexing="ij",
        )
        return [g.reshape(-1) for g in grids]

    def tune(self, global_batch: int) -> BaselineResult:
        start = time.perf_counter()
        best_obj = np.inf
        best_plan: TrainingPlan | None = None
        tried = 0

        for num_stages, dp, tp, gacc, microbatch in pipeline_grids(
                self.model, self.cluster, global_batch):
            if self.model.num_layers % num_stages != 0:
                continue
            tried += 1
            layers = self.model.num_layers // num_stages
            zero_g, ckpt_g, wo_g, go_g, oo_g, ao_g = \
                self._shared_config_grid(layers)
            n = zero_g.size
            hw = {k: float(v.reshape(-1)[0])
                  for k, v in self.analyzer.hardware_env(dp, tp).items()}

            stage_t = np.zeros((num_stages, n))
            stage_d = np.zeros((num_stages, n))
            fits = np.ones(n, dtype=bool)
            for i in range(num_stages):
                env = self.analyzer.build_env(
                    b=np.full(n, microbatch), s=np.full(n, self.seq_len),
                    tp=np.full(n, tp), dp=np.full(n, dp),
                    l=np.full(n, layers), ckpt=ckpt_g,
                    z1=(zero_g >= 1).astype(float),
                    z2=(zero_g >= 2).astype(float),
                    z3=(zero_g >= 3).astype(float),
                    wo=wo_g, go=go_g, oo=oo_g, ao=ao_g,
                    gacc=np.full(n, gacc),
                    inflight=np.full(n, min(gacc, num_stages - i)),
                    has_pre=np.full(n, int(i == 0)),
                    has_post=np.full(n, int(i == num_stages - 1)),
                    **hw,
                )
                pred = self.analyzer.predict(env)
                stage_t[i] = pred.t_stable
                stage_d[i] = pred.delta
                fits &= pred.peak_mem <= self.analyzer.memory_budget

            if not fits.any():
                continue
            for j in np.nonzero(fits)[0]:
                obj = pipeline_iteration_time(stage_t[:, j], stage_d[:, j],
                                              gacc)
                if obj < best_obj:
                    try:
                        stage = StageConfig(
                            layers=layers, microbatch=microbatch, dp=dp,
                            tp=tp, zero=int(zero_g[j]), ckpt=int(ckpt_g[j]),
                            wo=float(wo_g[j]), go=float(go_g[j]),
                            oo=float(oo_g[j]), ao=float(ao_g[j]),
                        )
                        plan = TrainingPlan(
                            global_batch=global_batch, gacc=gacc,
                            stages=tuple(stage for _ in range(num_stages)),
                            source="uniform-heuristic",
                        )
                        plan.validate(self.model, self.cluster)
                    except PlanValidationError:
                        continue
                    best_obj = obj
                    best_plan = plan

        best_result = None
        oom = 0
        if best_plan is not None:
            try:
                best_result = self.engine.run(best_plan, self.model,
                                              seq_len=self.seq_len,
                                              flash=self.flash)
            except OOMError:
                oom = 1
                best_plan = None
        return BaselineResult(
            system="uniform-heuristic",
            best_plan=best_plan,
            best_result=best_result,
            tuning_time_seconds=time.perf_counter() - start,
            candidates_tried=tried,
            candidates_oom=oom,
        )
