"""Megatron-LM baseline (manual system; paper Table 1 row 1).

Search space: DP/TP/PP sizes, microbatch size, full-or-selective
activation recomputation, and the distributed optimizer (ZeRO-1
equivalent). No ZeRO-2/3, no offloading, uniform stages. The runtime
overlaps the gradient synchronization with backward compute
(``system="megatron"``).

The paper evaluates Megatron-LM by grid-searching this space and
keeping the best *measured* configuration; so does this class.
"""

from __future__ import annotations

from repro.core.plan import PlanValidationError, StageConfig, TrainingPlan

from .common import Capabilities, GridSearchTuner

__all__ = ["MegatronTuner"]


class MegatronTuner(GridSearchTuner):
    system = "megatron"
    capabilities = Capabilities(
        name="Megatron-LM",
        zero23=False,
        auto_tuning="none",
    )

    #: distributed-optimizer options (ZeRO-1 equivalent): off / on
    ZERO_LEVELS = (0, 1)
    #: recomputation options: none / full
    CKPT_MODES = ("none", "full")

    def candidate_plans(self, global_batch: int):
        layers_total = self.model.num_layers
        for num_stages, dp, tp, gacc, microbatch in \
                self._pipeline_grids(global_batch):
            layers = layers_total // num_stages
            for zero in self.ZERO_LEVELS:
                for ckpt_mode in self.CKPT_MODES:
                    ckpt = layers if ckpt_mode == "full" else 0
                    try:
                        stage = StageConfig(
                            layers=layers, microbatch=microbatch,
                            dp=dp, tp=tp, zero=zero, ckpt=ckpt,
                        )
                        yield TrainingPlan(
                            global_batch=global_batch, gacc=gacc,
                            stages=tuple(stage for _ in range(num_stages)),
                            source="megatron-grid",
                        )
                    except PlanValidationError:
                        continue
