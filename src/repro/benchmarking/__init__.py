"""Reproducible performance benchmarking: the ``repro bench`` harness.

This package is the single source of truth for the repo's recorded
perf trajectory:

* :mod:`repro.benchmarking.fig16` measures the paper's Figure 16
  tuning-time experiment (shared with
  ``benchmarks/test_fig16_tuning_time.py`` so the pytest benchmark and
  the CLI harness can never drift apart);
* :mod:`repro.benchmarking.bench` runs the suite at a chosen scale,
  emits the schema'd ``BENCH_4.json`` snapshot, validates the pruned
  search against the exhaustive reference *and* the vectorized
  cost-model engine against the interpreted reference path (plan
  hashes must match bit for bit, and the vectorized engine must clear
  a minimum speedup), and compares wall time against a committed
  baseline — the artifact and the gates the CI ``perf`` job is built
  on.
"""

from .bench import (
    BENCH_SCHEMA,
    check_against_baseline,
    check_engine_speedup,
    format_bench,
    plan_hash,
    run_bench,
    validate_bench,
)
from .fig16 import fig16_spec, measure_fig16

__all__ = [
    "BENCH_SCHEMA",
    "check_against_baseline",
    "check_engine_speedup",
    "fig16_spec",
    "format_bench",
    "measure_fig16",
    "plan_hash",
    "run_bench",
    "validate_bench",
]
