"""Reproducible performance benchmarking: the ``repro bench`` harness.

This package is the single source of truth for the repo's recorded
perf trajectory:

* :mod:`repro.benchmarking.fig16` measures the paper's Figure 16
  tuning-time experiment (shared with
  ``benchmarks/test_fig16_tuning_time.py`` so the pytest benchmark and
  the CLI harness can never drift apart);
* :mod:`repro.benchmarking.fig_replan` measures the elastic
  warm-vs-cold replan suite (cluster deltas; warm plans must
  hash-equal cold plans, at a gated configuration-count speedup);
* :mod:`repro.benchmarking.bench` runs the suite at a chosen scale,
  emits the schema'd snapshot, validates the pruned search against the
  exhaustive reference *and* the vectorized cost-model engine against
  the interpreted reference path (plan hashes must match bit for bit,
  and the vectorized engine must clear a minimum speedup), and
  compares wall time against a committed baseline — the artifact and
  the gates the CI ``perf`` job is built on.

The artifact filenames (re-exported from
:mod:`repro.benchmarking.artifacts`, a dependency-free leaf module) are
the single place CI steps, smoke scripts, and CLI defaults agree on —
renaming an artifact here is the only way to rename it anywhere, so an
upload step can never silently stop matching what the harness wrote.
"""

from .artifacts import (
    BENCH_ARTIFACT,
    BENCH_BASELINE,
    LOAD_ARTIFACT,
    LOAD_BASELINE,
)
from .bench import (
    BENCH_SCHEMA,
    check_against_baseline,
    check_engine_speedup,
    check_warm_speedup,
    format_bench,
    plan_hash,
    run_bench,
    validate_bench,
)
from .fig16 import fig16_spec, measure_fig16
from .fig_replan import measure_replan, replan_scenarios

__all__ = [
    "BENCH_ARTIFACT",
    "BENCH_BASELINE",
    "BENCH_SCHEMA",
    "LOAD_ARTIFACT",
    "LOAD_BASELINE",
    "check_against_baseline",
    "check_engine_speedup",
    "check_warm_speedup",
    "fig16_spec",
    "format_bench",
    "measure_fig16",
    "measure_replan",
    "plan_hash",
    "replan_scenarios",
    "run_bench",
    "validate_bench",
]
