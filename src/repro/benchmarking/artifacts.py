"""Canonical artifact filenames for the perf/load harnesses.

The single place CI steps, smoke scripts, and CLI defaults agree on —
renaming an artifact here is the only way to rename it anywhere, so an
upload step can never silently stop matching what the harness wrote.
Kept dependency-free so ``repro.cli`` and ``scripts/`` can import the
names without loading the bench machinery.
"""

from __future__ import annotations

__all__ = ["BENCH_ARTIFACT", "BENCH_BASELINE",
           "LOAD_ARTIFACT", "LOAD_BASELINE"]

#: the ``repro bench`` output artifact (CI perf job uploads this name;
#: keep .github/workflows/ci.yml in sync — tests assert the defaults)
BENCH_ARTIFACT = "BENCH_4.json"
#: the ``repro load`` output artifact (CI load-smoke job uploads this)
LOAD_ARTIFACT = "LOAD_7.json"
#: committed smoke-scale baselines the CI gates compare against
BENCH_BASELINE = "benchmarks/baselines/BENCH_smoke.json"
LOAD_BASELINE = "benchmarks/baselines/LOAD_smoke.json"
