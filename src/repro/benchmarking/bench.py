"""The ``repro bench`` snapshot: schema, runner, and regression gates.

One invocation produces a ``BENCH_4.json`` document::

    {
      "schema": "repro-bench/1",
      "scale": "smoke",
      "environment": {"python": ..., "platform": ..., "cpu_count": ...,
                      "version": ...},
      "benchmarks": {
        "fig16_tuning_time":          {... pruned search, vectorized ...},
        "fig16_exhaustive_reference": {... exhaustive search path ...},
        "fig16_interpreted_engine":   {... pruned search, interpreted ...},
        "fig_replan":                 {... warm-vs-cold replan pass ...}
      },
      "derived": {
        "fig16_speedup": <exhaustive wall / pruned wall>,
        "plans_match_exhaustive": true,
        "fig16_engine_speedup": <interpreted wall / pruned wall>,
        "plans_match_interpreted": true,
        "fig_replan_speedup": <geomean cold/warm configs evaluated>,
        "replan_plans_match": true
      }
    }

Gates (used by the CI ``perf`` job):

* :func:`validate_bench` — internal consistency: every pruned plan
  hash must equal the exhaustive reference's *and* the interpreted
  engine's, the parallel fan-out must return the serial plan, and the
  pruned/memo-hit counters must be nonzero (a silent fallback to
  exhaustive search would otherwise pass unnoticed);
* :func:`check_against_baseline` — wall-time regression against the
  committed baseline snapshot (default threshold: 25%), plus a schema /
  scale sanity check;
* :func:`check_engine_speedup` — the vectorized engine must beat the
  interpreted reference by at least the given factor (CI: 2x at smoke
  scale; the target-scale acceptance bar is higher).
"""

from __future__ import annotations

import os
import platform
import sys

from repro import __version__
from repro.evaluation.workloads import get_scale

from .fig16 import measure_fig16, plan_hash
from .fig_replan import measure_replan

__all__ = ["BENCH_SCHEMA", "check_against_baseline", "check_engine_speedup",
           "check_warm_speedup", "format_bench", "plan_hash", "run_bench",
           "validate_bench"]

BENCH_SCHEMA = "repro-bench/1"

#: the benchmark whose wall time the baseline gate watches
PRIMARY_BENCH = "fig16_tuning_time"
REFERENCE_BENCH = "fig16_exhaustive_reference"
#: the same pruned search, run through the per-config interpreted
#: cost-model engine — the denominator of the vectorization speedup
INTERPRETED_BENCH = "fig16_interpreted_engine"
#: the warm-vs-cold elastic replan pass
REPLAN_BENCH = "fig_replan"


def run_bench(scale_name: str = "smoke", *,
              include_exhaustive: bool = True,
              include_interpreted: bool = True,
              include_replan: bool = True) -> dict:
    """Run the benchmark suite at ``scale_name`` and build the snapshot.

    ``include_exhaustive=False`` skips the exhaustive reference pass
    (and with it the plan-hash cross-check) — useful for quick local
    timing runs, never for the CI artifact. ``include_interpreted=False``
    likewise skips the interpreted-engine pass and with it the
    vectorized-vs-interpreted comparison; ``include_replan=False`` skips
    the warm-vs-cold replan pass and its speedup gate.
    """
    scale = get_scale(scale_name)
    benchmarks: dict[str, dict] = {}
    benchmarks[PRIMARY_BENCH] = measure_fig16(
        scale, prune=True, parallel_rerun=True)
    derived: dict = {}
    pruned = benchmarks[PRIMARY_BENCH]
    if include_exhaustive:
        benchmarks[REFERENCE_BENCH] = measure_fig16(scale, prune=False)
        reference = benchmarks[REFERENCE_BENCH]
        derived["fig16_speedup"] = (
            reference["wall_time_seconds"] / pruned["wall_time_seconds"]
            if pruned["wall_time_seconds"] > 0 else 0.0
        )
        derived["plans_match_exhaustive"] = (
            pruned["plan_hashes"] == reference["plan_hashes"]
        )
    if include_interpreted:
        benchmarks[INTERPRETED_BENCH] = measure_fig16(
            scale, prune=True, engine="interpreted")
        interpreted = benchmarks[INTERPRETED_BENCH]
        derived["fig16_engine_speedup"] = (
            interpreted["wall_time_seconds"] / pruned["wall_time_seconds"]
            if pruned["wall_time_seconds"] > 0 else 0.0
        )
        derived["plans_match_interpreted"] = (
            pruned["plan_hashes"] == interpreted["plan_hashes"]
        )
    if include_replan:
        benchmarks[REPLAN_BENCH] = measure_replan(scale)
        replan = benchmarks[REPLAN_BENCH]
        derived["fig_replan_speedup"] = replan["config_speedup_geomean"]
        derived["replan_plans_match"] = replan["plans_match"]
    return {
        "schema": BENCH_SCHEMA,
        "scale": scale.name,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "version": __version__,
        },
        "benchmarks": benchmarks,
        "derived": derived,
    }


def validate_bench(result: dict) -> list[str]:
    """Internal-consistency failures of one snapshot (empty = OK)."""
    problems: list[str] = []
    pruned = result["benchmarks"].get(PRIMARY_BENCH)
    if pruned is None:
        return [f"snapshot carries no {PRIMARY_BENCH!r} benchmark"]
    derived = result.get("derived", {})
    if "plans_match_exhaustive" in derived and \
            not derived["plans_match_exhaustive"]:
        reference = result["benchmarks"][REFERENCE_BENCH]
        drifted = sorted(
            name for name, value in pruned["plan_hashes"].items()
            if reference["plan_hashes"].get(name) != value
        )
        problems.append(
            "pruned plans drifted from the exhaustive reference: "
            + ", ".join(drifted)
        )
    if "plans_match_interpreted" in derived and \
            not derived["plans_match_interpreted"]:
        interpreted = result["benchmarks"][INTERPRETED_BENCH]
        drifted = sorted(
            name for name, value in pruned["plan_hashes"].items()
            if interpreted["plan_hashes"].get(name) != value
        )
        problems.append(
            "vectorized plans drifted from the interpreted engine: "
            + ", ".join(drifted)
        )
    interpreted = result["benchmarks"].get(INTERPRETED_BENCH)
    if interpreted is not None:
        for counter in ("configs_evaluated", "configs_prefiltered"):
            vec = pruned.get("stats", {}).get(counter)
            ref = interpreted.get("stats", {}).get(counter)
            if vec != ref:
                problems.append(
                    f"{counter} differs across engines "
                    f"(vectorized {vec} vs interpreted {ref}) — work "
                    "accounting is no longer engine-deterministic"
                )
    parallel = pruned.get("parallel")
    if parallel is not None and not parallel["matches_serial"]:
        problems.append("parallel (S, G) fan-out returned a different plan "
                        "than the serial search")
    stats = pruned.get("stats", {})
    if stats.get("cells_pruned", 0) <= 0:
        problems.append("branch-and-bound pruned no (S, G) cell — the "
                        "engine silently fell back to exhaustive search")
    if stats.get("configs_prefiltered", 0) <= 0:
        problems.append("memory pre-filter rejected no configuration")
    memo_hits = stats.get("memo_hits", 0)
    if parallel is not None:
        memo_hits += parallel.get("memo_hits", 0)
    if memo_hits <= 0:
        problems.append("memoization recorded no hit across the suite")
    replan = result["benchmarks"].get(REPLAN_BENCH)
    if replan is not None:
        if not replan.get("plans_match", False):
            drifted = sorted(
                name for name, entry in replan.get("scenarios", {}).items()
                if not entry.get("plans_match", False)
            )
            problems.append(
                "warm replan plans drifted from the cold search: "
                + ", ".join(drifted)
            )
        if replan.get("warm_memo_hits", 0) <= 0:
            problems.append(
                "warm replans recorded no memo hit — unchanged-group "
                "menu reuse across cluster deltas is broken"
            )
        unmatched = sorted(
            name for name, entry in replan.get("scenarios", {}).items()
            if not entry.get("warm", {}).get("matched", False)
        )
        if unmatched:
            problems.append(
                "replan could not locate the incumbent's (S, G) cell "
                "on the delta'd cluster: " + ", ".join(unmatched)
            )
    return problems


def check_against_baseline(current: dict, baseline: dict, *,
                           max_regression: float = 0.25,
                           min_abs_seconds: float = 1.0) -> list[str]:
    """Regression failures vs the committed baseline (empty = OK).

    A regression must exceed *both* the relative threshold and
    ``min_abs_seconds`` of absolute drift — sub-second smoke runs are
    scheduler-noise-dominated and would otherwise flake the gate.
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"baseline schema {baseline.get('schema')!r} does not match "
            f"current {current.get('schema')!r} — regenerate the baseline"
        )
        return problems
    if baseline.get("scale") != current.get("scale"):
        problems.append(
            f"baseline was recorded at scale {baseline.get('scale')!r}, "
            f"this run is {current.get('scale')!r}"
        )
        return problems
    base = baseline["benchmarks"].get(PRIMARY_BENCH, {})
    cur = current["benchmarks"].get(PRIMARY_BENCH, {})
    base_wall = base.get("wall_time_seconds")
    cur_wall = cur.get("wall_time_seconds")
    if base_wall and cur_wall and \
            cur_wall > base_wall * (1.0 + max_regression) and \
            cur_wall - base_wall > min_abs_seconds:
        problems.append(
            f"fig16 tuning wall-time regressed "
            f"{cur_wall / base_wall - 1.0:+.0%} over the baseline "
            f"({cur_wall:.2f}s vs {base_wall:.2f}s, "
            f"threshold +{max_regression:.0%})"
        )
    return problems


def check_engine_speedup(current: dict, *,
                         min_speedup: float = 2.0) -> list[str]:
    """Vectorized-vs-interpreted speedup failures (empty = OK).

    Applies only when the snapshot carries the interpreted-engine
    comparison; a snapshot produced with ``include_interpreted=False``
    passes vacuously (there is nothing to gate).
    """
    speedup = current.get("derived", {}).get("fig16_engine_speedup")
    if speedup is None or min_speedup <= 0:
        return []
    if speedup < min_speedup:
        return [
            f"vectorized engine is only {speedup:.2f}x faster than the "
            f"interpreted reference (gate: >= {min_speedup:.1f}x)"
        ]
    return []


def check_warm_speedup(current: dict, *,
                       min_speedup: float = 2.0) -> list[str]:
    """Warm-vs-cold replan speedup failures (empty = OK).

    The gated quantity is the geometric mean of per-scenario
    ``cold configs_evaluated / warm configs_evaluated`` ratios —
    deterministic work counters, not wall time, so the gate cannot
    flake with machine load. Applies only when the snapshot carries the
    replan pass; ``include_replan=False`` snapshots pass vacuously.
    """
    speedup = current.get("derived", {}).get("fig_replan_speedup")
    if speedup is None or min_speedup <= 0:
        return []
    if speedup < min_speedup:
        return [
            f"warm replan evaluates only {speedup:.2f}x fewer "
            f"configurations than a cold search "
            f"(gate: >= {min_speedup:.1f}x)"
        ]
    return []


def format_bench(result: dict) -> str:
    """Human-readable summary of one snapshot."""
    lines = [f"repro bench — scale {result['scale']} "
             f"(schema {result['schema']})"]
    for name, bench in result["benchmarks"].items():
        if "scenarios" in bench:
            lines.append(f"  {name}: {bench['wall_time_seconds']:.2f}s")
            for scen, entry in bench["scenarios"].items():
                lines.append(
                    f"    {scen:34s} {entry['config_speedup']:6.2f}x "
                    f"fewer configs warm "
                    f"[{entry['delta']}; identical="
                    f"{entry['plans_match']}]")
            continue
        lines.append(f"  {name}: {bench['wall_time_seconds']:.2f}s "
                     f"({bench['workload']})")
        for space, entry in bench["per_space"].items():
            stats = entry.get("stats", {})
            detail = (f" [{stats['cells_explored']} explored / "
                      f"{stats['cells_pruned']} pruned / "
                      f"{stats['memo_hits']} memo-hits]"
                      if stats else "")
            lines.append(f"    {space:34s} {entry['seconds']:7.2f}s"
                         f"{detail}")
        parallel = bench.get("parallel")
        if parallel:
            lines.append(f"    {'parallel (S,G) re-run':34s} "
                         f"{parallel['seconds']:7.2f}s "
                         f"[memo_hits={parallel['memo_hits']} "
                         f"identical={parallel['matches_serial']}]")
    derived = result.get("derived", {})
    if "fig16_speedup" in derived:
        lines.append(f"  speedup vs exhaustive: "
                     f"{derived['fig16_speedup']:.2f}x  "
                     f"(plans match: {derived['plans_match_exhaustive']})")
    if "fig16_engine_speedup" in derived:
        lines.append(f"  vectorized vs interpreted engine: "
                     f"{derived['fig16_engine_speedup']:.2f}x  "
                     f"(plans match: {derived['plans_match_interpreted']})")
    if "fig_replan_speedup" in derived:
        lines.append(f"  warm replan vs cold search: "
                     f"{derived['fig_replan_speedup']:.2f}x fewer configs "
                     f"(plans match: {derived['replan_plans_match']})")
    return "\n".join(lines)


def main_check(current: dict, baseline: dict | None, *,
               max_regression: float = 0.25,
               min_engine_speedup: float = 0.0,
               min_warm_speedup: float = 0.0, out=None) -> int:
    """Apply all gates; print verdicts; return a process exit code."""
    out = out if out is not None else sys.stdout
    problems = validate_bench(current)
    problems += check_engine_speedup(current,
                                     min_speedup=min_engine_speedup)
    problems += check_warm_speedup(current, min_speedup=min_warm_speedup)
    if baseline is not None:
        problems += check_against_baseline(
            current, baseline, max_regression=max_regression)
    for problem in problems:
        print(f"FAIL: {problem}", file=out)
    if not problems:
        print("bench gates: OK", file=out)
    return 1 if problems else 0


__all__.append("main_check")
