"""Figure 16 measurement: tuning time across the incremental spaces.

The paper's claim (§5.3, Fig. 16) is that Mist's hierarchical search
stays tractable as the search space grows. This module measures our
tuner over the same incremental spaces on a scale-appropriate workload,
through either the prune-and-memoize engine (``prune=True``) or the
exhaustive reference path, and reports wall time, search counters, and
a deterministic hash of every space's winning plan.

Both ``benchmarks/test_fig16_tuning_time.py`` and the ``repro bench``
CLI harness call into here, so the pytest benchmark and the CI perf
artifact always measure the same thing.
"""

from __future__ import annotations

import hashlib
import time

from repro.core import INCREMENTAL_SPACES, MenuMemo, MistTuner
from repro.core.plan import TrainingPlan
from repro.evaluation import WorkloadSpec, calibrated_interference
from repro.evaluation.workloads import TuningScale

__all__ = ["fig16_spec", "measure_fig16", "plan_hash"]


def plan_hash(plan: "TrainingPlan | None") -> str | None:
    """Deterministic short hash of a plan's canonical JSON form."""
    if plan is None:
        return None
    return hashlib.sha256(
        plan.to_json(indent=None).encode()
    ).hexdigest()[:16]


def fig16_spec(scale_name: str) -> WorkloadSpec:
    """The Fig. 16 workload for one scale preset (paper: 22B on 32)."""
    if scale_name == "full":
        return WorkloadSpec("gpt3-22b", "L4", 32, 512, 2048)
    if scale_name == "smoke":
        return WorkloadSpec("gpt3-2.7b", "L4", 4, 64, 2048)
    return WorkloadSpec("gpt3-6.7b", "L4", 8, 128, 2048)


def _make_tuner(spec: WorkloadSpec, scale: TuningScale, space,
                interference) -> MistTuner:
    return MistTuner(
        spec.model, spec.cluster, seq_len=spec.seq_len,
        space=scale.apply(space), interference=interference,
        max_pareto_points=scale.max_pareto_points,
        max_gacc_candidates=scale.max_gacc_candidates,
    )


def measure_fig16(scale: TuningScale, *, prune: bool = True,
                  parallel_rerun: bool = False,
                  engine: str = "vectorized") -> dict:
    """Tune the Fig. 16 workload over every incremental space.

    Returns a JSON-ready dict::

        {"wall_time_seconds": ..., "per_space": {name: {...}},
         "stats": {aggregated search counters},
         "plan_hashes": {name: hash-or-None},
         "parallel": {...} }            # only with parallel_rerun

    ``prune`` selects the search path and ``engine`` the cost-model
    evaluation path (``"vectorized"`` compiled numpy closures vs the
    ``"interpreted"`` per-config reference); with ``parallel_rerun``
    the widest space is searched once more with one worker per core
    against the same menu memo — proving both that the fan-out returns
    the identical plan and that the memo serves the repeated
    subproblems (its ``memo_hits`` land in the ``parallel`` section).
    """
    spec = fig16_spec(scale.name)
    cluster = spec.cluster
    interference = calibrated_interference(not cluster.gpu.has_nvlink)
    memo = MenuMemo()

    per_space: dict[str, dict] = {}
    hashes: dict[str, str | None] = {}
    totals = {"cells_total": 0, "cells_explored": 0, "cells_pruned": 0,
              "cells_infeasible": 0, "configs_evaluated": 0,
              "configs_prefiltered": 0, "memo_hits": 0, "memo_misses": 0}
    wall = 0.0
    last = None
    for space in INCREMENTAL_SPACES:
        tuner = _make_tuner(spec, scale, space, interference)
        start = time.perf_counter()
        result = tuner.search(spec.global_batch, prune=prune, memo=memo,
                              engine=engine)
        seconds = time.perf_counter() - start
        wall += seconds
        entry = {
            "seconds": seconds,
            "configurations_evaluated": result.configurations_evaluated,
            "objective": (float(result.predicted_iteration_time)
                          if result.found else None),
        }
        if result.stats is not None:
            entry["stats"] = result.stats.to_dict()
            for key in totals:
                totals[key] += getattr(result.stats, key)
        per_space[space.name] = entry
        hashes[space.name] = plan_hash(result.best_plan)
        last = (tuner, result)

    out = {
        "workload": spec.name,
        "prune": prune,
        "engine": engine,
        "wall_time_seconds": wall,
        "per_space": per_space,
        "stats": totals,
        "plan_hashes": hashes,
    }

    if parallel_rerun and last is not None:
        tuner, serial = last
        start = time.perf_counter()
        parallel = tuner.search(spec.global_batch, parallelism=0,
                                prune=prune, memo=memo, engine=engine)
        seconds = time.perf_counter() - start
        stats = parallel.stats.to_dict() if parallel.stats else {}
        out["parallel"] = {
            "seconds": seconds,
            "matches_serial": parallel.best_plan == serial.best_plan,
            "plan_hash": plan_hash(parallel.best_plan),
            "memo_hits": stats.get("memo_hits", 0),
        }
    return out
