"""Warm-vs-cold replan measurement (elastic re-tuning, §5.3).

Each scenario plays one cluster-change event: tune the *old* cluster
(producing the incumbent plan and a warm :class:`MenuMemo`), apply a
:class:`~repro.hardware.ClusterDelta`, then solve the *new* cluster
twice — a cold :meth:`~repro.core.MistTuner.search` with a fresh memo,
and a warm :meth:`~repro.core.MistTuner.replan` riding the incumbent
plan and the old memo. The pass asserts the warm plan hash-equals the
cold plan (the replan bit-identity contract) and reports the
work-counter speedup ``cold configs_evaluated / warm
configs_evaluated`` per scenario.

The CI gate (``repro bench --min-warm-speedup``) checks the
*geometric mean* of the per-scenario speedups: configuration counters
are deterministic functions of (model, cluster, space), so unlike wall
time this gate cannot flake with machine load.
"""

from __future__ import annotations

import math
import time

from repro.core import MenuMemo, MistTuner
from repro.core.spaces import SPACE_MIST
from repro.evaluation.workloads import TuningScale
from repro.hardware import (
    ClusterDelta,
    ClusterSpec,
    HeterogeneousCluster,
    cluster_from_dict,
    make_cluster,
)
from repro.models.registry import get_model

from .fig16 import plan_hash

__all__ = ["measure_replan", "replan_scenarios"]


def _hetero_pair() -> HeterogeneousCluster:
    return cluster_from_dict({
        "groups": [
            {"name": "a100", "gpu": "A100-40GB",
             "num_nodes": 1, "gpus_per_node": 4},
            {"name": "l4", "gpu": "L4", "num_nodes": 1, "gpus_per_node": 4},
        ],
        "inter_group_bandwidth_gbps": 100,
    })


def replan_scenarios(scale_name: str) -> list[dict]:
    """The cluster-change suite: grow, shrink, degrade, hetero-resize.

    The same events run at every scale — the scale preset coarsens the
    search space, not the fleet. Each scenario dict carries the model
    name, the pre-delta cluster, the delta, and the global batch.
    """
    del scale_name  # one suite; the TuningScale does the coarsening
    return [
        {"name": "degrade_link", "model": "gpt3-1.3b",
         "cluster": make_cluster("L4", 1, 8),
         "delta": ClusterDelta.degrade_link(0.5), "global_batch": 64},
        {"name": "shrink_node", "model": "gpt3-2.7b",
         "cluster": make_cluster("L4", 2, 4),
         "delta": ClusterDelta.remove_nodes(1), "global_batch": 64},
        {"name": "grow_node", "model": "gpt3-2.7b",
         "cluster": make_cluster("L4", 1, 4),
         "delta": ClusterDelta.add_nodes(1), "global_batch": 64},
        {"name": "hetero_resize", "model": "gpt3-2.7b",
         "cluster": _hetero_pair(),
         "delta": ClusterDelta.resize_group("l4", gpus_per_node=2),
         "global_batch": 64},
    ]


def _tuner(model_name: str,
           cluster: "ClusterSpec | HeterogeneousCluster",
           scale: TuningScale) -> MistTuner:
    return MistTuner(
        get_model(model_name), cluster, seq_len=2048,
        space=scale.apply(SPACE_MIST),
        max_pareto_points=scale.max_pareto_points,
        max_gacc_candidates=scale.max_gacc_candidates,
    )


def measure_replan(scale: TuningScale, *,
                   engine: str = "vectorized") -> dict:
    """Run the warm-vs-cold suite; returns a JSON-ready dict::

        {"wall_time_seconds": ..., "engine": ...,
         "scenarios": {name: {"delta", "cold": {...}, "warm": {...},
                              "plans_match", "config_speedup"}},
         "config_speedup_geomean": ...,
         "plans_match": <all scenarios>,
         "warm_memo_hits": <aggregate>}
    """
    scenarios: dict[str, dict] = {}
    wall = 0.0
    speedups: list[float] = []
    all_match = True
    memo_hits = 0
    for scenario in replan_scenarios(scale.name):
        old_cluster = scenario["cluster"]
        delta: ClusterDelta = scenario["delta"]
        new_cluster = delta.apply(old_cluster)
        gb = scenario["global_batch"]

        # the pre-delta search: its plan is the incumbent, its memo is
        # the warm state a long-running service would already hold
        memo = MenuMemo()
        incumbent = _tuner(scenario["model"], old_cluster,
                           scale).search(gb, memo=memo, engine=engine)

        start = time.perf_counter()
        cold = _tuner(scenario["model"], new_cluster, scale).search(
            gb, memo=MenuMemo(), engine=engine)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = _tuner(scenario["model"], new_cluster, scale).replan(
            gb, incumbent=incumbent.best_plan, memo=memo, engine=engine)
        warm_seconds = time.perf_counter() - start
        wall += cold_seconds + warm_seconds

        match = plan_hash(cold.best_plan) == plan_hash(warm.best_plan)
        all_match = all_match and match
        speedup = (cold.configurations_evaluated
                   / max(1, warm.configurations_evaluated))
        speedups.append(speedup)
        warm_stats = warm.stats.to_dict() if warm.stats else {}
        cold_stats = cold.stats.to_dict() if cold.stats else {}
        memo_hits += warm_stats.get("memo_hits", 0)
        scenarios[scenario["name"]] = {
            "delta": delta.describe(),
            "workload": f"{scenario['model']}/gb{gb}",
            "cold": {
                "seconds": cold_seconds,
                "configurations_evaluated": cold.configurations_evaluated,
                "cells_explored": cold_stats.get("cells_explored"),
                "plan_hash": plan_hash(cold.best_plan),
            },
            "warm": {
                "seconds": warm_seconds,
                "configurations_evaluated": warm.configurations_evaluated,
                "cells_explored": warm_stats.get("cells_explored"),
                "memo_hits": warm_stats.get("memo_hits", 0),
                "matched": (warm_stats.get("warm_seed") or {}).get(
                    "matched", False),
                "plan_hash": plan_hash(warm.best_plan),
            },
            "plans_match": match,
            "config_speedup": speedup,
        }
    geomean = (math.exp(sum(math.log(s) for s in speedups) / len(speedups))
               if speedups else 0.0)
    return {
        "engine": engine,
        "wall_time_seconds": wall,
        "scenarios": scenarios,
        "config_speedup_geomean": geomean,
        "plans_match": all_match,
        "warm_memo_hits": memo_hits,
    }
