"""Declarative evaluation campaigns over the solver registry.

The §6-style evaluation surface: describe a (model x cluster x solver x
scale) matrix once, run it anywhere, resume it after a crash::

    from repro.campaigns import CampaignSpec, run_campaign

    spec = CampaignSpec.paper_grid(gpu="L4", family="gpt3",
                                   sizes=("1.3b", "2.7b"),
                                   solvers=("megatron", "mist"),
                                   scale="smoke")
    report = run_campaign(spec, executor="process-pool",
                          executor_options={"workers": 4},
                          directory="runs/l4-grid")
    print(report.table())                       # Fig. 11/12-style rows
    report2 = run_campaign(spec, directory="runs/l4-grid", resume=True)
    assert report2.counters["solved"] == 0      # manifest/cache only

See :mod:`repro.campaigns.spec` (the matrix + exclude rules),
:mod:`repro.campaigns.executors` (``inline`` / ``process-pool`` /
``service`` behind ``@register_executor``),
:mod:`repro.campaigns.manifest` (resumable on-disk state + event
stream), and :mod:`repro.campaigns.report` (speedup aggregation).
"""

from .executors import (
    Executor,
    ExecutorNotFoundError,
    InlineExecutor,  # repro: allow[registry-discipline] public API re-export
    ProcessPoolExecutor,  # repro: allow[registry-discipline] public API re-export
    ServiceExecutor,  # repro: allow[registry-discipline] public API re-export
    executor_names,
    executor_registry,
    get_executor,
    register_executor,
)
from .manifest import (
    CampaignError,
    CampaignManifest,
    finished_cell_record,
    pending_cell_record,
)
from .report import CampaignReport, aggregate
from .runner import run_campaign
from .spec import CampaignCell, CampaignSpec, CampaignValidationError

__all__ = [
    "CampaignCell",
    "CampaignError",
    "CampaignManifest",
    "CampaignReport",
    "CampaignSpec",
    "CampaignValidationError",
    "Executor",
    "ExecutorNotFoundError",
    "InlineExecutor",
    "ProcessPoolExecutor",
    "ServiceExecutor",
    "aggregate",
    "executor_names",
    "executor_registry",
    "finished_cell_record",
    "get_executor",
    "pending_cell_record",
    "register_executor",
    "run_campaign",
]
