"""Pluggable campaign executors behind one protocol and registry.

An *executor* consumes a list of pending :class:`CampaignCell`\\ s and
reports each cell's outcome through an ``on_result`` callback — it
decides *where* cells solve, never *what* they mean. Three backends
ship, selected by name via a small registry mirroring
``@register_solver``:

* ``inline``       — solve every cell serially in this process;
* ``process-pool`` — fan cells out to a bounded pool of worker
  processes (each worker re-solves through :func:`repro.api.solve`
  against the shared on-disk plan cache);
* ``service``      — delegate the whole batch to a live ``repro
  serve`` daemon via ``POST /campaigns``, so cells ride the daemon's
  worker pool, request coalescing, and shared plan cache.

Executors never raise for a failing cell: failures are delivered as
``on_result(cell, None, error)`` so one infeasible corner of a grid
cannot abort the campaign. ``should_stop()`` is polled between cells
and aborts the remainder (the resumable manifest picks them up on the
next ``--resume`` run).
"""

from __future__ import annotations

import time
from concurrent import futures as _futures
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.api import PlanCache, SolveReport, TuningJob, solve

from .spec import CampaignCell

__all__ = [
    "Executor",
    "ExecutorNotFoundError",
    "InlineExecutor",
    "ProcessPoolExecutor",
    "ServiceExecutor",
    "executor_names",
    "executor_registry",
    "get_executor",
    "register_executor",
]

#: callback signature: (cell, report or None, error message or None)
OnResult = Callable[[CampaignCell, Optional[SolveReport], Optional[str]],
                    None]

_REGISTRY: dict[str, type] = {}


class ExecutorNotFoundError(KeyError):
    """No executor registered under the requested name."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown executor {name!r}; registered: {executor_names()}"
        )
        self.name = name


@runtime_checkable
class Executor(Protocol):
    """What a registered campaign executor must implement."""

    def run(self, cells: list[CampaignCell], *,
            cache: PlanCache | None = None,
            on_result: OnResult,
            should_stop: Callable[[], bool] | None = None,
            label: str | None = None) -> None:  # pragma: no cover
        ...


def register_executor(name: str, *, overwrite: bool = False):
    """Class decorator: expose an executor class under ``name``."""

    def decorate(cls: type) -> type:
        if not overwrite and name in _REGISTRY and _REGISTRY[name] is not cls:
            raise ValueError(f"executor {name!r} already registered")
        cls.executor_name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_executor(name: str, **options) -> Executor:
    """Instantiate the executor registered under ``name``.

    ``options`` are passed to the constructor (e.g. ``workers=4`` for
    ``process-pool``, ``url=...`` for ``service``).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ExecutorNotFoundError(name) from None
    try:
        return cls(**options)
    except TypeError as exc:
        raise ValueError(
            f"invalid options for executor {name!r}: {exc}") from None


def executor_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def executor_registry() -> dict[str, type]:
    """A snapshot of the registry (name -> executor class)."""
    return dict(_REGISTRY)


@register_executor("inline")
class InlineExecutor:
    """Solve every cell serially in this process (the default)."""

    def run(self, cells, *, cache=None, on_result, should_stop=None,
            label=None):
        for cell in cells:
            if should_stop is not None and should_stop():
                return
            try:
                report = solve(cell.job, cell.solver, cache=cache)
            except Exception as exc:  # noqa: BLE001 — per-cell isolation
                on_result(cell, None, f"{type(exc).__name__}: {exc}")
            else:
                on_result(cell, report, None)


def _solve_cell(solver: str, job_dict: dict,
                cache_dir: str | None) -> tuple[dict, bool]:
    """Worker-process body for the pool executor (must stay picklable)."""
    job = TuningJob.from_dict(job_dict)
    cache = PlanCache(cache_dir) if cache_dir else None
    report = solve(job, solver, cache=cache)
    return report.to_dict(), bool(report.from_cache)


@register_executor("process-pool")
class ProcessPoolExecutor:
    """Fan cells out to a bounded pool of worker processes.

    Workers re-enter :func:`repro.api.solve` against the shared
    on-disk plan cache, so concurrent identical cells race safely (the
    cache's atomic writes) and a later ``--resume`` run sees every
    plan any worker finished — even cells whose results arrived after
    ``should_stop`` fired.
    """

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(self, cells, *, cache=None, on_result, should_stop=None,
            label=None):
        if not cells:
            return
        cache_dir = str(cache.root) if cache is not None else None
        pool = _futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(cells)))
        try:
            pending = {
                pool.submit(_solve_cell, cell.solver, cell.job.to_dict(),
                            cache_dir): cell
                for cell in cells
            }
            for future in _futures.as_completed(pending):
                if should_stop is not None and should_stop():
                    break
                cell = pending[future]
                try:
                    data, from_cache = future.result()
                except Exception as exc:  # noqa: BLE001 — per-cell
                    on_result(cell, None, f"{type(exc).__name__}: {exc}")
                else:
                    report = SolveReport.from_dict(data)
                    report.from_cache = from_cache
                    on_result(cell, report, None)
        finally:
            # cancel queued cells; wait for in-flight solves so their
            # cache writes land before the campaign returns
            pool.shutdown(wait=True, cancel_futures=True)


@register_executor("service")
class ServiceExecutor:
    """Delegate cells to a live ``repro serve`` daemon.

    The whole batch goes up in one ``POST /campaigns``; the daemon's
    bounded worker pool, request coalescing, and shared plan cache do
    the heavy lifting. Progress is watched through one
    ``GET /campaigns/<id>`` per poll (the per-cell report is fetched
    only when a cell turns terminal), and completed cells are mirrored
    into the local ``cache`` (when given) so a later ``--resume`` run
    can answer from disk without the daemon.

    ``timeout`` bounds *stall*, not total runtime: the clock resets
    every time a cell finishes, so an hour-long grid that keeps making
    progress never times out, while a wedged daemon fails the
    remaining cells after ``timeout`` silent seconds.
    """

    #: job-record states that end a cell
    _TERMINAL = ("done", "failed", "cancelled")

    def __init__(self, url: str = "", *, timeout: float = 600.0,
                 poll_interval: float = 0.1):
        if not url:
            raise ValueError(
                "service executor needs url=... (the daemon's base URL)")
        self.url = url
        self.timeout = timeout
        self.poll_interval = poll_interval

    def run(self, cells, *, cache=None, on_result, should_stop=None,
            label=None):
        if not cells:
            return
        from repro.service import Client, ServiceError

        client = Client(self.url, timeout=min(self.timeout, 30.0))
        try:
            campaign = client.submit_campaign(
                [{"solver": cell.solver, "job": cell.job.to_dict()}
                 for cell in cells],
                name=label or "campaign",
            )
        except ServiceError as exc:
            for cell in cells:
                on_result(cell, None, f"service: {exc}")
            return
        campaign_id = campaign["id"]
        pending = {record["id"]: cell
                   for record, cell in zip(campaign["cells"], cells)}

        def cancel_pending() -> None:
            # best-effort: don't leave the daemon's bounded worker
            # pool solving a grid nobody is waiting for
            for job_id in pending:
                try:
                    client.cancel(job_id)
                except ServiceError:
                    continue

        deadline = time.monotonic() + self.timeout
        while pending:
            if should_stop is not None and should_stop():
                cancel_pending()
                return
            if time.monotonic() > deadline:
                cancel_pending()
                for cell in pending.values():
                    on_result(cell, None,
                              f"service: no progress for "
                              f"{self.timeout:.0f}s")
                return
            try:
                status = client.campaign(campaign_id)
            except ServiceError as exc:
                for cell in pending.values():
                    on_result(cell, None, f"service: {exc}")
                return
            progressed = False
            for record in status["cells"]:
                cell = pending.get(record["id"])
                if cell is None or record["status"] not in self._TERMINAL:
                    continue
                pending.pop(record["id"])
                progressed = True
                if record["status"] != "done":
                    on_result(cell, None,
                              record.get("error") or record["status"])
                    continue
                try:
                    # campaign summaries omit reports; fetch this cell's
                    full = client.job(record["id"])
                except ServiceError as exc:
                    on_result(cell, None, f"service: {exc}")
                    continue
                report = SolveReport.from_dict(full["report"])
                report.from_cache = bool(full["from_cache"])
                if cache is not None:
                    cache.store(report)
                on_result(cell, report, None)
            if progressed:
                deadline = time.monotonic() + self.timeout
            elif pending:
                time.sleep(self.poll_interval)
