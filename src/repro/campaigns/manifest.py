"""Resumable on-disk campaign state: one record per cell fingerprint.

A :class:`CampaignManifest` owns a directory with two files:

* ``manifest.json`` — the campaign spec, its fingerprint, and one
  record per finished cell (status, source, throughput, the winning
  plan). Rewritten atomically after every cell, so a killed campaign
  leaves a valid manifest behind.
* ``events.jsonl``  — an append-only stream of per-cell progress
  events (``campaign-started`` / ``cell`` / ``campaign-finished``),
  one JSON object per line, for tailing long grids.

The manifest records *that* a cell finished and what it measured; the
authoritative solved artifact stays in the
:class:`~repro.api.cache.PlanCache`. A ``--resume`` run therefore only
short-circuits a cell when both agree — the manifest marks it done
*and* the cache still holds its report — and re-runs anything missing
or failed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from .spec import CampaignCell, CampaignSpec

__all__ = ["CampaignError", "CampaignManifest", "finished_cell_record",
           "pending_cell_record"]


class CampaignError(RuntimeError):
    """Campaign orchestration failed (bad directory, spec mismatch...)."""


def pending_cell_record(cell: CampaignCell) -> dict:
    """Record shape for a cell no run has finished (aborted/killed).

    The one definition of the per-cell record schema — finished cells
    are built on top of it by :func:`finished_cell_record`, and
    ``repro campaign status/report`` pads a partial manifest back out
    to the full matrix with it.
    """
    return {
        "cell_id": cell.cell_id,
        "solver": cell.solver,
        "fingerprint": cell.job.fingerprint(),
        "workload": cell.workload,
        "model": cell.model,
        "cluster": cell.cluster,
        "scale": cell.scale,
        "seq_len": cell.job.seq_len,
        "global_batch": cell.job.global_batch,
        "job": cell.job.to_dict(),
        "status": "pending",
        "source": None,
        "error": None,
        "throughput": 0.0,
        "tuning_time_seconds": 0.0,
        "measured": {},
        "plan": None,
        "finished_at": None,
    }


def finished_cell_record(cell: CampaignCell, *, status: str, source: str,
                         report=None, error: str | None = None) -> dict:
    """One finished cell's record (manifest-backed or in-memory alike)."""
    record = pending_cell_record(cell)
    record.update(
        status=status,
        source=source,
        error=error,
        throughput=float(report.throughput) if report else 0.0,
        tuning_time_seconds=(float(report.tuning_time_seconds)
                             if report else 0.0),
        measured=dict(report.measured) if report else {},
        plan=(report.plan.to_dict()
              if report is not None and report.plan is not None
              else None),
        finished_at=time.time(),  # repro: allow[determinism] display timestamp, excluded from resume keys
    )
    return record


class CampaignManifest:
    """Filesystem-backed record of one campaign's per-cell outcomes."""

    MANIFEST = "manifest.json"
    EVENTS = "events.jsonl"

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.name: str | None = None
        self.spec_dict: dict | None = None
        self.fingerprint: str | None = None
        self._cells: dict[str, dict] = {}

    @property
    def path(self) -> Path:
        return self.root / self.MANIFEST

    @property
    def events_path(self) -> Path:
        return self.root / self.EVENTS

    def exists(self) -> bool:
        return self.path.is_file()

    # -- lifecycle ---------------------------------------------------------

    def load(self) -> bool:
        """Read ``manifest.json``; ``False`` on missing/corrupt."""
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return False
        if not isinstance(data, dict):
            return False
        self.name = data.get("name")
        self.spec_dict = data.get("spec")
        self.fingerprint = data.get("fingerprint")
        self._cells = {
            rec["cell_id"]: rec
            for rec in data.get("cells", [])
            if isinstance(rec, dict) and "cell_id" in rec
        }
        return True

    def begin(self, spec: CampaignSpec, *, resume: bool = False) -> None:
        """Bind the manifest to ``spec`` (fresh) or verify it (resume)."""
        fingerprint = spec.fingerprint()
        if resume:
            if not self.load():
                raise CampaignError(
                    f"nothing to resume: no readable manifest at "
                    f"{self.path}")
            if self.fingerprint != fingerprint:
                raise CampaignError(
                    f"campaign spec changed since the manifest was written "
                    f"(manifest {self.fingerprint}, spec {fingerprint}); "
                    f"run without --resume to start over")
        else:
            self._cells = {}
            self.events_path.unlink(missing_ok=True)
        self.name = spec.name
        self.spec_dict = spec.to_dict()
        self.fingerprint = fingerprint
        self.root.mkdir(parents=True, exist_ok=True)
        self._save()
        self.event({
            "event": "campaign-resumed" if resume else "campaign-started",
            "name": spec.name,
            "fingerprint": fingerprint,
        })

    # -- cells -------------------------------------------------------------

    def cell(self, cell_id: str) -> dict | None:
        return self._cells.get(cell_id)

    def cells(self) -> list[dict]:
        return list(self._cells.values())

    def record_cell(self, cell: CampaignCell, *, status: str, source: str,
                    report=None, error: str | None = None) -> dict:
        """Persist one finished cell and stream the matching event."""
        record = finished_cell_record(cell, status=status, source=source,
                                      report=report, error=error)
        self._cells[cell.cell_id] = record
        self._save()
        self.event({
            "event": "cell",
            "cell_id": record["cell_id"],
            "workload": record["workload"],
            "solver": record["solver"],
            "status": status,
            "source": source,
            "throughput": record["throughput"],
            "error": error,
        })
        return record

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "spec": self.spec_dict,
            "cells": list(self._cells.values()),
        }

    def _save(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        # unique per writer + atomic rename, mirroring PlanCache.store
        tmp = self.path.with_name(
            f".{self.path.stem}.{os.getpid()}-{threading.get_ident()}.tmp")
        try:
            tmp.write_text(json.dumps(self.to_dict(), sort_keys=True,
                                      indent=2))
            tmp.replace(self.path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def event(self, payload: dict) -> None:
        """Append one JSON line to the streaming event log."""
        line = json.dumps({"ts": time.time(), **payload}, sort_keys=True)  # repro: allow[determinism, fingerprint-taint] event-log display timestamp, not a fingerprint input
        with self.events_path.open("a") as fh:
            fh.write(line + "\n")

    def events(self) -> list[dict]:
        """Parse the event stream (skipping torn/corrupt lines)."""
        try:
            lines = self.events_path.read_text().splitlines()
        except OSError:
            return []
        out = []
        for line in lines:
            try:
                out.append(json.loads(line))
            except ValueError:
                continue
        return out
