"""Campaign aggregation: per-cell records -> speedup tables + report.

:func:`aggregate` folds a campaign's per-cell records into a
serializable :class:`CampaignReport`: run counters (solved / plan-cache
hits / manifest hits / failures), a ``results`` matrix
(``workload -> solver -> samples/s``), Figure 11/12-style normalized
throughput tables, and — via :meth:`CampaignReport.comparisons` — real
:class:`~repro.evaluation.runner.Comparison` objects for code that
already speaks the single-workload evaluation shapes.
"""

from __future__ import annotations

import json

from repro.api.job import TuningJob
from repro.core.plan import TrainingPlan
from repro.evaluation.reporting import format_throughput_rows

from .spec import CampaignSpec

__all__ = ["CampaignReport", "aggregate"]

#: per-cell ``source`` values -> report counter names
_SOURCE_COUNTERS = {
    "solved": "solved",
    "cache": "cache_hits",
    "manifest": "manifest_hits",
}


class CampaignReport:
    """One campaign's aggregated, JSON-round-trippable outcome."""

    def __init__(self, *, name: str, spec: CampaignSpec | None,
                 cells: list[dict], counters: dict,
                 executor: str = "inline", elapsed_seconds: float = 0.0):
        self.name = name
        self.spec = spec
        self.cells = cells
        self.counters = counters
        self.executor = executor
        self.elapsed_seconds = elapsed_seconds

    # -- aggregation views -------------------------------------------------

    @property
    def complete(self) -> bool:
        return (self.counters.get("pending", 0) == 0
                and self.counters.get("failed", 0) == 0)

    def reference(self) -> str:
        if self.spec is not None and self.spec.reference:
            return self.spec.reference
        if self.spec is not None and self.spec.solvers:
            return self.spec.solvers[0]
        solvers = sorted({rec["solver"] for rec in self.cells})
        return solvers[0] if solvers else ""

    def results(self) -> dict:
        """``workload -> solver -> measured samples/s`` (failures = 0)."""
        out: dict[str, dict[str, float]] = {}
        for rec in self.cells:
            row = out.setdefault(rec["workload"], {})
            row[rec["solver"]] = (float(rec.get("throughput", 0.0))
                                  if rec.get("status") == "done" else 0.0)
        return out

    def speedups(self, reference: str | None = None) -> dict:
        """``workload -> solver -> throughput / reference throughput``."""
        reference = reference or self.reference()
        out: dict[str, dict[str, float]] = {}
        for workload, row in self.results().items():
            if reference not in row:
                raise ValueError(
                    f"reference solver {reference!r} has no cell on "
                    f"{workload!r}; available: {sorted(row)}")
            ref = row[reference]
            out[workload] = {
                solver: ((value / ref) if ref > 0
                         else (float("inf") if value > 0 else 0.0))
                for solver, value in row.items()
            }
        return out

    def comparisons(self) -> dict:
        """Per-workload :class:`~repro.evaluation.runner.Comparison`.

        Outcomes are rebuilt from the serialized records (plan +
        measured metrics); live execution objects never survive
        aggregation, exactly like reports fetched from a daemon.
        """
        from repro.evaluation.runner import Comparison, SystemOutcome

        grouped: dict[str, dict] = {}
        workloads: dict[str, object] = {}
        for rec in self.cells:
            name = rec["workload"]
            if name not in workloads and rec.get("job"):
                workloads[name] = TuningJob.from_dict(rec["job"]).workload
            plan = (TrainingPlan.from_dict(rec["plan"])
                    if rec.get("plan") else None)
            grouped.setdefault(name, {})[rec["solver"]] = SystemOutcome(
                system=rec["solver"],
                plan=plan,
                result=None,
                tuning_time_seconds=float(
                    rec.get("tuning_time_seconds", 0.0)),
                extra={"source": rec.get("source"),
                       "status": rec.get("status")},
                measured=dict(rec.get("measured", {})),
            )
        return {
            name: Comparison(workload=workloads.get(name),
                             outcomes=outcomes)
            for name, outcomes in grouped.items()
        }

    def table(self, title: str | None = None) -> str:
        """Figure 11/12-style normalized-throughput table."""
        title = title or f"campaign {self.name}"
        return format_throughput_rows(title, self.results(),
                                      self.reference())

    def describe(self) -> str:
        c = self.counters
        lines = [
            f"campaign {self.name}: {c.get('done', 0)}/{c.get('cells', 0)} "
            f"cells done via {self.executor} in "
            f"{self.elapsed_seconds:.1f}s "
            f"(solved {c.get('solved', 0)}, cache {c.get('cache_hits', 0)}, "
            f"manifest {c.get('manifest_hits', 0)}, "
            f"failed {c.get('failed', 0)}, pending {c.get('pending', 0)})",
        ]
        if any(rec.get("status") == "done" for rec in self.cells):
            lines.append(self.table())
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "executor": self.executor,
            "elapsed_seconds": self.elapsed_seconds,
            "counters": dict(self.counters),
            "cells": [dict(rec) for rec in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignReport":
        spec = (CampaignSpec.from_dict(data["spec"])
                if data.get("spec") else None)
        return cls(
            name=data["name"],
            spec=spec,
            cells=[dict(rec) for rec in data.get("cells", [])],
            counters=dict(data.get("counters", {})),
            executor=data.get("executor", "inline"),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent,
                          allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        return cls.from_dict(json.loads(text))


def aggregate(spec: CampaignSpec | None, cells: list[dict], *,
              executor: str = "inline",
              elapsed_seconds: float = 0.0) -> CampaignReport:
    """Fold per-cell records into a :class:`CampaignReport`."""
    counters = {
        "cells": len(cells),
        "done": 0,
        "failed": 0,
        "pending": 0,
        "solved": 0,
        "cache_hits": 0,
        "manifest_hits": 0,
    }
    for rec in cells:
        status = rec.get("status", "pending")
        if status == "done":
            counters["done"] += 1
        elif status == "failed":
            counters["failed"] += 1
        else:
            counters["pending"] += 1
        source = _SOURCE_COUNTERS.get(rec.get("source") or "")
        if source is not None and status == "done":
            counters[source] += 1
    return CampaignReport(
        name=spec.name if spec is not None else "campaign",
        spec=spec,
        cells=cells,
        counters=counters,
        executor=executor,
        elapsed_seconds=elapsed_seconds,
    )
