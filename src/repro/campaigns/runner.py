"""Campaign orchestration: expand, short-circuit, execute, aggregate.

:func:`run_campaign` is the one entry point every surface shares — the
``repro campaign`` CLI, the reworked ``repro sweep``, and
:func:`repro.evaluation.runner.compare_systems` are all thin wrappers
over it. The flow:

1. expand the :class:`CampaignSpec` matrix into fingerprinted cells;
2. with ``resume=True``, serve every cell whose manifest record says
   *done* **and** whose report is still in the plan cache (source
   ``"manifest"`` — no search, no executor dispatch);
3. hand the remaining cells to the chosen executor (``inline`` /
   ``process-pool`` / ``service``), streaming one manifest record +
   event per completed cell (source ``"solved"`` or ``"cache"``);
4. aggregate everything into a serializable
   :class:`~repro.campaigns.report.CampaignReport`, also written to
   ``<directory>/report.json`` when a campaign directory is used.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

from repro.api import PlanCache

from .executors import get_executor
from .manifest import (
    CampaignError,
    CampaignManifest,
    finished_cell_record,
    pending_cell_record,
)
from .report import CampaignReport, aggregate
from .spec import CampaignCell, CampaignSpec

__all__ = ["run_campaign"]

#: per-cell callback: (manifest-style record, SolveReport | None)
OnEvent = Callable[[dict, object], None]


class _MemoryManifest:
    """Record sink for directory-less runs (no resume, no events file)."""

    def cell(self, cell_id):  # pragma: no cover - trivial
        return None

    def record_cell(self, cell, *, status, source, report=None, error=None):
        return finished_cell_record(cell, status=status, source=source,
                                    report=report, error=error)

    def event(self, payload):
        pass


def run_campaign(spec: CampaignSpec, *,
                 executor: str = "inline",
                 executor_options: dict | None = None,
                 directory: "str | Path | None" = None,
                 cache: PlanCache | None = None,
                 resume: bool = False,
                 on_event: OnEvent | None = None,
                 should_stop: Callable[[], bool] | None = None,
                 ) -> CampaignReport:
    """Run (or resume) one campaign and return its aggregated report.

    ``directory`` makes the run durable: a resumable manifest, a
    streaming ``events.jsonl``, a ``plans/`` plan cache (unless an
    explicit ``cache`` is given), and the final ``report.json`` all
    live there. Without it the campaign runs in memory only and
    ``resume`` is unavailable.
    """
    if resume and directory is None:
        raise CampaignError("resume requires a campaign directory")
    cells = spec.expand()
    executor_obj = get_executor(executor, **(executor_options or {}))
    manifest: "CampaignManifest | _MemoryManifest"
    if directory is not None:
        directory = Path(directory)
        manifest = CampaignManifest(directory)
        manifest.begin(spec, resume=resume)
        if cache is None:
            cache = PlanCache(directory / "plans")
    else:
        manifest = _MemoryManifest()

    start = time.perf_counter()
    records: dict[str, dict] = {}

    def finish(cell: CampaignCell, *, status: str, source: str,
               report=None, error: str | None = None) -> None:
        record = manifest.record_cell(cell, status=status, source=source,
                                      report=report, error=error)
        records[cell.cell_id] = record
        if on_event is not None:
            on_event(record, report)

    # resume short-circuit: manifest says done AND the cache still has
    # the solved report -> no search, no executor dispatch
    pending: list[CampaignCell] = []
    for cell in cells:
        prior = manifest.cell(cell.cell_id) if resume else None
        if prior is not None and prior.get("status") == "done" \
                and cache is not None:
            hit = cache.load(cell.job, cell.solver)
            if hit is not None:
                finish(cell, status="done", source="manifest", report=hit)
                continue
        pending.append(cell)

    def on_result(cell: CampaignCell, report, error: str | None) -> None:
        if error is not None:
            finish(cell, status="failed", source="error", error=error)
        else:
            source = "cache" if report.from_cache else "solved"
            finish(cell, status="done", source=source, report=report)

    if pending:
        executor_obj.run(pending, cache=cache, on_result=on_result,
                         should_stop=should_stop, label=spec.name)

    ordered = [records.get(cell.cell_id) or pending_cell_record(cell)
               for cell in cells]
    report = aggregate(spec, ordered, executor=executor,
                       elapsed_seconds=time.perf_counter() - start)
    manifest.event({"event": "campaign-finished",
                    "counters": dict(report.counters)})
    if directory is not None:
        (directory / "report.json").write_text(report.to_json() + "\n")
    return report
