"""Declarative tuning campaigns — the paper's §6 evaluation grids as data.

A :class:`CampaignSpec` describes a whole evaluation matrix the way a
:class:`~repro.api.job.TuningJob` describes one tuning request: model
sizes (explicit specs, or a ``family`` + ``sizes`` grid following the
Table 4 scaling rule), clusters (implied homogeneous shorthands,
explicit — possibly heterogeneous — cluster dicts, or paths to cluster
JSON files), solvers, scale presets, and optional per-axis sequence
length / global batch overrides, minus any cells matched by ``exclude``
rules. Specs are JSON round-trippable and content-addressed
(:meth:`CampaignSpec.fingerprint`), and :meth:`CampaignSpec.expand`
compiles one to the flat list of fingerprinted
:class:`CampaignCell`\\ s — (solver, job) pairs — that the executors in
:mod:`repro.campaigns.executors` actually run.

Cells are built through the exact same :meth:`TuningJob.from_workload`
path the single-job runner uses, so a campaign cell's fingerprint — and
therefore its :class:`~repro.api.cache.PlanCache` entry — is identical
to the one an individual :func:`repro.api.solve` call would produce.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.api.job import JobValidationError, TuningJob
from repro.api.registry import solver_names
from repro.evaluation.workloads import (
    WorkloadSpec,
    batch_for_size,
    default_seq_len,
    gpu_count_for_size,
)
from repro.hardware import HeterogeneousCluster, cluster_from_dict

__all__ = ["CampaignCell", "CampaignSpec", "CampaignValidationError"]

#: cell-axis keys an ``exclude`` rule may match on
EXCLUDE_KEYS = ("solver", "model", "cluster", "scale", "seq_len",
                "global_batch")

#: cluster shorthand ``{"gpu": ..., "num_gpus": ...}`` — the implied
#: homogeneous form whose jobs carry no explicit cluster dict (keeping
#: their fingerprints identical to plain ``TuningJob(gpu=, num_gpus=)``)
_SHORTHAND_KEYS = {"gpu", "num_gpus"}


class CampaignValidationError(ValueError):
    """A campaign spec is inconsistent, or its matrix cannot expand."""


@dataclass(frozen=True)
class CampaignCell:
    """One expanded campaign point: a solver on a declarative job."""

    solver: str
    job: TuningJob
    #: axis labels the cell was expanded from (for exclusion/reporting)
    model: str
    cluster: str
    scale: str

    @property
    def cell_id(self) -> str:
        """Stable identity: the plan-cache key pair, joined."""
        return f"{self.solver}-{self.job.fingerprint()}"

    @property
    def workload(self) -> str:
        return self.job.workload.name

    def axes(self) -> dict:
        """The axis values ``exclude`` rules match against."""
        return {
            "solver": self.solver,
            "model": self.model,
            "cluster": self.cluster,
            "scale": self.scale,
            "seq_len": self.job.seq_len,
            "global_batch": self.job.global_batch,
        }


@dataclass(frozen=True)
class _ResolvedCluster:
    """One cluster-axis entry after normalization."""

    label: str
    gpu_name: str
    num_gpus: int | None
    cluster_dict: dict | None


def _resolve_cluster_entry(entry) -> _ResolvedCluster:
    if isinstance(entry, str):
        try:
            data = json.loads(Path(entry).read_text())
        except (OSError, ValueError) as exc:
            raise CampaignValidationError(
                f"cannot read cluster file {entry!r}: {exc}") from exc
        if not isinstance(data, dict):
            raise CampaignValidationError(
                f"cluster file {entry!r} must hold a JSON object")
        return _resolve_cluster_entry(data)
    if not isinstance(entry, dict):
        raise CampaignValidationError(
            f"cluster entry must be a dict or a file path, got {entry!r}")
    if set(entry) <= _SHORTHAND_KEYS:
        gpu = entry.get("gpu", "L4")
        num_gpus = entry.get("num_gpus")
        label = f"{gpu}x{num_gpus}" if num_gpus else str(gpu)
        return _ResolvedCluster(label=label, gpu_name=gpu,
                                num_gpus=num_gpus, cluster_dict=None)
    # explicit cluster description: keep the *raw* dict on the job so
    # fingerprints match single-job runs built from the same dict
    try:
        parsed = cluster_from_dict(entry)
    except (KeyError, TypeError, ValueError) as exc:
        raise CampaignValidationError(
            f"invalid cluster entry: {exc}") from exc
    gpu_name = (parsed.groups[0].gpu.name
                if isinstance(parsed, HeterogeneousCluster)
                else parsed.gpu.name)
    return _ResolvedCluster(label=parsed.name, gpu_name=gpu_name,
                            num_gpus=parsed.total_gpus,
                            cluster_dict=dict(entry))


def _scale_label(scale) -> str:
    if isinstance(scale, str):
        return scale
    return str(scale.get("name", "custom"))


def _rule_matches(rule: dict, axes: dict) -> bool:
    for key, wanted in rule.items():
        value = axes[key]
        if isinstance(wanted, (list, tuple)):
            if value not in wanted:
                return False
        elif value != wanted:
            return False
    return True


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative evaluation campaign (a matrix of tuning cells).

    The model axis is ``models`` (explicit specs), a ``family`` +
    ``sizes`` grid (GPU count and global batch follow the paper's
    Table 4 scaling rule unless overridden), or both. Empty
    ``seq_lens`` / ``global_batches`` mean "derive the paper default"
    (sequence length per GPU type; batch per model size — explicit
    models therefore require ``global_batches``).
    """

    name: str
    solvers: tuple[str, ...]
    models: tuple[str, ...] = ()
    family: str | None = None
    sizes: tuple[str, ...] = ()
    clusters: tuple = ({"gpu": "L4"},)
    scales: tuple = ("quick",)
    seq_lens: tuple = ()
    global_batches: tuple = ()
    flash: bool = True
    space: str | dict = "mist"
    interference: str = "auto"
    parallelism: int = 1
    keep_top: int = 3
    #: speedup-normalization solver (default: the first one)
    reference: str | None = None
    #: partial-match rules over cell axes; a cell matching any rule is
    #: dropped from the expansion
    exclude: tuple = ()

    def __post_init__(self):
        for name in ("solvers", "models", "sizes", "clusters", "scales",
                     "seq_lens", "global_batches", "exclude"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if not self.name or not isinstance(self.name, str):
            raise CampaignValidationError("campaign needs a non-empty name")
        if not self.solvers:
            raise CampaignValidationError("campaign needs >= 1 solver")
        if not self.models and not (self.family and self.sizes):
            raise CampaignValidationError(
                "campaign needs models=... or family=... with sizes=...")
        if self.sizes and not self.family:
            raise CampaignValidationError("sizes=... requires family=...")
        if not self.clusters:
            raise CampaignValidationError("campaign needs >= 1 cluster")
        if not self.scales:
            raise CampaignValidationError("campaign needs >= 1 scale")
        if self.reference is not None and self.reference not in self.solvers:
            raise CampaignValidationError(
                f"reference {self.reference!r} is not among solvers "
                f"{list(self.solvers)}")
        for rule in self.exclude:
            if not isinstance(rule, dict) or not rule:
                raise CampaignValidationError(
                    f"exclude rules must be non-empty dicts, got {rule!r}")
            unknown = set(rule) - set(EXCLUDE_KEYS)
            if unknown:
                raise CampaignValidationError(
                    f"exclude rule {rule!r} uses unknown axes "
                    f"{sorted(unknown)}; valid: {list(EXCLUDE_KEYS)}")

    # -- expansion ---------------------------------------------------------

    def _model_entries(self) -> list[tuple[str, str | None]]:
        """(model spec, Table-4 size tag or None) pairs, in axis order."""
        entries = [(model, None) for model in self.models]
        if self.family:
            entries.extend(
                (f"{self.family}-{size}", size) for size in self.sizes)
        return entries

    def _excluded(self, axes: dict) -> bool:
        return any(_rule_matches(rule, axes) for rule in self.exclude)

    def expand(self, *, check_solvers: bool = True) -> list[CampaignCell]:
        """Compile the matrix to fingerprinted cells (duplicates merged).

        ``check_solvers=False`` skips registry validation — useful when
        inspecting a manifest written by a process with extra solvers
        registered.
        """
        if check_solvers:
            unknown = [s for s in self.solvers if s not in solver_names()]
            if unknown:
                raise CampaignValidationError(
                    f"unknown solver(s) {unknown}; "
                    f"registered: {list(solver_names())}")
        cells: list[CampaignCell] = []
        seen: set[str] = set()
        for entry in self.clusters:
            resolved = _resolve_cluster_entry(entry)
            for model, size in self._model_entries():
                num_gpus = resolved.num_gpus
                if num_gpus is None:
                    if size is None:
                        raise CampaignValidationError(
                            f"cluster {resolved.label!r} has no GPU count "
                            f"and model {model!r} is not a family size — "
                            f"add num_gpus or use family/sizes")
                    try:
                        num_gpus = gpu_count_for_size(size)
                    except KeyError as exc:
                        raise CampaignValidationError(
                            f"unknown size: {exc}") from exc
                for scale in self.scales:
                    for seq in (self.seq_lens or (None,)):
                        seq_len = (seq if seq is not None
                                   else default_seq_len(resolved.gpu_name))
                        for batch in (self.global_batches or (None,)):
                            if batch is None:
                                if size is None:
                                    raise CampaignValidationError(
                                        f"model {model!r} is not a family "
                                        f"size — set global_batches=...")
                                try:
                                    batch = batch_for_size(size)
                                except KeyError as exc:
                                    raise CampaignValidationError(
                                        f"unknown size: {exc}") from exc
                            workload = WorkloadSpec(
                                model_spec=model,
                                gpu_name=resolved.gpu_name,
                                num_gpus=num_gpus,
                                global_batch=batch,
                                seq_len=seq_len,
                                flash=self.flash,
                                cluster_dict=resolved.cluster_dict,
                            )
                            try:
                                job = TuningJob.from_workload(
                                    workload, space=self.space, scale=scale,
                                    interference=self.interference,
                                    parallelism=self.parallelism,
                                    keep_top=self.keep_top,
                                )
                            except JobValidationError as exc:
                                raise CampaignValidationError(
                                    f"cell ({model}, {resolved.label}): "
                                    f"{exc}") from exc
                            for solver in self.solvers:
                                cell = CampaignCell(
                                    solver=solver, job=job, model=model,
                                    cluster=resolved.label,
                                    scale=_scale_label(scale),
                                )
                                if self._excluded(cell.axes()):
                                    continue
                                if cell.cell_id in seen:
                                    continue
                                seen.add(cell.cell_id)
                                cells.append(cell)
        return cells

    # -- convenience constructors -----------------------------------------

    @classmethod
    def paper_grid(cls, *, gpu: str = "L4", family: str = "gpt3",
                   sizes: tuple[str, ...] = ("1.3b", "2.7b", "6.7b",
                                             "13b", "22b"),
                   solvers: tuple[str, ...] = ("megatron", "deepspeed",
                                               "mist"),
                   scale: str = "quick", **kwargs) -> "CampaignSpec":
        """The Figs. 11/12 matrix: one GPU type, Table 4 size scaling."""
        kwargs.setdefault("name", f"{family}-{gpu}-{scale}".lower())
        return cls(solvers=tuple(solvers), family=family,
                   sizes=tuple(sizes), clusters=({"gpu": gpu},),
                   scales=(scale,), **kwargs)

    def with_(self, **changes) -> "CampaignSpec":
        return replace(self, **changes)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "solvers": list(self.solvers),
            "models": list(self.models),
            "family": self.family,
            "sizes": list(self.sizes),
            "clusters": [dict(c) if isinstance(c, dict) else c
                         for c in self.clusters],
            "scales": [dict(s) if isinstance(s, dict) else s
                       for s in self.scales],
            "seq_lens": list(self.seq_lens),
            "global_batches": list(self.global_batches),
            "flash": self.flash,
            "space": self.space,
            "interference": self.interference,
            "parallelism": self.parallelism,
            "keep_top": self.keep_top,
            "reference": self.reference,
            "exclude": [dict(rule) for rule in self.exclude],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        # strict: campaign specs are hand-written files, so a typo'd
        # axis ("seq_len" for "seq_lens") must fail loudly, not
        # silently run a different grid
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise CampaignValidationError(
                f"unknown campaign spec field(s) {sorted(unknown)}; "
                f"valid: {sorted(cls.__dataclass_fields__)}")
        return cls(**{f: data[f] for f in cls.__dataclass_fields__
                      if f in data})

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise CampaignValidationError(
                "campaign spec must be a JSON object")
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """Stable content hash; the manifest's resume-compatibility key.

        ``parallelism`` is excluded for the same reason it is excluded
        from :meth:`TuningJob.fingerprint`: it changes how fast cells
        solve, never which plans come back.
        """
        payload = self.to_dict()
        payload.pop("parallelism")
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]

