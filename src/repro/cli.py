"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tune``     — auto-tune a model on a cluster, print the plan and the
  measured throughput; optionally compare against baseline systems.
* ``models``   — list available model configurations.
* ``analyze``  — predict time/memory for an explicit configuration.

Examples::

    python -m repro tune --model gpt3-6.7b --gpu L4 --gpus 8 \
        --global-batch 128 --seq-len 2048 --compare megatron deepspeed
    python -m repro analyze --model gpt3-2.7b --gpu L4 --gpus 4 \
        --global-batch 8 --seq-len 4096 --stages 2 --dp 2 --ckpt full
"""

from __future__ import annotations

import argparse
import sys

from repro.core import MistTuner, SPACE_MIST
from repro.core.plan import uniform_plan
from repro.evaluation import calibrated_interference, run_baseline
from repro.evaluation.workloads import GPUS_PER_NODE, SCALES, WorkloadSpec
from repro.execution import ExecutionEngine, OOMError, render_timeline
from repro.models import get_model, list_models

__all__ = ["main"]


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", required=True,
                        help="model spec, e.g. gpt3-2.7b (see 'models')")
    parser.add_argument("--gpu", default="L4",
                        help="GPU type: L4, A100-40GB, A100-80GB, H100-80GB")
    parser.add_argument("--gpus", type=int, required=True,
                        help="total GPU count")
    parser.add_argument("--global-batch", type=int, required=True)
    parser.add_argument("--seq-len", type=int, default=2048)
    parser.add_argument("--no-flash", action="store_true",
                        help="disable FlashAttention")


def _workload(args) -> WorkloadSpec:
    return WorkloadSpec(
        model_spec=args.model, gpu_name=args.gpu, num_gpus=args.gpus,
        global_batch=args.global_batch, seq_len=args.seq_len,
        flash=not args.no_flash,
    )


def _cmd_models(_args) -> int:
    for spec in list_models():
        model = get_model(spec)
        print(f"{spec:14s} {model.total_params / 1e9:6.1f}B params  "
              f"{model.num_layers} layers x {model.hidden_size} hidden")
    return 0


def _cmd_tune(args) -> int:
    spec = _workload(args)
    model = spec.model
    cluster = spec.cluster
    scale = SCALES[args.scale]
    print(f"tuning {model} on {cluster.name}, B={spec.global_batch}, "
          f"seq={spec.seq_len}, scale={args.scale}")
    tuner = MistTuner(
        model, cluster, seq_len=spec.seq_len, flash=spec.flash,
        space=scale.apply(SPACE_MIST),
        interference=calibrated_interference(not cluster.gpu.has_nvlink),
        max_pareto_points=scale.max_pareto_points,
        max_gacc_candidates=scale.max_gacc_candidates,
    )
    tuning = tuner.tune(spec.global_batch, verbose=args.verbose)
    if tuning.best_plan is None:
        print("no feasible plan found")
        return 1
    print(f"\nevaluated {tuning.configurations_evaluated} configurations "
          f"in {tuning.tuning_time_seconds:.1f}s")
    print(tuning.best_plan.describe())

    engine = ExecutionEngine(cluster, system="mist")
    try:
        result = engine.run(tuning.best_plan, model, seq_len=spec.seq_len,
                            flash=spec.flash)
    except OOMError as exc:
        print(f"tuned plan OOMs at execution: {exc}")
        return 1
    print(f"\n{result.describe()}")
    if args.timeline:
        print()
        print(render_timeline(result.pipeline, width=100))

    for system in args.compare or ():
        outcome = run_baseline(spec, system)
        if outcome.found:
            ratio = result.throughput / outcome.throughput
            print(f"\n{system}: {outcome.throughput:.2f} samples/s "
                  f"(Mist is {ratio:.2f}x)")
        else:
            print(f"\n{system}: no feasible configuration")
    return 0


def _cmd_analyze(args) -> int:
    spec = _workload(args)
    model = spec.model
    cluster = spec.cluster
    gacc = args.gacc or max(1, spec.global_batch // (args.dp or 1))
    ckpt_all = args.ckpt == "full"
    try:
        plan = uniform_plan(
            model, cluster, global_batch=spec.global_batch, gacc=gacc,
            num_stages=args.stages, dp=args.dp, tp=args.tp,
            zero=args.zero, ckpt_all=ckpt_all,
            oo=args.oo, ao=args.ao,
        )
    except Exception as exc:
        print(f"invalid configuration: {exc}")
        return 1
    engine = ExecutionEngine(cluster, system="mist")
    try:
        result = engine.run(plan, model, seq_len=spec.seq_len,
                            flash=spec.flash)
    except OOMError as exc:
        print(f"OOM: {exc}")
        return 1
    print(plan.describe())
    print(result.describe())
    if args.timeline:
        print()
        print(render_timeline(result.pipeline, width=100))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mist reproduction: distributed-training auto-tuning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_models = sub.add_parser("models", help="list model configurations")
    p_models.set_defaults(func=_cmd_models)

    p_tune = sub.add_parser("tune", help="auto-tune a training plan")
    _add_workload_args(p_tune)
    p_tune.add_argument("--scale", choices=sorted(SCALES), default="quick")
    p_tune.add_argument("--compare", nargs="*", metavar="SYSTEM",
                        help="baselines to compare against "
                             "(megatron, deepspeed, aceso)")
    p_tune.add_argument("--timeline", action="store_true",
                        help="render the executed 1F1B timeline")
    p_tune.add_argument("--verbose", action="store_true")
    p_tune.set_defaults(func=_cmd_tune)

    p_an = sub.add_parser("analyze",
                          help="execute one explicit configuration")
    _add_workload_args(p_an)
    p_an.add_argument("--stages", type=int, default=1)
    p_an.add_argument("--dp", type=int, default=1)
    p_an.add_argument("--tp", type=int, default=1)
    p_an.add_argument("--gacc", type=int, default=None)
    p_an.add_argument("--zero", type=int, default=0, choices=(0, 1, 2, 3))
    p_an.add_argument("--ckpt", choices=("none", "full"), default="none")
    p_an.add_argument("--oo", type=float, default=0.0)
    p_an.add_argument("--ao", type=float, default=0.0)
    p_an.add_argument("--timeline", action="store_true")
    p_an.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
