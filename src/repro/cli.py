"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands:

* ``tune``     — solve one workload through the solver registry, print
  the plan and measured throughput; ``--compare`` runs any other
  registered solvers on the same job; ``--cluster file.json`` tunes an
  explicit (possibly heterogeneous, mixed-GPU) cluster.
* ``replan``   — elastic re-tuning: apply a ``ClusterDelta`` JSON
  (nodes added/removed, a device group resized or retyped, a link
  degraded) to a job's cluster and re-tune warm-started from the
  incumbent plan — bit-identical to a cold search of the changed
  cluster, at a fraction of the configurations evaluated.
* ``sweep``    — run several solvers across a grid of model sizes and
  print the normalized-throughput table (Figs. 11/12 style); a thin
  wrapper over the campaign engine (``--executor process-pool``
  parallelizes the grid).
* ``campaign`` — the full evaluation-campaign surface: ``run`` a
  declarative JSON campaign spec through a chosen executor (``inline``,
  ``process-pool``, ``service``) with a resumable on-disk manifest
  (``--dir`` + ``--resume``), ``status`` a manifest, and re-``report``
  its aggregated speedup table (see ``docs/API.md``).
* ``cluster``  — inspect/validate a cluster description file: device
  groups, per-GPU memory budgets, link bandwidths.
* ``serve``    — start the tuning-as-a-service HTTP daemon (job
  submission, request coalescing, shared plan cache, thread- or
  process-backed solver workers, admission control; see
  ``docs/SERVICE.md``).
* ``load``     — replay a synthetic campaign-cell trace against a
  daemon (closed- or open-loop), write the schema'd ``repro-load/1``
  report, and gate error rates + p99 latency against a committed
  baseline (see ``docs/SERVICE.md``).
* ``bench``    — run the perf-benchmark suite at a chosen scale, write
  the schema'd ``BENCH_4.json`` snapshot, and gate the pruned search
  against the exhaustive reference, the vectorized cost-model engine
  against the interpreted reference (plan bit-identity + minimum
  speedup), and (optionally) a committed baseline (see
  ``docs/BENCHMARKS.md``).
* ``solvers``  — list the registered solver backends.
* ``models``   — list available model configurations.
* ``analyze``  — predict time/memory for an explicit configuration.
* ``check``    — run the AST-based invariant checker (determinism,
  serialization contracts, async-safety, lock discipline, registry
  discipline) over the tree; see ``docs/CHECKS.md``.

Examples::

    python -m repro tune --model gpt3-6.7b --gpu L4 --gpus 8 \
        --global-batch 128 --seq-len 2048 --compare megatron deepspeed
    python -m repro tune --model gpt3-2.7b --global-batch 64 \
        --cluster examples/mixed_a100_l4.json --solver mist
    python -m repro cluster examples/mixed_a100_l4.json
    python -m repro sweep --gpu L4 --sizes 1.3b 2.7b --solvers mist megatron
    python -m repro campaign run grid.json --dir runs/grid \
        --executor process-pool --workers 4
    python -m repro campaign run grid.json --dir runs/grid --resume
    python -m repro analyze --model gpt3-2.7b --gpu L4 --gpus 4 \
        --global-batch 8 --seq-len 4096 --stages 2 --dp 2 --ckpt full

Full documentation lives in ``docs/`` (ARCHITECTURE.md, API.md,
PAPER_MAPPING.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.api import (
    JobValidationError,
    PlanCache,
    SolverNotFoundError,
    TuningJob,
    solve,
    solver_registry,
)
from repro.api import replan as api_replan
from repro.benchmarking.artifacts import (
    BENCH_ARTIFACT,
    BENCH_BASELINE,
    LOAD_ARTIFACT,
)
from repro.core.plan import uniform_plan
from repro.core.spaces import NAMED_SPACES
from repro.evaluation.reporting import format_throughput_rows
from repro.evaluation.workloads import SCALES, WorkloadSpec
from repro.execution import ExecutionEngine, OOMError, render_timeline
from repro.hardware import (
    ClusterDelta,
    DeltaError,
    HeterogeneousCluster,
    cluster_to_dict,
    load_cluster,
)
from repro.models import get_model, list_models
from repro.symbolic import ENGINES

__all__ = ["main"]


def _add_workload_args(parser: argparse.ArgumentParser, *,
                       gpus_required: bool = True) -> None:
    parser.add_argument("--model", required=True,
                        help="model spec, e.g. gpt3-2.7b (see 'models')")
    parser.add_argument("--gpu", default=None,
                        help="GPU type: L4 (default), A100-40GB, "
                             "A100-80GB, H100-80GB")
    parser.add_argument("--gpus", type=int, required=gpus_required,
                        default=None, help="total GPU count")
    parser.add_argument("--global-batch", type=int, required=True)
    parser.add_argument("--seq-len", type=int, default=2048)
    parser.add_argument("--no-flash", action="store_true",
                        help="disable FlashAttention")


def _add_solver_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick",
                        help="search-grid resolution preset")
    parser.add_argument("--space", choices=sorted(NAMED_SPACES),
                        default="mist", help="search space for auto-tuners")
    parser.add_argument("--parallelism", type=int, default=1,
                        help="worker threads for the (S, G) search "
                             "(0 = one per core)")
    parser.add_argument("--engine", choices=sorted(ENGINES),
                        default="vectorized",
                        help="cost-model evaluation engine: 'vectorized' "
                             "compiled numpy closures (default) or the "
                             "per-config 'interpreted' reference path "
                             "(slow; bit-identical plans)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="reuse/store solved plans in this directory")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the solve report(s) as JSON")


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", default="inline",
                        choices=("inline", "process-pool", "service"),
                        help="campaign executor (see 'docs/API.md')")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for --executor process-pool")
    parser.add_argument("--service-url", metavar="URL", default=None,
                        help="live 'repro serve' daemon for "
                             "--executor service")
    parser.add_argument("--service-timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="fail remaining cells after this long with "
                             "no cell completing (--executor service)")


def _job(args) -> TuningJob:
    common = dict(
        model=args.model, global_batch=args.global_batch,
        seq_len=args.seq_len, flash=not args.no_flash,
        space=args.space, scale=args.scale,
        parallelism=args.parallelism,
        engine=getattr(args, "engine", "vectorized"),
    )
    cluster_file = getattr(args, "cluster", None)
    if cluster_file:
        if args.gpu is not None:
            raise JobValidationError(
                "--gpu conflicts with --cluster "
                "(GPU types come from the cluster file)"
            )
        cluster = load_cluster(cluster_file)
        if args.gpus is not None and args.gpus != cluster.total_gpus:
            raise JobValidationError(
                f"--gpus {args.gpus} contradicts --cluster "
                f"({cluster.total_gpus} GPUs in {cluster_file})"
            )
        return TuningJob.for_cluster(cluster, **common)
    if args.gpus is None:
        raise JobValidationError("--gpus is required without --cluster")
    return TuningJob(gpu=args.gpu or "L4", num_gpus=args.gpus, **common)


def _cache(args) -> PlanCache | None:
    return PlanCache(args.cache_dir) if args.cache_dir else None


def _write_json(path: str, reports: list) -> None:
    payload = [report.to_dict() for report in reports]
    with open(path, "w") as fh:
        json.dump(payload[0] if len(payload) == 1 else payload, fh,
                  sort_keys=True, indent=2)
    print(f"wrote {path}")


def _cmd_models(_args) -> int:
    for spec in list_models():
        model = get_model(spec)
        print(f"{spec:14s} {model.total_params / 1e9:6.1f}B params  "
              f"{model.num_layers} layers x {model.hidden_size} hidden")
    return 0


def _cmd_solvers(_args) -> int:
    for name, cls in sorted(solver_registry().items()):
        doc = (cls.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:12s} {summary}")
    return 0


def _cmd_tune(args) -> int:
    try:
        job = _job(args)
    except (JobValidationError, OSError, TypeError, ValueError,
            KeyError) as exc:
        detail = exc.args[0] if exc.args else exc
        print(f"invalid job: {detail}")
        return 2
    cache = _cache(args)
    cluster = job.resolved_cluster()
    where = (cluster.name if isinstance(cluster, HeterogeneousCluster)
             else f"{job.gpu} x {job.num_gpus}")
    print(f"tuning {job.model} on {where}, "
          f"B={job.global_batch}, seq={job.seq_len}, scale={args.scale}, "
          f"solver={args.solver}")
    try:
        report = solve(job, args.solver, cache=cache)
    except SolverNotFoundError as exc:
        print(exc.args[0])
        return 2
    # infeasible/OOM reports serialize fine — always honor --json once
    # the primary solve has produced a report
    reports = [report]

    def _finish(code: int) -> int:
        if args.json:
            _write_json(args.json, reports)
        return code

    if report.plan is None:
        print("no feasible plan found")
        return _finish(1)
    origin = " (cached)" if report.from_cache else ""
    print(f"\nevaluated {report.configurations_evaluated} configurations "
          f"in {report.tuning_time_seconds:.1f}s{origin}")
    print(report.plan.describe())
    if not report.measured:
        print("tuned plan OOMs at execution")
        return _finish(1)
    print(f"\nmeasured: {report.measured['iteration_time'] * 1e3:.1f} ms "
          f"/ {report.throughput:.2f} samples/s")
    if args.timeline:
        if report.result is not None:
            print()
            print(render_timeline(report.result.pipeline, width=100))
        else:
            print("(timeline unavailable for cached reports)")

    for system in args.compare or ():
        try:
            outcome = solve(job, system, cache=cache)
        except SolverNotFoundError as exc:
            print(f"\n{exc.args[0]}")
            return _finish(2)
        reports.append(outcome)
        if outcome.found and outcome.throughput > 0:
            ratio = report.throughput / outcome.throughput
            print(f"\n{system}: {outcome.throughput:.2f} samples/s "
                  f"({args.solver} is {ratio:.2f}x)")
        else:
            print(f"\n{system}: no feasible configuration")
    return _finish(0)


def _cmd_replan(args) -> int:
    try:
        job = _job(args)
    except (JobValidationError, OSError, TypeError, ValueError,
            KeyError) as exc:
        detail = exc.args[0] if exc.args else exc
        print(f"invalid job: {detail}")
        return 2
    try:
        delta = ClusterDelta.from_json(Path(args.delta).read_text())
    except (OSError, TypeError, ValueError, KeyError) as exc:
        detail = exc.args[0] if exc.args else exc
        print(f"invalid delta file: {detail}")
        return 2
    incumbent = None
    if args.incumbent:
        from repro.api import SolveReport

        try:
            incumbent = SolveReport.from_json(
                Path(args.incumbent).read_text())
        except (OSError, TypeError, ValueError, KeyError) as exc:
            detail = exc.args[0] if exc.args else exc
            print(f"invalid incumbent report: {detail}")
            return 2
    cache = _cache(args)
    print(f"replanning {job.model} after {delta.describe()}, "
          f"scale={args.scale}, solver={args.solver}")
    try:
        report = api_replan(job, delta, args.solver, cache=cache,
                            incumbent=incumbent)
    except SolverNotFoundError as exc:
        print(exc.args[0])
        return 2
    except (DeltaError, JobValidationError) as exc:
        # the delta doesn't fit this cluster, or the post-delta job
        # fails validation
        print(exc.args[0] if exc.args else exc)
        return 2
    reports = [report]

    def _finish(code: int) -> int:
        if args.json:
            _write_json(args.json, reports)
        return code

    prov = report.extra.get("replan", {})
    mode = "warm-started" if prov.get("warm") else "cold (no incumbent)"
    origin = " (cached)" if report.from_cache else ""
    print(f"{mode} replan, incumbent source: {prov.get('incumbent')}")
    print(f"evaluated {report.configurations_evaluated} configurations "
          f"in {report.tuning_time_seconds:.1f}s{origin}")
    if report.plan is None:
        print("no feasible plan found on the changed cluster")
        return _finish(1)
    print(report.plan.describe())
    if report.measured:
        print(f"\nmeasured: "
              f"{report.measured['iteration_time'] * 1e3:.1f} ms "
              f"/ {report.throughput:.2f} samples/s")
    return _finish(0)


#: per-cell report-source -> suffix on the progress line
_CELL_ORIGINS = {"cache": " (cached)", "manifest": " (manifest)"}


def _print_cell_event(record: dict):
    """Shared per-cell progress line for ``sweep`` / ``campaign run``."""
    if record["status"] != "done":
        print(f"{record['workload']} / {record['solver']}: "
              f"failed ({record.get('error') or 'no detail'})")
        return
    origin = _CELL_ORIGINS.get(record.get("source") or "", "")
    print(f"{record['workload']} / {record['solver']}: "
          f"{record['throughput']:.2f} samples/s "
          f"({record['tuning_time_seconds']:.1f}s tuning{origin})")


def _executor_options(args) -> dict:
    if args.executor == "process-pool":
        return {"workers": args.workers}
    if args.executor == "service":
        return {"url": args.service_url, "timeout": args.service_timeout}
    return {}


def _cmd_sweep(args) -> int:
    # the sweep is one paper-grid campaign; everything below is
    # presentation (see repro.campaigns for the machinery)
    from repro.campaigns import (
        CampaignSpec,
        CampaignValidationError,
        ExecutorNotFoundError,
        run_campaign,
    )

    reference = args.reference or args.solvers[0]
    if reference not in args.solvers:
        print(f"--reference {reference!r} is not among the requested "
              f"solvers {args.solvers}")
        return 2
    if args.executor == "service" and not args.service_url:
        print("--executor service requires --service-url")
        return 2
    try:
        spec = CampaignSpec(
            name=f"sweep-{args.gpu}-{args.family}",
            solvers=tuple(args.solvers),
            family=args.family,
            sizes=tuple(args.sizes),
            clusters=({"gpu": args.gpu},),
            scales=(args.scale,),
            seq_lens=(args.seq_len,) if args.seq_len else (),
            global_batches=(args.global_batch,) if args.global_batch else (),
            flash=not args.no_flash,
            space=args.space,
            parallelism=args.parallelism,
            reference=reference,
        )
    except CampaignValidationError as exc:
        print(exc.args[0])
        return 2
    reports_by_cell: dict[str, object] = {}

    def on_event(record, report):
        _print_cell_event(record)
        if report is not None:
            reports_by_cell[record["cell_id"]] = report

    try:
        outcome = run_campaign(
            spec, executor=args.executor,
            executor_options=_executor_options(args),
            cache=_cache(args), on_event=on_event,
        )
    except (CampaignValidationError, ExecutorNotFoundError,
            SolverNotFoundError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc)
        return 2
    print()
    # table + JSON follow the deterministic expansion order of the
    # aggregated report, not executor completion order
    print(format_throughput_rows(
        f"sweep on {args.gpu} ({args.family}, scale={args.scale})",
        outcome.results(), reference,
    ))
    if args.json:
        reports = [reports_by_cell[rec["cell_id"]] for rec in outcome.cells
                   if rec["cell_id"] in reports_by_cell]
        _write_json(args.json, reports)
    return 0 if outcome.counters["failed"] == 0 else 1


def _cmd_campaign_run(args) -> int:
    from repro.campaigns import (
        CampaignError,
        CampaignSpec,
        CampaignValidationError,
        ExecutorNotFoundError,
        run_campaign,
    )

    try:
        spec = CampaignSpec.from_json(Path(args.spec).read_text())
    except (OSError, TypeError, ValueError, KeyError) as exc:
        detail = exc.args[0] if exc.args else exc
        print(f"invalid campaign spec: {detail}")
        return 2
    if args.resume and not args.dir:
        print("--resume requires --dir (the campaign directory)")
        return 2
    if args.executor == "service" and not args.service_url:
        print("--executor service requires --service-url")
        return 2
    print(f"campaign {spec.name}: executor={args.executor}"
          + (f", dir={args.dir}" if args.dir else "")
          + (" (resume)" if args.resume else ""))
    try:
        report = run_campaign(
            spec, executor=args.executor,
            executor_options=_executor_options(args),
            directory=args.dir, cache=_cache(args), resume=args.resume,
            on_event=lambda record, _report: _print_cell_event(record),
        )
    except (CampaignError, CampaignValidationError, ExecutorNotFoundError,
            SolverNotFoundError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc)
        return 2
    print()
    print(report.describe())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0 if report.complete else 1


def _load_manifest(directory: str):
    from repro.campaigns import CampaignManifest

    manifest = CampaignManifest(directory)
    if not manifest.load():
        print(f"no readable campaign manifest in {directory}")
        return None
    return manifest


def _manifest_report(manifest):
    """Rebuild the aggregated report from an on-disk manifest."""
    from repro.campaigns import CampaignSpec, aggregate, pending_cell_record

    spec = (CampaignSpec.from_dict(manifest.spec_dict)
            if manifest.spec_dict else None)
    recorded = {rec["cell_id"]: rec for rec in manifest.cells()}
    cells = list(recorded.values())
    if spec is not None:
        # expansion gives the full matrix, so unfinished cells show as
        # pending; solvers may be unregistered in this process
        try:
            expanded = spec.expand(check_solvers=False)
            cells = [recorded.get(cell.cell_id)
                     or pending_cell_record(cell)
                     for cell in expanded]
        except (KeyError, TypeError, ValueError):
            # malformed/foreign spec dict — fall back to recorded cells
            pass
    return aggregate(spec, cells, executor="manifest")


def _cmd_campaign_status(args) -> int:
    manifest = _load_manifest(args.dir)
    if manifest is None:
        return 2
    report = _manifest_report(manifest)
    if args.json:
        print(json.dumps({"name": manifest.name,
                          "fingerprint": manifest.fingerprint,
                          "counters": report.counters},
                         sort_keys=True, indent=2))
        return 0
    c = report.counters
    print(f"campaign {manifest.name} ({manifest.fingerprint})")
    print(f"  cells: {c['done']}/{c['cells']} done, "
          f"{c['failed']} failed, {c['pending']} pending")
    print(f"  sources: {c['solved']} solved, {c['cache_hits']} cache, "
          f"{c['manifest_hits']} manifest")
    events = manifest.events()
    if events:
        last = events[-1]
        print(f"  last event: {last.get('event')} "
              f"({last.get('cell_id') or last.get('name') or ''})")
    return 0


def _cmd_campaign_report(args) -> int:
    manifest = _load_manifest(args.dir)
    if manifest is None:
        return 2
    report = _manifest_report(manifest)
    print(report.describe())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_cluster(args) -> int:
    try:
        cluster = load_cluster(args.file)
    except (OSError, TypeError, ValueError, KeyError) as exc:
        detail = exc.args[0] if exc.args else exc
        print(f"invalid cluster file: {detail}")
        return 2
    if args.json:
        print(json.dumps(cluster_to_dict(cluster), sort_keys=True, indent=2))
        return 0
    # tuner-visible budget: what intra-stage tuning bounds peak memory by
    from repro.core.analyzer import memory_budget_bytes

    def budget(gpu) -> float:
        return memory_budget_bytes(gpu) / 2**30

    if isinstance(cluster, HeterogeneousCluster):
        print(cluster.describe())
        for group in cluster.groups:
            print(f"  {group.name}: tuner memory budget "
                  f"{budget(group.gpu):.1f} GiB/GPU")
        fallback = cluster.fallback_homogeneous()
        print(f"  baseline fallback view: {fallback.name}")
    else:
        print(f"homogeneous cluster: {cluster.name} "
              f"({cluster.total_gpus} GPUs)")
        gpu = cluster.gpu
        fabric = (f"NVLink {gpu.nvlink_bandwidth / 1e9:.0f} GB/s"
                  if gpu.has_nvlink else "PCIe only")
        print(f"  {gpu.name}: mem {gpu.memory_gb:.0f} GB  {fabric}  "
              f"net {cluster.inter_node_bandwidth * 8 / 1e9:.0f} Gbps")
        print(f"  tuner memory budget {budget(gpu):.1f} GiB/GPU")
    return 0


def _cmd_bench(args) -> int:
    # imported here: the bench harness is only needed by this command
    from repro.benchmarking import format_bench, run_bench
    from repro.benchmarking.bench import main_check

    print(f"running bench suite at scale {args.scale!r} "
          f"(exhaustive reference: "
          f"{'off' if args.no_exhaustive else 'on'}, "
          f"interpreted engine: "
          f"{'off' if args.no_interpreted else 'on'}, "
          f"replan suite: "
          f"{'off' if args.no_replan else 'on'}) ...")
    result = run_bench(args.scale,
                       include_exhaustive=not args.no_exhaustive,
                       include_interpreted=not args.no_interpreted,
                       include_replan=not args.no_replan)
    print(format_bench(result))
    with open(args.out, "w") as fh:
        json.dump(result, fh, sort_keys=True, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}")
            return 2
    if args.no_exhaustive and args.no_interpreted and args.no_replan \
            and baseline is None:
        return 0  # timing-only run: no gates to apply
    return main_check(result, baseline,
                      max_regression=args.max_regression,
                      min_engine_speedup=(0.0 if args.no_interpreted
                                          else args.min_engine_speedup),
                      min_warm_speedup=(0.0 if args.no_replan
                                        else args.min_warm_speedup))


def _cmd_serve(args) -> int:
    # imported here: the service pulls in asyncio plumbing no other
    # subcommand needs
    from repro.service import TuningService

    # PlanCache(None) resolves to $REPRO_PLAN_CACHE / ~/.cache/repro/plans
    service = TuningService(host=args.host, port=args.port,
                            workers=args.workers,
                            worker_mode=args.worker_mode,
                            max_pending=args.max_pending,
                            quota=args.quota,
                            worker_retries=args.worker_retries,
                            cache=PlanCache(args.cache_dir))
    service.serve_forever()
    return 0


def _cmd_load(args) -> int:
    # imported here: the load harness is only needed by this command
    import dataclasses as _dc
    import tempfile

    from repro.loadgen import (TRACE_SCALES, format_load, run_load,
                               synthesize_trace)
    from repro.loadgen.report import main_check as load_check

    spec = TRACE_SCALES[args.scale]
    overrides = {}
    if args.requests is not None:
        overrides["requests"] = args.requests
    if args.unique_jobs is not None:
        overrides["unique_jobs"] = args.unique_jobs
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        spec = _dc.replace(spec, **overrides)
    trace = synthesize_trace(spec)
    if args.url:
        result = run_load(args.url, spec, trace, mode=args.mode,
                          concurrency=args.concurrency,
                          timeout=args.timeout)
    elif args.spawn:
        from repro.service.launch import spawn_daemon

        extra = []
        if args.spawn_max_pending:
            extra += ["--max-pending", str(args.spawn_max_pending)]
        # throwaway cache: measured latencies must come from this run,
        # not a previously warmed user-level plan cache
        with tempfile.TemporaryDirectory(prefix="repro-load-") as cache_dir:
            with spawn_daemon(workers=args.spawn_workers,
                              worker_mode=args.spawn_worker_mode,
                              cache_dir=cache_dir,
                              extra_args=extra) as daemon:
                print(f"spawned daemon at {daemon.url} "
                      f"({args.spawn_workers} {args.spawn_worker_mode} "
                      f"workers)")
                result = run_load(daemon.url, spec, trace, mode=args.mode,
                                  concurrency=args.concurrency,
                                  timeout=args.timeout)
    else:
        print("error: need --url URL or --spawn", file=sys.stderr)
        return 2
    print(format_load(result))
    with open(args.out, "w") as fh:
        json.dump(result, fh, sort_keys=True, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}")
            return 2
    return load_check(result, baseline,
                      max_regression=args.max_regression)


def _cmd_analyze(args) -> int:
    spec = WorkloadSpec(
        model_spec=args.model, gpu_name=args.gpu or "L4",
        num_gpus=args.gpus, global_batch=args.global_batch,
        seq_len=args.seq_len, flash=not args.no_flash,
    )
    model = spec.model
    cluster = spec.cluster
    gacc = args.gacc or max(1, args.global_batch // (args.dp or 1))
    ckpt_all = args.ckpt == "full"
    try:
        plan = uniform_plan(
            model, cluster, global_batch=args.global_batch, gacc=gacc,
            num_stages=args.stages, dp=args.dp, tp=args.tp,
            zero=args.zero, ckpt_all=ckpt_all,
            oo=args.oo, ao=args.ao,
        )
    except (ValueError, ZeroDivisionError) as exc:
        # uniform_plan raises PlanValidationError (a ValueError) on an
        # infeasible configuration; degenerate shapes divide by zero
        print(f"invalid configuration: {exc}")
        return 1
    engine = ExecutionEngine(cluster, system="mist")
    try:
        result = engine.run(plan, model, seq_len=args.seq_len,
                            flash=not args.no_flash)
    except OOMError as exc:
        print(f"OOM: {exc}")
        return 1
    print(plan.describe())
    print(result.describe())
    if args.timeline:
        print()
        print(render_timeline(result.pipeline, width=100))
    return 0


def _cmd_check(args) -> int:
    from repro.analysis import RuleNotFoundError, rule_registry, run_check

    registry = rule_registry()
    if args.list_rules:
        for name in sorted(registry):
            doc = (registry[name].__doc__ or "").strip().splitlines()
            print(f"{name:22s} {doc[0] if doc else ''}")
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)} — "
              "refusing to silently check nothing", file=sys.stderr)
        return 2
    try:
        result = run_check(args.paths, rules=args.rule or None)
    except RuleNotFoundError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        from repro.analysis.sarif import to_sarif
        print(json.dumps(to_sarif(result), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.format())
        print(f"repro check: {len(result.findings)} finding(s) in "
              f"{result.module_count} module(s) "
              f"[rules: {', '.join(result.rules)}]")
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mist reproduction: distributed-training auto-tuning",
        epilog="Docs: docs/ARCHITECTURE.md (layer map), docs/API.md "
               "(solver API + cluster schema), docs/PAPER_MAPPING.md "
               "(paper section/figure -> code map).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_models = sub.add_parser("models", help="list model configurations")
    p_models.set_defaults(func=_cmd_models)

    p_solvers = sub.add_parser("solvers",
                               help="list registered solver backends")
    p_solvers.set_defaults(func=_cmd_solvers)

    p_tune = sub.add_parser("tune", help="auto-tune a training plan")
    _add_workload_args(p_tune, gpus_required=False)
    _add_solver_args(p_tune)
    p_tune.add_argument("--cluster", metavar="FILE", default=None,
                        help="cluster description JSON (heterogeneous or "
                             "homogeneous; see 'repro cluster' and "
                             "docs/API.md); replaces --gpu/--gpus")
    p_tune.add_argument("--solver", default="mist",
                        help="registered solver to tune with "
                             "(see 'solvers')")
    p_tune.add_argument("--compare", nargs="*", metavar="SYSTEM",
                        help="other registered solvers to run on the "
                             "same job")
    p_tune.add_argument("--timeline", action="store_true",
                        help="render the executed 1F1B timeline")
    p_tune.set_defaults(func=_cmd_tune)

    p_replan = sub.add_parser(
        "replan", help="re-tune a job after a cluster change "
                       "(warm-started from the incumbent plan)")
    _add_workload_args(p_replan, gpus_required=False)
    _add_solver_args(p_replan)
    p_replan.add_argument("--cluster", metavar="FILE", default=None,
                          help="pre-delta cluster description JSON; "
                               "replaces --gpu/--gpus")
    p_replan.add_argument("--delta", metavar="FILE", required=True,
                          help='ClusterDelta JSON ({"ops": [...]}; '
                               "see docs/API.md)")
    p_replan.add_argument("--solver", default="mist",
                          help="registered solver (warm-starting needs "
                               "'mist'; others re-tune cold)")
    p_replan.add_argument("--incumbent", metavar="FILE", default=None,
                          help="solve-report JSON carrying the incumbent "
                               "plan (e.g. from 'repro tune --json'); "
                               "default: the --cache-dir entry for the "
                               "pre-delta job")
    p_replan.set_defaults(func=_cmd_replan)

    p_cluster = sub.add_parser(
        "cluster", help="inspect/validate a cluster description file")
    p_cluster.add_argument("file", help="cluster JSON "
                                        "(e.g. examples/mixed_a100_l4.json)")
    p_cluster.add_argument("--json", action="store_true",
                           help="print the normalized cluster dict")
    p_cluster.set_defaults(func=_cmd_cluster)

    p_sweep = sub.add_parser(
        "sweep", help="run solvers across a grid of model sizes")
    p_sweep.add_argument("--gpu", default="L4")
    p_sweep.add_argument("--family", default="gpt3")
    p_sweep.add_argument("--sizes", nargs="+",
                         default=["1.3b", "2.7b", "6.7b", "13b", "22b"],
                         help="model sizes (GPU count/batch follow the "
                              "paper's Table 4 scaling rule)")
    p_sweep.add_argument("--solvers", nargs="+",
                         default=["megatron", "deepspeed", "mist"],
                         metavar="SOLVER")
    p_sweep.add_argument("--reference", default=None,
                         help="normalization baseline "
                              "(default: first solver)")
    p_sweep.add_argument("--seq-len", type=int, default=None,
                         help="override the per-GPU-type sequence length")
    p_sweep.add_argument("--global-batch", type=int, default=None,
                         help="override the per-size global batch")
    p_sweep.add_argument("--no-flash", action="store_true")
    _add_solver_args(p_sweep)
    _add_executor_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_camp = sub.add_parser(
        "campaign",
        help="run/inspect declarative evaluation campaigns")
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    p_run = camp_sub.add_parser(
        "run", help="run (or resume) a campaign spec JSON file")
    p_run.add_argument("spec", help="campaign spec JSON "
                                    "(CampaignSpec schema, see docs/API.md)")
    p_run.add_argument("--dir", metavar="DIR", default=None,
                       help="campaign directory: resumable manifest, "
                            "events.jsonl, plans/ cache, report.json")
    p_run.add_argument("--resume", action="store_true",
                       help="reuse finished cells from the manifest + "
                            "plan cache; only missing/failed cells run")
    p_run.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="explicit plan-cache directory "
                            "(default: <dir>/plans)")
    p_run.add_argument("--json", metavar="FILE", default=None,
                       help="write the aggregated CampaignReport as JSON")
    _add_executor_args(p_run)
    p_run.set_defaults(func=_cmd_campaign_run)

    p_status = camp_sub.add_parser(
        "status", help="summarize a campaign directory's manifest")
    p_status.add_argument("--dir", metavar="DIR", required=True)
    p_status.add_argument("--json", action="store_true",
                          help="print the counters as JSON")
    p_status.set_defaults(func=_cmd_campaign_status)

    p_report = camp_sub.add_parser(
        "report", help="re-aggregate a campaign directory into a report")
    p_report.add_argument("--dir", metavar="DIR", required=True)
    p_report.add_argument("--json", metavar="FILE", default=None,
                          help="write the CampaignReport as JSON")
    p_report.set_defaults(func=_cmd_campaign_report)

    p_bench = sub.add_parser(
        "bench", help="run the perf benchmark suite, emit BENCH_4.json")
    p_bench.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                         help="benchmark scale preset (default: smoke)")
    p_bench.add_argument("--out", metavar="FILE", default=BENCH_ARTIFACT,
                         help=f"snapshot output path "
                              f"(default: {BENCH_ARTIFACT})")
    p_bench.add_argument("--baseline", metavar="FILE", default=None,
                         help="committed baseline snapshot to gate "
                              f"wall-time against (CI uses "
                              f"{BENCH_BASELINE})")
    p_bench.add_argument("--max-regression", type=float, default=0.25,
                         help="tolerated fractional wall-time regression "
                              "vs the baseline (default: 0.25)")
    p_bench.add_argument("--no-exhaustive", action="store_true",
                         help="skip the exhaustive reference pass "
                              "(timing-only; disables the plan-hash gate)")
    p_bench.add_argument("--no-interpreted", action="store_true",
                         help="skip the interpreted-engine pass "
                              "(disables the vectorized-vs-interpreted "
                              "comparison and its speedup gate)")
    p_bench.add_argument("--min-engine-speedup", type=float, default=2.0,
                         metavar="FACTOR",
                         help="fail unless the vectorized engine beats "
                              "the interpreted reference by this factor "
                              "(default: 2.0; 0 disables)")
    p_bench.add_argument("--no-replan", action="store_true",
                         help="skip the warm-vs-cold replan suite "
                              "(disables its bit-identity and speedup "
                              "gates)")
    p_bench.add_argument("--min-warm-speedup", type=float, default=2.0,
                         metavar="FACTOR",
                         help="fail unless warm replans beat cold "
                              "searches by this factor (geometric mean "
                              "of per-scenario configurations-evaluated "
                              "ratios; default: 2.0; 0 disables)")
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="start the tuning-as-a-service HTTP daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port (0 = ephemeral; the chosen "
                              "port is printed on startup)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="solver workers (threads or processes, "
                              "per --worker-mode)")
    p_serve.add_argument("--worker-mode", choices=("thread", "process"),
                         default="thread",
                         help="run searches on pool threads (GIL-bound) "
                              "or fingerprint-routed worker processes "
                              "(default: thread)")
    p_serve.add_argument("--max-pending", type=int, default=0,
                         help="admission control: max concurrently "
                              "pending searches before new submissions "
                              "get 429 (default: 0 = unbounded)")
    p_serve.add_argument("--quota", type=int, default=0,
                         help="admission control: max unresolved jobs "
                              "per client (X-Repro-Client header; "
                              "default: 0 = unlimited)")
    p_serve.add_argument("--worker-retries", type=int, default=1,
                         help="process mode: retries after a worker "
                              "process dies mid-search (default: 1)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="shared plan-cache directory "
                              "(default: $REPRO_PLAN_CACHE or "
                              "~/.cache/repro/plans)")
    p_serve.set_defaults(func=_cmd_serve)

    p_load = sub.add_parser(
        "load", help="trace-driven load generator against a daemon, "
                     "emits a repro-load/1 report")
    p_load.add_argument("--scale", default="smoke",
                        choices=("smoke", "quick", "synthetic", "soak"),
                        help="trace preset (default: smoke)")
    p_load.add_argument("--url", default=None,
                        help="target a running daemon at this base URL")
    p_load.add_argument("--spawn", action="store_true",
                        help="spawn a throwaway `repro serve` subprocess "
                             "(ephemeral port, temp plan cache) and "
                             "target it")
    p_load.add_argument("--spawn-workers", type=int, default=2,
                        help="workers for the spawned daemon "
                             "(default: 2)")
    p_load.add_argument("--spawn-worker-mode",
                        choices=("thread", "process"), default="thread",
                        help="worker mode for the spawned daemon "
                             "(default: thread)")
    p_load.add_argument("--spawn-max-pending", type=int, default=0,
                        help="admission bound for the spawned daemon "
                             "(default: 0 = unbounded)")
    p_load.add_argument("--mode", choices=("closed", "open"),
                        default="closed",
                        help="closed loop (throughput) or open loop "
                             "(latency at the trace's arrival rate)")
    p_load.add_argument("--concurrency", type=int, default=4,
                        help="closed-loop virtual clients (default: 4)")
    p_load.add_argument("--requests", type=int, default=None,
                        help="override the preset's request count")
    p_load.add_argument("--unique-jobs", type=int, default=None,
                        help="override the preset's distinct-cell count")
    p_load.add_argument("--seed", type=int, default=None,
                        help="override the preset's trace seed")
    p_load.add_argument("--timeout", type=float, default=120.0,
                        help="per-request completion timeout in seconds "
                             "(default: 120)")
    p_load.add_argument("--out", metavar="FILE", default=LOAD_ARTIFACT,
                        help=f"report output path "
                             f"(default: {LOAD_ARTIFACT})")
    p_load.add_argument("--baseline", metavar="FILE", default=None,
                        help="committed baseline report to gate p99 "
                             "latency against")
    p_load.add_argument("--max-regression", type=float, default=0.5,
                        help="tolerated fractional p99 regression vs "
                             "the baseline (default: 0.5)")
    p_load.set_defaults(func=_cmd_load)

    p_an = sub.add_parser("analyze",
                          help="execute one explicit configuration")
    _add_workload_args(p_an)
    p_an.add_argument("--stages", type=int, default=1)
    p_an.add_argument("--dp", type=int, default=1)
    p_an.add_argument("--tp", type=int, default=1)
    p_an.add_argument("--gacc", type=int, default=None)
    p_an.add_argument("--zero", type=int, default=0, choices=(0, 1, 2, 3))
    p_an.add_argument("--ckpt", choices=("none", "full"), default="none")
    p_an.add_argument("--oo", type=float, default=0.0)
    p_an.add_argument("--ao", type=float, default=0.0)
    p_an.add_argument("--timeline", action="store_true")
    p_an.set_defaults(func=_cmd_analyze)

    p_check = sub.add_parser(
        "check", help="run the AST-based invariant checker "
                      "(see docs/CHECKS.md)")
    p_check.add_argument("paths", nargs="*", default=["src"],
                         help="files or directories to analyze "
                              "(default: src)")
    p_check.add_argument("--rule", action="append", metavar="RULE-ID",
                         help="run only this rule (repeatable; "
                              "default: all registered)")
    p_check.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text",
                         help="finding output format (default: text); "
                              "sarif emits a SARIF 2.1.0 log for "
                              "GitHub code scanning")
    p_check.add_argument("--list-rules", action="store_true",
                         help="list registered rules and exit")
    p_check.set_defaults(func=_cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
