"""Mist's core: symbolic analyzer, hierarchical tuner, plans, objectives."""

from .analyzer import (
    FRAMEWORK_OVERHEAD_BYTES,
    PlanPrediction,
    StagePrediction,
    SymbolicPerformanceAnalyzer,
)
from .inter_stage import InterStageSolution, solve, solve_exact, solve_milp
from .intra_stage import IntraStageTuner, ParetoPoint, StageShape
from .objectives import (
    pipeline_iteration_time,
    pipeline_time_average,
    pipeline_time_uniform,
    throughput,
)
from .plan import (
    PlanValidationError,
    StageConfig,
    TrainingPlan,
    uniform_plan,
    zero_flags,
)
from .spaces import (
    INCREMENTAL_SPACES,
    SPACE_3D,
    SPACE_3D_CKPT,
    SPACE_3D_ZERO,
    SPACE_AO,
    SPACE_GO,
    SPACE_MIST,
    SPACE_MIST_NO_IMBALANCE,
    SPACE_OO,
    SPACE_WO,
    SearchSpace,
    log10_configurations,
)
from .tuner import MistTuner, TuningResult

__all__ = [
    "FRAMEWORK_OVERHEAD_BYTES",
    "INCREMENTAL_SPACES",
    "InterStageSolution",
    "IntraStageTuner",
    "MistTuner",
    "ParetoPoint",
    "PlanPrediction",
    "PlanValidationError",
    "SPACE_3D",
    "SPACE_3D_CKPT",
    "SPACE_3D_ZERO",
    "SPACE_AO",
    "SPACE_GO",
    "SPACE_MIST",
    "SPACE_MIST_NO_IMBALANCE",
    "SPACE_OO",
    "SPACE_WO",
    "SearchSpace",
    "StageConfig",
    "StagePrediction",
    "StageShape",
    "SymbolicPerformanceAnalyzer",
    "TrainingPlan",
    "TuningResult",
    "log10_configurations",
    "pipeline_iteration_time",
    "pipeline_time_average",
    "pipeline_time_uniform",
    "throughput",
    "solve",
    "solve_exact",
    "solve_milp",
    "uniform_plan",
    "zero_flags",
]
