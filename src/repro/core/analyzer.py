"""Symbolic performance analyzer (paper Figure 6, Section 5.2).

Compiles the traced stage expressions once into a batched numpy
function over the full symbol vocabulary, then answers configuration
queries by value substitution:

* :meth:`SymbolicPerformanceAnalyzer.predict` — batched: every symbol
  may be a numpy array; returns stable microbatch times, first/last
  microbatch deltas (through the interference model, Eq. 5/6) and peak
  memory per configuration.
* :meth:`SymbolicPerformanceAnalyzer.predict_plan` — convenience for a
  concrete :class:`~repro.core.plan.TrainingPlan`: per-stage
  predictions plus the Eq. 1 iteration time and throughput.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.costmodel.interference import InterferenceModel
from repro.execution.schedule import MIST_IMPL_OVERHEAD
from repro.hardware import ClusterSpec, GPUSpec
from repro.symbolic import CompiledExpr, compile_expr, validate_engine
from repro.tracing import ALL_SYMBOLS, TracedModel
from repro.tracing.memory import FRAMEWORK_OVERHEAD_BYTES
from repro.tracing.symbols import hardware_env

from .objectives import pipeline_iteration_time, throughput
from .plan import TrainingPlan

__all__ = ["SymbolicPerformanceAnalyzer", "StagePrediction", "PlanPrediction",
           "FRAMEWORK_OVERHEAD_BYTES", "MEMORY_SAFETY_MARGIN_BYTES",
           "memory_budget_bytes"]

_ARG_NAMES = tuple(sym.name for sym in ALL_SYMBOLS)

#: extra safety margin the *predictor* keeps on top of the framework
#: overhead — absorbs the engine's whole-layer offload quantization so
#: tuned plans never OOM at execution time
MEMORY_SAFETY_MARGIN_BYTES = 192 * 1024**2


def memory_budget_bytes(gpu: GPUSpec) -> float:
    """Per-GPU byte budget the tuner bounds peak memory by."""
    return (gpu.usable_memory_bytes
            - FRAMEWORK_OVERHEAD_BYTES - MEMORY_SAFETY_MARGIN_BYTES)


@dataclass
class StagePrediction:
    """Batched per-configuration predictions for one stage shape."""

    t_stable: np.ndarray
    delta: np.ndarray
    peak_mem: np.ndarray
    t_first: np.ndarray
    t_last: np.ndarray
    peak_fwd: np.ndarray
    peak_bwd: np.ndarray

    @property
    def t_iteration_contrib(self) -> np.ndarray:  # pragma: no cover - alias
        return self.t_stable


@dataclass
class PlanPrediction:
    """Whole-plan prediction: Eq. 1 applied to per-stage (t, d)."""

    iteration_time: float
    throughput: float
    stage_t: np.ndarray
    stage_d: np.ndarray
    stage_peak_mem: np.ndarray
    fits_memory: bool
    memory_budget: float


class SymbolicPerformanceAnalyzer:
    """One-time compilation, many cheap configuration queries.

    ``gpu`` pins the device whose memory bounds the stages this
    analyzer prices — by default the cluster's GPU, but heterogeneous
    tuning builds one analyzer per
    :class:`~repro.hardware.topology.DeviceGroup` and passes that
    group's :class:`~repro.hardware.gpu.GPUSpec` explicitly.
    """

    def __init__(self, traced: TracedModel, cluster: ClusterSpec,
                 interference: InterferenceModel | None = None, *,
                 gpu: GPUSpec | None = None):
        gpu = gpu if gpu is not None else cluster.gpu
        if traced.gpu.name != gpu.name:
            raise ValueError(
                f"traced model priced for {traced.gpu.name}, analyzer "
                f"device is {gpu.name}"
            )
        self.traced = traced
        self.cluster = cluster
        self.gpu = gpu
        self.interference = interference or InterferenceModel.default(
            pcie_only=not gpu.has_nvlink
        )
        rt, mem = traced.runtime, traced.memory
        # Channel mapping mirrors the execution schedule: TP all-reduces
        # serialize with compute (dependent kernels wait on them), so
        # they live in the compute channel; the NCCL channel carries the
        # overlappable DP collectives and pipeline p2p. Forward and
        # backward phases are predicted separately (they have different
        # channel mixes) and summed into the stable microbatch time.
        comp_scale = 1.0 + MIST_IMPL_OVERHEAD
        self._fn = compile_expr(
            [
                # forward phase channels
                rt.comp_fwd * comp_scale + rt.tp_fwd,
                rt.dp_fwd + rt.p2p_fwd,
                rt.d2h_fwd,
                rt.h2d_fwd,
                # backward phase channels
                rt.comp_bwd * comp_scale + rt.tp_bwd,
                rt.dp_bwd + rt.p2p_bwd,
                rt.d2h_bwd,
                rt.h2d_bwd,
                # first-microbatch extras (applied to the forward phase)
                rt.comp_first * comp_scale, rt.dp_first,
                rt.d2h_first, rt.h2d_first,
                # last-microbatch extra (applied to the backward phase)
                rt.dp_last,
                mem.peak_fwd, mem.peak_bwd,
            ],
            arg_names=_ARG_NAMES,
        )
        # Narrow projections for the pruned search:
        # * the memory-feasibility pre-filter evaluates peak memory alone
        #   (cheap) to reject candidates before any runtime evaluation;
        # * the branch-and-bound cut evaluates the compute channels alone
        #   (fwd/bwd compute + the TP collectives serialized with it)
        #   for its optimistic, interference-free stage-time floor.
        # Compiled over their own free symbols (CompiledExpr.used_symbols)
        # so calls feed only the columns the projection actually reads.
        self._mem_fn = compile_expr([mem.peak_fwd, mem.peak_bwd])
        self._comp_fn = compile_expr(
            [rt.comp_fwd * comp_scale + rt.tp_fwd,
             rt.comp_bwd * comp_scale + rt.tp_bwd],
        )

    # -- environment construction ---------------------------------------------

    @property
    def memory_budget(self) -> float:
        """Per-GPU byte budget available to the plan (this device's)."""
        return memory_budget_bytes(self.gpu)

    def hardware_env(self, dp: npt.ArrayLike,
                     tp: npt.ArrayLike) -> dict[str, np.ndarray]:
        """Bandwidth/latency symbol values for (possibly batched) dp, tp."""
        return hardware_env(self.cluster, dp, tp)

    def build_env(self, **values: npt.ArrayLike) -> dict[str, np.ndarray]:
        """Full symbol environment: config values + derived hardware values."""
        env = {name: np.asarray(values[name], dtype=float)
               for name in values}
        missing_hw = [name for name in ("tp_bw", "dp_bw") if name not in env]
        if missing_hw:
            if "dp" not in values or "tp" not in values:
                raise ValueError(
                    "missing symbol values: hardware bandwidths require "
                    "'dp' and 'tp'"
                )
            env.update(self.hardware_env(values["dp"], values["tp"]))
        missing = [name for name in _ARG_NAMES if name not in env]
        if missing:
            raise ValueError(f"missing symbol values: {missing}")
        return env

    # -- prediction -------------------------------------------------------------

    @staticmethod
    def _entry(fn: CompiledExpr, engine: str) -> Callable[..., Any]:
        """The evaluation entry point for ``engine`` on a compiled bundle.

        ``vectorized`` is the compiled numpy closure; ``interpreted`` is
        the per-config tree-walking reference path (same arguments, same
        outputs, bit-identical values — just slow).
        """
        return fn if validate_engine(engine) == "vectorized" else fn.interpret

    def predict(self, env: dict[str, np.ndarray], *,
                engine: str = "vectorized") -> StagePrediction:
        """Evaluate all expressions and apply the interference model."""
        (comp_f, nccl_f, d2h_f, h2d_f,
         comp_b, nccl_b, d2h_b, h2d_b,
         comp_fx, nccl_fx, d2h_fx, h2d_fx,
         nccl_lx, peak_fwd, peak_bwd) = self._entry(self._fn, engine)(
            **{name: env[name] for name in _ARG_NAMES}
        )
        predict = self.interference.predict
        fwd = predict(comp_f, nccl_f, d2h_f, h2d_f)
        bwd = predict(comp_b, nccl_b, d2h_b, h2d_b)
        t_stable = fwd + bwd
        t_first = predict(comp_f + comp_fx, nccl_f + nccl_fx,
                          d2h_f + d2h_fx, h2d_f + h2d_fx) + bwd
        t_last = fwd + predict(comp_b, nccl_b + nccl_lx, d2h_b, h2d_b)
        delta = np.maximum(t_first - t_stable, 0.0) + np.maximum(
            t_last - t_stable, 0.0
        )
        return StagePrediction(
            t_stable=np.asarray(t_stable, dtype=float),
            delta=np.asarray(delta, dtype=float),
            peak_mem=np.maximum(peak_fwd, peak_bwd),
            t_first=np.asarray(t_first, dtype=float),
            t_last=np.asarray(t_last, dtype=float),
            peak_fwd=np.asarray(peak_fwd, dtype=float),
            peak_bwd=np.asarray(peak_bwd, dtype=float),
        )

    def predict_memory(self, env: dict[str, np.ndarray], *,
                       engine: str = "vectorized") -> np.ndarray:
        """Peak memory alone, via the memory-only compiled projection.

        Bit-identical to ``predict(env).peak_mem`` (same expression
        trees, compiled separately) at a fraction of the cost — the
        pruned tuner's memory-feasibility pre-filter runs this over the
        full candidate grid and hands only the surviving rows to
        :meth:`predict`.
        """
        peak_fwd, peak_bwd = self._entry(self._mem_fn, engine)(
            **{name: env[name] for name in self._mem_fn.used_symbols}
        )
        return np.asarray(np.maximum(peak_fwd, peak_bwd), dtype=float)

    def compute_channel(self, env: dict[str, np.ndarray], *,
                        engine: str = "vectorized") -> np.ndarray:
        """Compute-channel busy time (fwd + bwd), interference-free.

        With all interference factors >= 1 (see
        :meth:`repro.costmodel.interference.InterferenceModel.min_factor`)
        this never exceeds the stable microbatch time :meth:`predict`
        returns for the same configuration — the property the
        branch-and-bound lower bound rests on.
        """
        comp_fwd, comp_bwd = self._entry(self._comp_fn, engine)(
            **{name: env[name] for name in self._comp_fn.used_symbols}
        )
        return np.asarray(comp_fwd + comp_bwd, dtype=float)

    def stage_env(self, plan: TrainingPlan, stage_idx: int,
                  seq_len: int) -> dict[str, np.ndarray]:
        """Symbol environment for one concrete stage of a plan."""
        stage = plan.stages[stage_idx]
        z1, z2, z3 = stage.zero_flags
        return self.build_env(
            b=stage.microbatch, s=seq_len, tp=stage.tp, dp=stage.dp,
            l=stage.layers, ckpt=stage.ckpt,
            z1=z1, z2=z2, z3=z3,
            wo=stage.wo, go=stage.go, oo=stage.oo, ao=stage.ao,
            gacc=plan.gacc, inflight=plan.inflight(stage_idx),
            has_pre=int(stage_idx == 0),
            has_post=int(stage_idx == plan.num_stages - 1),
        )

    def predict_plan(self, plan: TrainingPlan, *, seq_len: int) -> PlanPrediction:
        """Per-stage predictions composed through the Eq. 1 objective."""
        t = np.zeros(plan.num_stages)
        d = np.zeros(plan.num_stages)
        peak = np.zeros(plan.num_stages)
        for idx in range(plan.num_stages):
            pred = self.predict(self.stage_env(plan, idx, seq_len))
            t[idx] = float(np.asarray(pred.t_stable).reshape(-1)[0])
            d[idx] = float(np.asarray(pred.delta).reshape(-1)[0])
            peak[idx] = float(np.asarray(pred.peak_mem).reshape(-1)[0])
        iteration = pipeline_iteration_time(t, d, plan.gacc)
        return PlanPrediction(
            iteration_time=iteration,
            throughput=throughput(plan.global_batch, iteration),
            stage_t=t,
            stage_d=d,
            stage_peak_mem=peak,
            fits_memory=bool((peak <= self.memory_budget).all()),
            memory_budget=self.memory_budget,
        )
