"""Inter-stage tuning: the imbalance-aware MILP (paper Eq. 2/3).

Given, for every stage position ``i`` and candidate layer count ``l``, a
menu of Pareto points ``(t, d)`` from intra-stage tuning, choose one
``(l_i, f_i)`` per stage such that layer counts sum to the model depth
and

    (G-1) * max_i t_i  +  sum_i t_i  +  max_i (d_i - sum_{j<i} t_j)

is minimized. Both max terms linearize as ``>=`` constraints, so the
problem is a pure binary assignment MILP solved with scipy's HiGHS
backend — the off-the-shelf-solver route the paper takes.

:func:`solve_exact` enumerates assignments for small instances and is
used to validate the MILP in tests. :func:`solve` picks automatically.

Heterogeneous clusters extend the stage partition with a *device-group
assignment*: every pipeline stage is pinned to one
:class:`~repro.hardware.topology.DeviceGroup` (contiguously, in group
order), and its menu of Pareto points is produced by that group's
analyzer — so each ``(t, d)`` option already reflects the group's
calibrated cost model and memory budget. The MILP itself is unchanged:
it only sees per-stage menus, which now differ per group.
:func:`group_stage_assignments` enumerates the candidate assignments
the outer tuner loops over.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from repro.hardware import DeviceGroup, HeterogeneousCluster

from .intra_stage import ParetoPoint
from .objectives import pipeline_iteration_time

__all__ = [
    "InterStageSolution",
    "StageSlot",
    "group_stage_assignments",
    "objective_lower_bound",
    "solve",
    "solve_milp",
    "solve_exact",
]

#: relative safety margin subtracted from lower bounds before they are
#: compared against incumbents — absorbs float noise in the marginal
#: per-layer cost estimate so a bound can never spuriously exceed the
#: true objective it underestimates
_BOUND_SAFETY = 1e-9


def objective_lower_bound(per_layer_floor: float, total_layers: int,
                          num_stages: int, gacc: int) -> float:
    """Optimistic lower bound on Eq. (1) for one (S, G) cell.

    ``per_layer_floor`` is a lower bound on the *compute-only,
    interference-free* cost of one transformer layer under the cell's
    cheapest feasible (dp, tp, b) option. Every valid partition
    satisfies ``sum_i t_i >= L * floor`` and
    ``max_i t_i >= ceil(L / S) * floor`` (some stage hosts at least
    ``ceil(L / S)`` layers), and the exposed-delta term of Eq. (1) is
    clamped at zero — so

        (G - 1) * ceil(L / S) * floor  +  L * floor

    never exceeds the true objective of any plan in the cell. The
    branch-and-bound cut compares this against the current k-th-best
    incumbent and skips the whole cell when even the bound is worse.
    """
    if per_layer_floor < 0:
        per_layer_floor = 0.0
    bound = ((gacc - 1) * math.ceil(total_layers / num_stages)
             + total_layers) * per_layer_floor
    return bound * (1.0 - _BOUND_SAFETY)


class StageSlot(NamedTuple):
    """One pipeline-stage position of a heterogeneous assignment."""

    group: str
    stage_gpus: int


def group_stage_assignments(cluster: HeterogeneousCluster,
                            max_total_stages: int,
                            ) -> list[tuple[StageSlot, ...]]:
    """Candidate stage -> device-group assignments for a mixed fleet.

    Every group hosts at least one stage; a group with ``n`` GPUs may
    host any stage count dividing ``n`` (each of its stages then owns
    ``n / s`` GPUs, the contiguous-range rule applied per group). The
    pipeline traverses groups in declaration order *or* reverse order —
    which end hosts the embedding/LM-head stages matters, so both
    directions are enumerated. Assignments longer than
    ``max_total_stages`` (the model depth) are dropped.
    """
    def options(group: DeviceGroup) -> list[int]:
        return [s for s in range(1, group.total_gpus + 1)
                if group.total_gpus % s == 0]

    assignments: list[tuple[StageSlot, ...]] = []
    seen: set[tuple[StageSlot, ...]] = set()
    orders = [cluster.groups]
    if len(cluster.groups) > 1:
        orders.append(tuple(reversed(cluster.groups)))
    for order in orders:
        for counts in itertools.product(*(options(g) for g in order)):
            if sum(counts) > max_total_stages:
                continue
            assignment = tuple(
                StageSlot(group=g.name, stage_gpus=g.total_gpus // s)
                for g, s in zip(order, counts)
                for _ in range(s)
            )
            if assignment not in seen:
                seen.add(assignment)
                assignments.append(assignment)
    return assignments

Menus = list[dict[int, list[ParetoPoint]]]
"""menus[i][l] -> Pareto points of stage i with l layers."""


@dataclass
class InterStageSolution:
    """Chosen (layer count, Pareto point) per stage, plus the objective."""

    objective: float
    choices: list[ParetoPoint]

    @property
    def layer_counts(self) -> list[int]:
        return [point.config.layers for point in self.choices]


def _flatten(menus: Menus) -> list[list[tuple[int, ParetoPoint]]]:
    """menus -> per-stage option lists [(l, point), ...]."""
    options = []
    for stage_menu in menus:
        stage_options = [
            (l, point)
            for l, points in sorted(stage_menu.items())
            for point in points
        ]
        options.append(stage_options)
    return options


def solve_exact(menus: Menus, total_layers: int, gacc: int,
                imbalance_aware: bool = True) -> InterStageSolution | None:
    """Exhaustive enumeration (exponential; for tests / tiny instances)."""
    options = _flatten(menus)
    if any(not opts for opts in options):
        return None
    best: InterStageSolution | None = None
    for combo in itertools.product(*options):
        if sum(l for l, _ in combo) != total_layers:
            continue
        t = np.array([p.t for _, p in combo])
        d = np.array([p.d for _, p in combo])
        if not imbalance_aware:
            d = np.zeros_like(d)
        objective = pipeline_iteration_time(t, d, gacc)
        if best is None or objective < best.objective:
            best = InterStageSolution(
                objective=objective, choices=[p for _, p in combo]
            )
    return best


def solve_milp(menus: Menus, total_layers: int, gacc: int,
               imbalance_aware: bool = True,
               time_limit: float = 30.0) -> InterStageSolution | None:
    """Eq. (2) as a binary MILP solved by HiGHS.

    Variables: ``x[i, o]`` (stage ``i`` picks option ``o``), plus the
    bottleneck time ``T`` and the exposed-delta bound ``Z``.
    """
    options = _flatten(menus)
    if any(not opts for opts in options):
        return None
    num_stages = len(options)
    offsets = np.cumsum([0] + [len(opts) for opts in options])
    n_x = int(offsets[-1])
    n_vars = n_x + 2  # + T, Z
    iT, iZ = n_x, n_x + 1

    t_coef = np.concatenate([
        np.array([p.t for _, p in opts]) for opts in options
    ])
    d_coef = np.concatenate([
        np.array([p.d for _, p in opts]) for opts in options
    ])
    l_coef = np.concatenate([
        np.array([l for l, _ in opts], dtype=float) for opts in options
    ])
    if not imbalance_aware:
        d_coef = np.zeros_like(d_coef)

    # objective: (G-1) T + sum_i t_i + Z
    c = np.zeros(n_vars)
    c[:n_x] = t_coef
    c[iT] = gacc - 1
    c[iZ] = 1.0

    constraints = []

    # one option per stage
    a_pick = lil_matrix((num_stages, n_vars))
    for i in range(num_stages):
        a_pick[i, offsets[i]:offsets[i + 1]] = 1.0
    constraints.append(LinearConstraint(a_pick.tocsr(), 1.0, 1.0))

    # layer counts sum to the model depth
    a_layers = lil_matrix((1, n_vars))
    a_layers[0, :n_x] = l_coef
    constraints.append(
        LinearConstraint(a_layers.tocsr(), total_layers, total_layers)
    )

    # T >= t_i for every stage
    a_bottleneck = lil_matrix((num_stages, n_vars))
    for i in range(num_stages):
        a_bottleneck[i, offsets[i]:offsets[i + 1]] = -t_coef[
            offsets[i]:offsets[i + 1]
        ]
        a_bottleneck[i, iT] = 1.0
    constraints.append(LinearConstraint(a_bottleneck.tocsr(), 0.0, np.inf))

    # Z >= d_i - sum_{j<i} t_j for every stage
    a_delta = lil_matrix((num_stages, n_vars))
    for i in range(num_stages):
        a_delta[i, offsets[i]:offsets[i + 1]] = -d_coef[
            offsets[i]:offsets[i + 1]
        ]
        for j in range(i):
            a_delta[i, offsets[j]:offsets[j + 1]] = t_coef[
                offsets[j]:offsets[j + 1]
            ]
        a_delta[i, iZ] = 1.0
    constraints.append(LinearConstraint(a_delta.tocsr(), 0.0, np.inf))

    integrality = np.concatenate([np.ones(n_x), np.zeros(2)])
    bounds = Bounds(
        lb=np.zeros(n_vars),
        ub=np.concatenate([np.ones(n_x), [np.inf, np.inf]]),
    )

    result = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": time_limit, "presolve": True},
    )
    if not result.success or result.x is None:
        return None

    choices: list[ParetoPoint] = []
    for i in range(num_stages):
        slice_x = result.x[offsets[i]:offsets[i + 1]]
        picked = int(np.argmax(slice_x))
        if slice_x[picked] < 0.5:
            return None  # infeasible relaxation artefact
        choices.append(options[i][picked][1])

    # Recompute the objective exactly (guards against MILP tolerance).
    t = np.array([p.t for p in choices])
    d = np.array([p.d for p in choices])
    if not imbalance_aware:
        d = np.zeros_like(d)
    objective = pipeline_iteration_time(t, d, gacc)
    return InterStageSolution(objective=objective, choices=choices)


def solve(menus: Menus, total_layers: int, gacc: int, *,
          imbalance_aware: bool = True,
          exact_threshold: int = 2000) -> InterStageSolution | None:
    """Dispatch to exact enumeration (tiny instances) or the MILP."""
    options = _flatten(menus)
    if any(not opts for opts in options):
        return None
    combos = math.prod(len(opts) for opts in options)
    if combos <= exact_threshold:
        return solve_exact(menus, total_layers, gacc, imbalance_aware)
    return solve_milp(menus, total_layers, gacc, imbalance_aware)
