"""Intra-stage tuning: batched enumeration and Pareto-frontier sampling.

For a stage shape — device count, position (has_pre/has_post), in-flight
microbatch count and gradient-accumulation steps — the tuner enumerates
every combination of

* ``(dp, tp, b)`` grids (with ``b = B / (G * dp)`` forced integral),
* ZeRO level, checkpoint count, and offloading ratios from the
  :class:`~repro.core.spaces.SearchSpace` grids,
* candidate per-stage layer counts,

materializes the whole menu as **columnar arrays** (one array per
symbol) and evaluates memory feasibility, the dominance pre-reduction
and the runtime objective in a handful of vectorized analyzer calls
(Section 5.2's "batched value substitutions"), filters by the memory
budget (Eq. 4's constraint), and extracts the Pareto frontier over
``(t_stable, d_delta)`` per layer count. Because querying single points
is nearly free, the enumeration is brute force — "which would not miss
any optimization possibilities" (Section 5.3).

Per-config Python loops are banished from this module (the
``vectorization-discipline`` check enforces it); the one sanctioned
per-config path is ``engine="interpreted"``, which routes the same
columnar menu through :meth:`repro.symbolic.CompiledExpr.interpret` —
the row-at-a-time reference interpreter the differential tests compare
against.

The frontier — rather than a single winner — is the hand-off to the
inter-stage MILP: different ``(t, d)`` trade-offs win depending on how
many microbatches amortize the deltas and where the stage sits in the
pipeline (the paper's Pareto-frontier sampling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic import validate_engine

from .analyzer import SymbolicPerformanceAnalyzer
from .plan import StageConfig
from .spaces import SearchSpace

__all__ = ["ParetoPoint", "StageShape", "IntraStageTuner",
           "stage_parallelism_options"]


def stage_parallelism_options(analyzer: SymbolicPerformanceAnalyzer,
                              stage_gpus: int, gacc: int,
                              global_batch: int) -> list[tuple[int, int, int]]:
    """Feasible (dp, tp, b) triples for one stage slot.

    Single source of truth for option enumeration: the intra-stage
    tuner enumerates from it, and the pruned search's feasibility flags
    and lower-bound floors must see the *same* options or the
    bit-identity contract silently breaks.
    """
    per_wave = global_batch // gacc
    if per_wave * gacc != global_batch:
        return []
    options = []
    # repro: allow[vectorization-discipline] iterates (dp, tp) options, not menu rows
    for dp, tp in analyzer.cluster.stage_parallelism_options(stage_gpus):
        if analyzer.traced.config.hidden_size % tp != 0:
            continue
        if per_wave % dp != 0:
            continue
        b = per_wave // dp
        if b >= 1:
            options.append((dp, tp, b))
    return options


def _frontier_candidates(l_g: np.ndarray, t_v: np.ndarray,
                         d_v: np.ndarray) -> np.ndarray:
    """Mask of rows that can still reach the Pareto frontier.

    Vectorized dominance pre-reduction for the prefiltered path: within
    each layer-count group, a row ordered by ``(t, d)`` survives only if
    its ``d`` is *strictly* below every earlier row's ``d``. Any row
    :meth:`IntraStageTuner._pareto` would keep satisfies that (a kept
    row's ``d`` undercuts all earlier entries by more than the
    frontier epsilon), and rows `_pareto` skips never update its
    running state — so dropping them here provably cannot change the
    extracted frontier, while skipping the per-row
    :class:`~repro.core.plan.StageConfig` construction for the
    overwhelmingly dominated bulk.
    """
    keep = np.zeros(l_g.size, dtype=bool)
    order = np.lexsort((d_v, t_v, l_g))  # stable: by l, then t, then d
    l_s = l_g[order]
    d_s = d_v[order]
    starts = np.flatnonzero(np.r_[True, l_s[1:] != l_s[:-1]])
    ends = np.r_[starts[1:], l_s.size]
    # repro: allow[vectorization-discipline] iterates layer-count segments, not menu rows
    for s, e in zip(starts, ends):
        seg = d_s[s:e]
        prev_min = np.r_[np.inf, np.minimum.accumulate(seg)[:-1]]
        keep[order[s:e][seg < prev_min]] = True
    return keep


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated intra-stage configuration."""

    t: float
    d: float
    peak_mem: float
    config: StageConfig

    def objective(self, alpha: float, gacc: int) -> float:
        """Dual objective of Eq. (4)."""
        return alpha * gacc * self.t + (1.0 - alpha) * self.d


@dataclass(frozen=True)
class StageShape:
    """Everything that identifies a stage for intra-stage tuning."""

    stage_gpus: int
    gacc: int
    inflight: int
    has_pre: bool
    has_post: bool
    #: device group hosting the stage ("" on homogeneous clusters);
    #: configurations produced for this shape carry the tag, and the
    #: tuner evaluating the shape must use that group's analyzer
    group: str = ""
    #: pipeline p2p clamps for stages adjacent to a device-group
    #: boundary: bandwidth capped at (latency floored to) the
    #: inter-group link, matching what the execution engine charges
    p2p_bandwidth_cap: float | None = None
    p2p_latency_floor: float | None = None


class IntraStageTuner:
    """Batched columnar enumeration over one stage's search space.

    ``engine`` selects the cost-model evaluation path: ``"vectorized"``
    (default) runs the compiled numpy closures over the whole columnar
    menu at once; ``"interpreted"`` routes the *same* menu through the
    per-config tree-walking interpreter. The two produce bit-identical
    menus and identical ``evaluated`` / ``prefiltered`` counters — the
    interpreted path exists purely as the differential-testing
    reference.
    """

    def __init__(self, analyzer: SymbolicPerformanceAnalyzer,
                 space: SearchSpace, *, global_batch: int, seq_len: int,
                 max_pareto_points: int = 8, engine: str = "vectorized"):
        self.analyzer = analyzer
        self.space = space
        self.global_batch = global_batch
        self.seq_len = seq_len
        self.max_pareto_points = max_pareto_points
        self.engine = validate_engine(engine)
        #: configurations enumerated so far (tuning-time accounting);
        #: includes rows the memory pre-filter later rejected, so the
        #: count is identical with and without pre-filtering
        self.evaluated = 0
        #: configurations the symbolic memory pre-filter rejected before
        #: any runtime evaluation (always 0 when tuning without it)
        self.prefiltered = 0

    # -- grids ---------------------------------------------------------------

    def _ckpt_grid(self, layer_counts: list[int]) -> np.ndarray:
        max_layers = max(layer_counts)
        if self.space.ckpt_policy == "full":
            # ckpt must equal the stage's layer count; candidates are the
            # layer counts themselves (filtered to ckpt == l later).
            return np.unique(np.asarray(layer_counts, dtype=int))
        if not self.space.tune_ckpt:
            return np.unique(np.asarray([0] + list(layer_counts), dtype=int))
        points = min(self.space.ckpt_grid_points, max_layers + 1)
        return np.unique(np.round(np.linspace(0, max_layers, points))
                         .astype(int))

    def _zero_grid(self) -> np.ndarray:
        return np.asarray(self.space.zero_levels, dtype=int)

    def _parallelism_options(self, shape: StageShape) -> list[tuple[int, int, int]]:
        """Feasible (dp, tp, b) triples for this stage."""
        return stage_parallelism_options(
            self.analyzer, shape.stage_gpus, shape.gacc, self.global_batch)

    # -- menu materialization -----------------------------------------------

    def _menu_columns(self, shape: StageShape,
                      layer_counts: list[int]) -> dict[str, np.ndarray] | None:
        """The stage's full config menu as columnar arrays.

        One array per symbol, rows ordered by (dp, tp, b) option first
        and meshgrid enumeration within each option second — the same
        order the per-option batches used to accumulate in, which the
        stable frontier extraction's tie-breaking depends on.

        Hardware symbol values are constant within an option block, so
        they are resolved once per option (the topology lookup is a
        per-pair table walk, not an elementwise kernel) and broadcast
        into full columns.
        """
        zero_levels = self._zero_grid()
        ckpt_vals = self._ckpt_grid(layer_counts)
        l_vals = np.asarray(sorted(layer_counts), dtype=int)
        hw_keys: list[str] | None = None
        blocks: list[dict[str, np.ndarray]] = []

        # repro: allow[vectorization-discipline] iterates (dp, tp, b) option blocks, not menu rows
        for dp, tp, b in self._parallelism_options(shape):
            grid = np.meshgrid(
                l_vals, ckpt_vals, zero_levels,
                np.asarray(self.space.wo_grid), np.asarray(self.space.go_grid),
                np.asarray(self.space.oo_grid), np.asarray(self.space.ao_grid),
                indexing="ij",
            )
            l_g, ckpt_g, zero_g, wo_g, go_g, oo_g, ao_g = [
                g.reshape(-1) for g in grid
            ]
            if self.space.ckpt_policy == "full":
                valid = ckpt_g == l_g
            elif not self.space.tune_ckpt:
                valid = (ckpt_g == 0) | (ckpt_g == l_g)
            else:
                valid = ckpt_g <= l_g
            l_g, ckpt_g, zero_g = l_g[valid], ckpt_g[valid], zero_g[valid]
            wo_g, go_g, oo_g, ao_g = (wo_g[valid], go_g[valid], oo_g[valid],
                                      ao_g[valid])
            n = l_g.size
            if n == 0:
                continue

            # hardware values are constant for this (dp, tp) choice
            hw = {k: float(v.reshape(-1)[0])
                  for k, v in self.analyzer.hardware_env(dp, tp).items()}
            if shape.p2p_bandwidth_cap is not None:
                hw["p2p_bw"] = min(hw["p2p_bw"], shape.p2p_bandwidth_cap)
            if shape.p2p_latency_floor is not None:
                hw["p2p_lat"] = max(hw["p2p_lat"], shape.p2p_latency_floor)
            if hw_keys is None:
                hw_keys = sorted(hw)

            block = {
                "b": np.full(n, b), "tp": np.full(n, tp), "dp": np.full(n, dp),
                "l": l_g, "ckpt": ckpt_g, "zero": zero_g,
                "wo": wo_g, "go": go_g, "oo": oo_g, "ao": ao_g,
            }
            block.update({k: np.full(n, hw[k]) for k in hw_keys})
            blocks.append(block)

        if not blocks:
            return None
        return {name: np.concatenate([blk[name] for blk in blocks])
                for name in blocks[0]}

    # -- tuning -----------------------------------------------------------------

    def tune(self, shape: StageShape, layer_counts: list[int], *,
             prefilter: bool = False) -> dict[int, list[ParetoPoint]]:
        """Pareto frontiers per layer count: ``{l: [ParetoPoint, ...]}``.

        Returns an empty list for layer counts with no feasible (within
        memory budget) configuration.

        ``prefilter=True`` enables the symbolic memory-feasibility
        pre-filter: peak memory is evaluated first through the
        analyzer's memory-only projection and candidates over budget
        are dropped *before* the (more expensive) runtime evaluation.
        The surviving menus are bit-identical either way — the filter
        applies the exact constraint the post-evaluation check applies,
        just earlier.
        """
        self._gacc = shape.gacc
        menus: dict[int, list[tuple[float, float, float, StageConfig]]] = {
            l: [] for l in layer_counts
        }
        cols = self._menu_columns(shape, layer_counts)
        if cols is None:
            return {l: [] for l in layer_counts}
        n = cols["l"].size
        self.evaluated += n

        analyzer = self.analyzer
        env = analyzer.build_env(
            b=cols["b"], s=np.full(n, self.seq_len),
            tp=cols["tp"], dp=cols["dp"],
            l=cols["l"], ckpt=cols["ckpt"],
            z1=(cols["zero"] >= 1).astype(float),
            z2=(cols["zero"] >= 2).astype(float),
            z3=(cols["zero"] >= 3).astype(float),
            wo=cols["wo"], go=cols["go"], oo=cols["oo"], ao=cols["ao"],
            gacc=np.full(n, shape.gacc),
            inflight=np.full(n, shape.inflight),
            has_pre=np.full(n, int(shape.has_pre)),
            has_post=np.full(n, int(shape.has_post)),
            **{k: cols[k] for k in cols
               if k not in ("b", "tp", "dp", "l", "ckpt", "zero",
                            "wo", "go", "oo", "ao")},
        )
        if prefilter:
            fits_mem = (analyzer.predict_memory(env, engine=self.engine)
                        <= analyzer.memory_budget)
            self.prefiltered += int(n - fits_mem.sum())
            if not fits_mem.any():
                return {l: [] for l in layer_counts}
            if not fits_mem.all():
                env = {name: (value[fits_mem]
                              if getattr(value, "ndim", 0) >= 1
                              else value)
                       for name, value in env.items()}
                cols = {name: value[fits_mem]
                        for name, value in cols.items()}
        pred = analyzer.predict(env, engine=self.engine)

        fits = pred.peak_mem <= analyzer.memory_budget
        if fits.any():
            if prefilter:
                # every row already fits; cheaply discard dominated rows
                # before the per-row StageConfig construction
                fits &= _frontier_candidates(
                    cols["l"], np.asarray(pred.t_stable, dtype=float),
                    np.asarray(pred.delta, dtype=float))
            # repro: allow[vectorization-discipline] builds StageConfigs for surviving frontier candidates only
            for i in np.nonzero(fits)[0]:
                cfg = StageConfig(
                    layers=int(cols["l"][i]), microbatch=int(cols["b"][i]),
                    dp=int(cols["dp"][i]), tp=int(cols["tp"][i]),
                    zero=int(cols["zero"][i]), ckpt=int(cols["ckpt"][i]),
                    wo=float(cols["wo"][i]), go=float(cols["go"][i]),
                    oo=float(cols["oo"][i]), ao=float(cols["ao"][i]),
                    device_group=shape.group,
                )
                menus[int(cols["l"][i])].append(
                    (float(pred.t_stable[i]), float(pred.delta[i]),
                     float(pred.peak_mem[i]), cfg)
                )

        return {
            l: self._pareto(entries)
            for l, entries in menus.items()
        }

    # -- frontier extraction -------------------------------------------------------

    def _pareto(self, entries: list[tuple[float, float, float, StageConfig]],
                ) -> list[ParetoPoint]:
        """Non-dominated (t, d) points, downsampled by the alpha-sweep.

        Extraction keeps every non-dominated point; when the frontier
        exceeds the budget, points are selected by uniformly sampling
        the dual objective of Eq. (4) — ``alpha*G*t + (1-alpha)*d`` for
        ``alpha`` in [0, 1] — which guarantees the minimizers of the
        scalarizations the inter-stage objective is built from survive
        (this is the paper's Pareto frontier *sampling*).
        """
        if not entries:
            return []
        entries.sort(key=lambda e: (e[0], e[1]))
        frontier = []
        best_d = np.inf
        # repro: allow[vectorization-discipline] walks the sorted frontier, already reduced
        for t, d, mem, cfg in entries:
            if d < best_d - 1e-12:
                frontier.append(ParetoPoint(t=t, d=d, peak_mem=mem, config=cfg))
                best_d = d
        if len(frontier) > self.max_pareto_points:
            gacc = getattr(self, "_gacc", 1)
            t_arr = np.array([p.t for p in frontier])
            d_arr = np.array([p.d for p in frontier])
            keep: set[int] = {0, len(frontier) - 1}  # min-t and min-d ends
            # repro: allow[vectorization-discipline] alpha-sweep over <= max_pareto_points scalarizations
            for alpha in np.linspace(0.0, 1.0, self.max_pareto_points):
                scores = alpha * gacc * t_arr + (1.0 - alpha) * d_arr
                keep.add(int(np.argmin(scores)))
            frontier = [frontier[i] for i in sorted(keep)]
        return frontier
