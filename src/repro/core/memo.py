"""Keyed memoization of intra-stage tuning subproblems.

The pruned search (:meth:`repro.core.tuner.MistTuner.search` with
``prune=True``) evaluates many *stage-cost subproblems*: "the Pareto
menu of one stage shape (device group, GPU count, gradient-accumulation
steps, in-flight microbatches, pre/post flags, p2p clamps) over a given
layer-count range". Identical subproblems recur

* across heterogeneous stage -> device-group assignments (different
  assignments share slots),
* across repeated searches of the same tuner (the serial-then-parallel
  fig. 16 re-run, ``repro serve`` solving job variants),
* across the parallel (S, G) fan-out workers, which all share one memo.

:class:`MenuMemo` is a thread-safe LRU keyed by the full subproblem
fingerprint. Entries store the menus *plus* the evaluation counters the
fresh computation produced, so a memo hit replays the counters and
``TuningResult.configurations_evaluated`` stays deterministic no matter
how warm the memo is — only the hit/miss telemetry differs.

The module-level :data:`GLOBAL_MENU_MEMO` is the default shared
instance (bounded; tune with ``REPRO_MENU_MEMO_SIZE``). Menus are pure
functions of their key, so sharing it process-wide is safe: a hit
returns bit-identical menus to a fresh computation.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["GLOBAL_MENU_MEMO", "MemoEntry", "MenuMemo"]

_DEFAULT_MAXSIZE = 4096


@dataclass(frozen=True)
class MemoEntry:
    """One memoized subproblem: menus + the counters that built them."""

    #: ``{layer_count: [ParetoPoint, ...]}`` as returned by
    #: :meth:`repro.core.intra_stage.IntraStageTuner.tune`
    menus: dict
    #: configurations enumerated for these menus (pre-prefilter)
    evaluated: int
    #: configurations the symbolic memory prefilter rejected
    prefiltered: int


class MenuMemo:
    """Thread-safe LRU cache of :class:`MemoEntry` by subproblem key.

    Lookups never block computation: concurrent misses on the same key
    may compute the entry twice, but both computations are pure and
    produce identical values, so the last store wins harmlessly.
    """

    def __init__(self, maxsize: int | None = None):
        if maxsize is None:
            maxsize = int(os.environ.get("REPRO_MENU_MEMO_SIZE",
                                         _DEFAULT_MAXSIZE))
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, MemoEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def lookup(self, key: tuple) -> MemoEntry | None:
        """Return the entry for ``key`` (refreshing LRU order) or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def store(self, key: tuple, entry: MemoEntry) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses


#: default process-wide memo shared by every tuner's pruned search
GLOBAL_MENU_MEMO = MenuMemo()
