"""Pipeline objective functions (paper Eq. 1/2).

Given per-stage stable microbatch times ``t_i`` and first/last
microbatch deltas ``d_i``, the iteration time of a 1F1B pipeline with
``G`` microbatches is

    T = (G - 1) * max_i t_i            # steady-state, bottleneck stage
      + sum_i t_i                      # pipeline fill + drain
      + max_i (d_i - sum_{j<i} t_j)    # exposed first/last-microbatch extras

The third term credits deltas that hide inside the pipeline ramp: a
late stage's first-microbatch overhead overlaps with earlier stages'
work (Figure 10), so only the part exceeding the accumulated ramp is
exposed. The imbalance-unaware variants used by the baselines (and the
Fig. 13/15 ablations) are provided alongside.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = [
    "pipeline_iteration_time",
    "pipeline_time_uniform",
    "pipeline_time_average",
    "throughput",
]


def pipeline_iteration_time(t: npt.ArrayLike, d: npt.ArrayLike,
                            gacc: int) -> float:
    """Imbalance-aware iteration time (Eq. 1). ``t``/``d`` per stage."""
    t = np.asarray(t, dtype=float)
    d = np.asarray(d, dtype=float)
    if t.shape != d.shape or t.ndim != 1:
        raise ValueError("t and d must be 1-D arrays of equal length")
    if gacc < 1:
        raise ValueError("gacc must be >= 1")
    prefix = np.concatenate(([0.0], np.cumsum(t)[:-1]))
    exposed = np.max(d - prefix)
    return float((gacc - 1) * t.max() + t.sum() + max(exposed, 0.0))


def pipeline_time_uniform(t: npt.ArrayLike, gacc: int) -> float:
    """Imbalance-unaware variant: every microbatch costs ``t_i``.

    This is the model used by planners that ignore first/last microbatch
    extras entirely (d = 0).
    """
    t = np.asarray(t, dtype=float)
    return float((gacc - 1) * t.max() + t.sum())


def pipeline_time_average(t: npt.ArrayLike, d: npt.ArrayLike,
                          gacc: int) -> float:
    """Averaged-microbatch model (Shortcoming #3): spreads the deltas
    evenly across microbatches, mispredicting the bottleneck."""
    t = np.asarray(t, dtype=float)
    d = np.asarray(d, dtype=float)
    t_avg = t + d / max(gacc, 1)
    return float((gacc - 1) * t_avg.max() + t_avg.sum())


def throughput(global_batch: int, iteration_time: float) -> float:
    """Training throughput in samples/second (the paper's metric)."""
    if iteration_time <= 0:
        raise ValueError("iteration time must be positive")
    return global_batch / iteration_time
