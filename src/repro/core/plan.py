"""Training-plan data model (the tuner's output; paper Table 2).

A :class:`TrainingPlan` fixes gradient-accumulation steps ``G`` and, for
each pipeline stage ``i``, the tuple
``(L_i, b_i, DP_i, TP_i, ZeRO_i, CKPT_i, WO_i, GO_i, OO_i, AO_i)``.

On heterogeneous clusters each stage additionally carries a
``device_group`` tag naming the
:class:`~repro.hardware.topology.DeviceGroup` that hosts it; on
homogeneous clusters the tag stays empty and plans are byte-identical
to their pre-heterogeneity serialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.hardware import ClusterSpec, HeterogeneousCluster
from repro.models.config import ModelConfig

__all__ = ["StageConfig", "TrainingPlan", "PlanValidationError", "zero_flags",
           "uniform_plan"]


class PlanValidationError(ValueError):
    """A plan is structurally inconsistent with its model/cluster."""


def zero_flags(level: int) -> tuple[int, int, int]:
    """ZeRO level -> cumulative (z1, z2, z3) sharding flags.

    Level 1 shards optimizer states, level 2 adds gradients, level 3
    adds fp16 parameters (Section 2.2).
    """
    if level not in (0, 1, 2, 3):
        raise ValueError(f"ZeRO level must be 0..3, got {level}")
    return (int(level >= 1), int(level >= 2), int(level >= 3))


@dataclass(frozen=True)
class StageConfig:
    """Configuration of one pipeline stage."""

    layers: int
    microbatch: int
    dp: int
    tp: int
    zero: int = 0
    ckpt: int = 0
    wo: float = 0.0
    go: float = 0.0
    oo: float = 0.0
    ao: float = 0.0
    #: device group hosting this stage ("" = the cluster's only kind)
    device_group: str = ""

    def __post_init__(self) -> None:
        if self.layers < 0:
            raise PlanValidationError("layers must be >= 0")
        if self.microbatch < 1 or self.dp < 1 or self.tp < 1:
            raise PlanValidationError("b, dp, tp must be >= 1")
        if self.zero not in (0, 1, 2, 3):
            raise PlanValidationError(f"invalid ZeRO level {self.zero}")
        if not 0 <= self.ckpt <= self.layers:
            raise PlanValidationError(
                f"ckpt={self.ckpt} outside [0, layers={self.layers}]"
            )
        for name in ("wo", "go", "oo", "ao"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise PlanValidationError(f"{name}={value} outside [0, 1]")

    @property
    def gpus(self) -> int:
        return self.dp * self.tp

    @property
    def zero_flags(self) -> tuple[int, int, int]:
        return zero_flags(self.zero)

    @property
    def samples_per_microbatch(self) -> int:
        return self.dp * self.microbatch

    def to_dict(self) -> dict:
        # device_group is serialized only when set, so homogeneous plans
        # keep their pre-heterogeneity byte-identical JSON form
        out = {
            "layers": self.layers, "microbatch": self.microbatch,
            "dp": self.dp, "tp": self.tp, "zero": self.zero,
            "ckpt": self.ckpt, "wo": self.wo, "go": self.go,
            "oo": self.oo, "ao": self.ao,
        }
        if self.device_group:
            out["device_group"] = self.device_group
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "StageConfig":
        return cls(
            layers=int(data["layers"]), microbatch=int(data["microbatch"]),
            dp=int(data["dp"]), tp=int(data["tp"]),
            zero=int(data.get("zero", 0)), ckpt=int(data.get("ckpt", 0)),
            wo=float(data.get("wo", 0.0)), go=float(data.get("go", 0.0)),
            oo=float(data.get("oo", 0.0)), ao=float(data.get("ao", 0.0)),
            device_group=str(data.get("device_group", "")),
        )

    def describe(self) -> str:
        parts = [
            f"L={self.layers}", f"b={self.microbatch}", f"DP={self.dp}",
            f"TP={self.tp}", f"ZeRO-{self.zero}", f"CKPT={self.ckpt}",
        ]
        for name in ("wo", "go", "oo", "ao"):
            value = getattr(self, name)
            if value > 0:
                parts.append(f"{name.upper()}={value:.2f}")
        if self.device_group:
            parts.append(f"@{self.device_group}")
        return " ".join(parts)


@dataclass(frozen=True)
class TrainingPlan:
    """A complete distributed-training configuration."""

    global_batch: int
    gacc: int
    stages: tuple[StageConfig, ...]
    #: free-form provenance (which tuner / search space produced it)
    source: str = "manual"
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.gacc < 1:
            raise PlanValidationError("gradient accumulation steps must be >= 1")
        if not self.stages:
            raise PlanValidationError("plan needs at least one stage")
        object.__setattr__(self, "stages", tuple(self.stages))

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def total_gpus(self) -> int:
        return sum(stage.gpus for stage in self.stages)

    @property
    def total_layers(self) -> int:
        return sum(stage.layers for stage in self.stages)

    def inflight(self, stage_idx: int) -> int:
        """In-flight microbatches of stage ``stage_idx`` under 1F1B."""
        return min(self.gacc, self.num_stages - stage_idx)

    def validate(self, model: ModelConfig,
                 cluster: "ClusterSpec | HeterogeneousCluster") -> None:
        """Raise :class:`PlanValidationError` on any inconsistency."""
        if self.total_layers != model.num_layers:
            raise PlanValidationError(
                f"stages cover {self.total_layers} layers, model has "
                f"{model.num_layers}"
            )
        if self.total_gpus != cluster.total_gpus:
            raise PlanValidationError(
                f"plan uses {self.total_gpus} GPUs, cluster has "
                f"{cluster.total_gpus}"
            )
        samples = self.global_batch / self.gacc
        for idx, stage in enumerate(self.stages):
            if stage.samples_per_microbatch != samples:
                raise PlanValidationError(
                    f"stage {idx}: dp*b = {stage.samples_per_microbatch} but "
                    f"global_batch/gacc = {samples}"
                )
            if model.hidden_size % stage.tp != 0:
                raise PlanValidationError(
                    f"stage {idx}: TP={stage.tp} does not divide hidden size"
                )
        if isinstance(cluster, HeterogeneousCluster):
            self._validate_groups(cluster)
        else:
            for idx, stage in enumerate(self.stages):
                if stage.tp > cluster.gpus_per_node:
                    raise PlanValidationError(
                        f"stage {idx}: TP={stage.tp} exceeds node size "
                        f"{cluster.gpus_per_node}"
                    )
        if self.global_batch % self.gacc != 0:
            raise PlanValidationError(
                f"global batch {self.global_batch} not divisible by "
                f"G={self.gacc}"
            )

    def _validate_groups(self, cluster: HeterogeneousCluster) -> None:
        """Heterogeneous checks: group tags, contiguity, per-group GPUs."""
        used: dict[str, int] = {}
        order: list[str] = []
        for idx, stage in enumerate(self.stages):
            try:
                group = cluster.group_for_stage(stage.device_group)
            except KeyError as exc:
                raise PlanValidationError(
                    f"stage {idx}: {exc.args[0]}"
                ) from None
            if stage.tp > group.gpus_per_node:
                raise PlanValidationError(
                    f"stage {idx}: TP={stage.tp} exceeds node size "
                    f"{group.gpus_per_node} of group {group.name!r}"
                )
            used[group.name] = used.get(group.name, 0) + stage.gpus
            if not order or order[-1] != group.name:
                order.append(group.name)
        if len(order) != len(set(order)):
            raise PlanValidationError(
                f"stages of one device group must be contiguous, got "
                f"group order {order}"
            )
        for group in cluster.groups:
            if used.get(group.name, 0) != group.total_gpus:
                raise PlanValidationError(
                    f"group {group.name!r}: stages use "
                    f"{used.get(group.name, 0)} GPUs, group has "
                    f"{group.total_gpus}"
                )

    def with_source(self, source: str) -> "TrainingPlan":
        return replace(self, source=source)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "global_batch": self.global_batch,
            "gacc": self.gacc,
            "stages": [stage.to_dict() for stage in self.stages],
            "source": self.source,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingPlan":
        return cls(
            global_batch=int(data["global_batch"]),
            gacc=int(data["gacc"]),
            stages=tuple(StageConfig.from_dict(s) for s in data["stages"]),
            source=data.get("source", "manual"),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TrainingPlan":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        lines = [
            f"plan[{self.source}]: B={self.global_batch} G={self.gacc} "
            f"S={self.num_stages} gpus={self.total_gpus}"
        ]
        for idx, stage in enumerate(self.stages):
            lines.append(f"  stage {idx}: {stage.describe()}")
        return "\n".join(lines)


def uniform_plan(model: ModelConfig, cluster: ClusterSpec, *, global_batch: int,
                 gacc: int, num_stages: int, dp: int, tp: int, zero: int = 0,
                 ckpt_all: bool = False, **offloads: float) -> TrainingPlan:
    """Helper: identical configuration for every stage (baseline style)."""
    if model.num_layers % num_stages != 0:
        raise PlanValidationError(
            f"{model.num_layers} layers not divisible into {num_stages} stages"
        )
    layers = model.num_layers // num_stages
    microbatch = global_batch // (gacc * dp)
    if microbatch * gacc * dp != global_batch:
        raise PlanValidationError("global batch not divisible by G*dp")
    stage = StageConfig(
        layers=layers, microbatch=microbatch, dp=dp, tp=tp, zero=zero,
        ckpt=layers if ckpt_all else 0, **offloads,
    )
    return TrainingPlan(
        global_batch=global_batch, gacc=gacc,
        stages=tuple(stage for _ in range(num_stages)),
        source="uniform",
    )
