"""Search-space definitions and size accounting (paper Figure 5/13/16).

A :class:`SearchSpace` declares which optimizations a tuner may vary.
The predefined spaces mirror the paper's incremental ablation:

* ``SPACE_3D``           — DP/TP/PP/microbatch with full-or-none
  recomputation (the Megatron-LM space);
* ``SPACE_3D_ZERO``      — + ZeRO-1/2/3;
* ``SPACE_3D_CKPT``      — + per-stage flexible checkpoint counts;
* ``SPACE_OO`` .. ``SPACE_WO`` — + optimizer / activation / gradient /
  weight offloading ratios, cumulatively;
* ``SPACE_MIST``         — everything (+ imbalance-aware pipelining).

:func:`log10_configurations` reproduces the configuration-count growth
of Figure 5: the unpruned cross-product of all options over all layer
partitions, computed in log-space (the counts reach ~10^150).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = [
    "SearchSpace",
    "SPACE_3D",
    "SPACE_3D_ZERO",
    "SPACE_3D_CKPT",
    "SPACE_OO",
    "SPACE_AO",
    "SPACE_GO",
    "SPACE_WO",
    "SPACE_MIST",
    "INCREMENTAL_SPACES",
    "NAMED_SPACES",
    "get_space",
    "log10_configurations",
    "space_from_dict",
    "space_to_dict",
]

#: default quantization grid for offloading ratios during tuning
DEFAULT_OFFLOAD_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class SearchSpace:
    """What the tuner is allowed to vary."""

    name: str
    #: ZeRO levels available per stage
    zero_levels: tuple[int, ...] = (0,)
    #: flexible per-stage checkpoint counts (False: full or none only)
    tune_ckpt: bool = False
    #: "auto": 0/full (or flexible per ``tune_ckpt``); "full": always
    #: recompute every layer (the paper's Fig. 2(b) baseline policy)
    ckpt_policy: str = "auto"
    #: number of checkpoint grid points when flexible (incl. endpoints)
    ckpt_grid_points: int = 9
    #: offloading grids — empty tuple disables that ratio
    oo_grid: tuple[float, ...] = (0.0,)
    ao_grid: tuple[float, ...] = (0.0,)
    go_grid: tuple[float, ...] = (0.0,)
    wo_grid: tuple[float, ...] = (0.0,)
    #: account for inter-microbatch imbalance in the objective (Eq. 1)
    imbalance_aware: bool = True
    #: per-stage layer counts explored around the balanced split
    layer_slack: int = 2
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def tunes_offloading(self) -> bool:
        return any(len(grid) > 1
                   for grid in (self.oo_grid, self.ao_grid, self.go_grid,
                                self.wo_grid))

    def with_(self, **changes: Any) -> "SearchSpace":
        return replace(self, **changes)


# Megatron-LM-equivalent space: uniform layer splits, full-or-none
# recomputation, distributed optimizer (ZeRO-1) available.
SPACE_3D = SearchSpace(name="3D Parallelism", zero_levels=(0, 1),
                       layer_slack=0)
SPACE_3D_ZERO = SPACE_3D.with_(name="+ZeRO-2/3", zero_levels=(0, 1, 2, 3),
                               layer_slack=2)
SPACE_3D_CKPT = SPACE_3D_ZERO.with_(name="+Flexible CKPT", tune_ckpt=True)
SPACE_OO = SPACE_3D_CKPT.with_(name="+OO", oo_grid=DEFAULT_OFFLOAD_GRID)
SPACE_AO = SPACE_OO.with_(name="+AO", ao_grid=DEFAULT_OFFLOAD_GRID)
SPACE_GO = SPACE_AO.with_(name="+GO", go_grid=(0.0, 0.5, 1.0))
SPACE_WO = SPACE_GO.with_(name="+WO", wo_grid=(0.0, 0.5, 1.0))
SPACE_MIST = SPACE_WO.with_(name="Mist")

#: the cumulative spaces of the Fig. 13 speedup breakdown
INCREMENTAL_SPACES: tuple[SearchSpace, ...] = (
    SPACE_3D,
    SPACE_3D_ZERO,
    SPACE_3D_CKPT,
    SPACE_AO.with_(name="+Offloading"),
    SPACE_MIST.with_(name="+Imbalance-Aware Pipelining"),
)
# Imbalance-unaware variants for ablations:
SPACE_MIST_NO_IMBALANCE = SPACE_MIST.with_(
    name="Mist w/o Imbalance-Aware PP", imbalance_aware=False
)
__all__.append("SPACE_MIST_NO_IMBALANCE")

#: slug -> predefined space; the stable identifiers :mod:`repro.api` jobs
#: use to reference a search space in serialized form
NAMED_SPACES: dict[str, SearchSpace] = {
    "3d": SPACE_3D,
    "3d-zero": SPACE_3D_ZERO,
    "3d-ckpt": SPACE_3D_CKPT,
    "oo": SPACE_OO,
    "ao": SPACE_AO,
    "go": SPACE_GO,
    "wo": SPACE_WO,
    "mist": SPACE_MIST,
    "mist-no-imbalance": SPACE_MIST_NO_IMBALANCE,
}

#: dataclass fields that are float grids (tuples in Python, lists in JSON)
_GRID_FIELDS = ("oo_grid", "ao_grid", "go_grid", "wo_grid")


def get_space(name: str) -> SearchSpace:
    """Look up a predefined space by slug (or its display name)."""
    key = name.lower()
    if key in NAMED_SPACES:
        return NAMED_SPACES[key]
    for space in NAMED_SPACES.values():
        if space.name.lower() == key:
            return space
    raise KeyError(
        f"unknown search space {name!r}; options: {sorted(NAMED_SPACES)}"
    )


def space_to_dict(space: SearchSpace) -> dict:
    """JSON-ready dict for an arbitrary (possibly customized) space."""
    return {
        "name": space.name,
        "zero_levels": [int(z) for z in space.zero_levels],
        "tune_ckpt": space.tune_ckpt,
        "ckpt_policy": space.ckpt_policy,
        "ckpt_grid_points": space.ckpt_grid_points,
        **{f: [float(v) for v in getattr(space, f)] for f in _GRID_FIELDS},
        "imbalance_aware": space.imbalance_aware,
        "layer_slack": space.layer_slack,
    }


def space_from_dict(data: dict) -> SearchSpace:
    """Inverse of :func:`space_to_dict` (lists become tuples again)."""
    return SearchSpace(
        name=data["name"],
        zero_levels=tuple(int(z) for z in data.get("zero_levels", (0,))),
        tune_ckpt=bool(data.get("tune_ckpt", False)),
        ckpt_policy=data.get("ckpt_policy", "auto"),
        ckpt_grid_points=int(data.get("ckpt_grid_points", 9)),
        **{f: tuple(float(v) for v in data.get(f, (0.0,)))
           for f in _GRID_FIELDS},
        imbalance_aware=bool(data.get("imbalance_aware", True)),
        layer_slack=int(data.get("layer_slack", 2)),
    )


def space_ref(space: SearchSpace) -> "str | dict":
    """Serializable reference: a slug when predefined, else a full dict."""
    for slug, named in NAMED_SPACES.items():
        if named == space:
            return slug
    return space_to_dict(space)


__all__.append("space_ref")

#: "continuous" ratio resolution assumed when counting configurations
_CONTINUOUS_POINTS = 100


def _log10_comb(n: int, k: int) -> float:
    if k < 0 or k > n:
        return -math.inf
    return (math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)) \
        / math.log(10)


def _log10_add(a: float, b: float) -> float:
    """log10(10^a + 10^b) without overflow."""
    if not math.isfinite(a):
        return b
    if not math.isfinite(b):
        return a
    high, low = max(a, b), min(a, b)
    return high + math.log10(1.0 + 10.0 ** (low - high))


def log10_configurations(num_layers: int, num_gpus: int, *,
                         zero: bool = False, ckpt: bool = False,
                         oo: bool = False, go: bool = False,
                         po: bool = False, ao: bool = False,
                         max_stages: int | None = None) -> float:
    """log10 of the unpruned configuration count (Figure 5).

    Counts, for every pipeline depth ``S``: the layer compositions
    ``C(L-1, S-1)``, and per stage the (dp, tp, b) grids and every
    enabled memory optimization (ZeRO levels x checkpoint counts x
    offloading ratios at ~:data:`_CONTINUOUS_POINTS` resolution each).
    """
    if num_layers < 1 or num_gpus < 1:
        raise ValueError("need at least one layer and one GPU")
    max_stages = min(max_stages or num_gpus, num_layers, num_gpus)

    # per-stage multiplicative factor (log10)
    parallel_options = max(1, int(math.log2(num_gpus)) + 1)  # dp*tp splits
    micro_options = 4  # candidate microbatch sizes
    per_stage = math.log10(parallel_options * micro_options)
    if zero:
        per_stage += math.log10(4)
    if ckpt:
        per_stage += math.log10(max(2, num_layers // 2))
    for enabled in (oo, go, po, ao):
        if enabled:
            per_stage += math.log10(_CONTINUOUS_POINTS)

    total = -math.inf
    s = 1
    while s <= max_stages:
        if num_gpus % s == 0:
            log_count = _log10_comb(num_layers - 1, s - 1) + s * per_stage
            total = _log10_add(total, log_count)
        s *= 2
    return total
