"""Mist's hierarchical auto-tuner (paper Section 5.3, Figure 6).

Given a model, a cluster, and a global batch size, enumerate the outer
discrete choices — pipeline depth ``S`` and gradient-accumulation steps
``G`` — and for each:

1. **intra-stage tuning** builds Pareto frontiers of
   ``(t_stable, d_delta)`` per stage position and candidate layer count
   (batched symbolic evaluation, memory-constrained);
2. **inter-stage tuning** assembles them through the imbalance-aware
   MILP (Eq. 2) into the best pipeline partition.

The winner across all ``(S, G)`` becomes the output
:class:`~repro.core.plan.TrainingPlan`. Searching the ``(S, G)`` grid is
embarrassingly parallel (the paper parallelizes it across cores, §5.3 /
Fig. 16): :meth:`MistTuner.search` fans the per-``(S, G)`` solves over a
thread pool when ``parallelism > 1``, and merges results in enumeration
order so the chosen plan is identical to the serial path.

On a :class:`~repro.hardware.HeterogeneousCluster` the outer loop
additionally enumerates stage -> device-group assignments
(:func:`repro.core.inter_stage.group_stage_assignments`): each group
gets its own traced cost model and
:class:`~repro.core.analyzer.SymbolicPerformanceAnalyzer` bounded by
that group's GPU memory, so a stage menu offered to the inter-stage
MILP always respects the device that would host it. A single-group
heterogeneous cluster is reduced to its plain
:class:`~repro.hardware.ClusterSpec` and follows the homogeneous code
path bit for bit.

Deprecation: :meth:`MistTuner.tune` (the pre-registry entry point) has
emitted :class:`DeprecationWarning` since v1.1 and will be removed in
v2.0 — use :meth:`MistTuner.search` or :func:`repro.api.solve`.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections.abc import Mapping
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.interference import InterferenceModel
from repro.hardware import ClusterSpec, HeterogeneousCluster
from repro.models.config import ModelConfig
from repro.tracing import trace

from . import inter_stage
from .analyzer import SymbolicPerformanceAnalyzer
from .inter_stage import StageSlot, group_stage_assignments
from .intra_stage import IntraStageTuner, StageShape
from .objectives import throughput
from .plan import TrainingPlan
from .spaces import SPACE_MIST, SearchSpace

__all__ = ["MistTuner", "SearchCancelled", "TuningResult"]


class SearchCancelled(RuntimeError):
    """Raised when a ``should_stop`` hook aborts a running search.

    Cooperative: the tuner polls the hook between (S, G) cells, so a
    cancellation lands at the next cell boundary, never mid-solve.
    """


@dataclass
class TuningResult:
    """Outcome of one auto-tuning run."""

    best_plan: TrainingPlan | None
    predicted_iteration_time: float
    predicted_throughput: float
    tuning_time_seconds: float
    configurations_evaluated: int
    #: per-(S, G) best objective, for diagnostics
    search_log: list[dict] = field(default_factory=list)
    #: predicted-best plans across (S, G) candidates, best first — the
    #: runner executes these in order (the artifact's final
    #: benchmark-one-case step), which de-biases the winner's curse of
    #: picking the argmin of noisy predictions
    top_plans: list[TrainingPlan] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.best_plan is not None


class MistTuner:
    """Memory-, overlap- and imbalance-aware automatic tuner.

    ``cluster`` may be a homogeneous :class:`ClusterSpec` or a
    :class:`~repro.hardware.HeterogeneousCluster`. ``interference``
    accepts a single :class:`InterferenceModel` (applied everywhere), a
    mapping from device-group name to model (heterogeneous clusters),
    or ``None`` for each device's default.
    """

    def __init__(self, model: ModelConfig,
                 cluster: "ClusterSpec | HeterogeneousCluster", *,
                 seq_len: int, flash: bool = True,
                 space: SearchSpace = SPACE_MIST,
                 interference: "InterferenceModel | Mapping | None" = None,
                 max_pareto_points: int = 8,
                 max_gacc_candidates: int | None = None):
        self.model = model
        if isinstance(cluster, HeterogeneousCluster) and cluster.is_homogeneous:
            # one group == a plain cluster; take the (identical) fast path
            cluster = cluster.groups[0].cluster
        self.cluster = cluster
        self.hetero = (cluster if isinstance(cluster, HeterogeneousCluster)
                       else None)
        self.seq_len = seq_len
        self.flash = flash
        self.space = space
        if self.hetero is None:
            traced = trace(model, cluster.gpu, flash=flash)
            self.analyzer = SymbolicPerformanceAnalyzer(
                traced, cluster,
                interference=self._group_interference(interference, ""),
            )
            self.analyzers = {"": self.analyzer}
        else:
            self.analyzers = {}
            for group in self.hetero.groups:
                traced = trace(model, group.gpu, flash=flash)
                self.analyzers[group.name] = SymbolicPerformanceAnalyzer(
                    traced, group.cluster,
                    interference=self._group_interference(interference,
                                                          group.name),
                    gpu=group.gpu,
                )
            # convenience alias: the first group's analyzer
            self.analyzer = self.analyzers[self.hetero.groups[0].name]
        self.max_pareto_points = max_pareto_points
        self.max_gacc_candidates = max_gacc_candidates

    @staticmethod
    def _group_interference(interference, group_name: str):
        """Resolve the interference model for one device group."""
        if interference is None or isinstance(interference, InterferenceModel):
            return interference
        if isinstance(interference, Mapping):
            return interference.get(group_name)
        raise TypeError(
            "interference must be an InterferenceModel, a mapping from "
            f"device-group name to model, or None; got {type(interference)}"
        )

    # -- candidate enumeration ---------------------------------------------

    def _stage_counts(self) -> list[int]:
        return [
            s for s in self.cluster.pipeline_stage_counts()
            if s <= self.model.num_layers
        ]

    def _gacc_candidates(self, global_batch: int, num_stages: int) -> list[int]:
        """Gradient-accumulation steps worth trying for this depth."""
        out = []
        g = 1
        while g <= global_batch:
            if global_batch % g == 0:
                out.append(g)
            g *= 2
        if global_batch not in out:
            out.append(global_batch)
        # Deep pipelines need G >= S to fill; keep one undersized G as a
        # fallback but skip the clearly wasteful ones.
        if num_stages > 1:
            out = [g for g in out if g * 2 >= num_stages] or out[-1:]
        if self.max_gacc_candidates is not None and \
                len(out) > self.max_gacc_candidates:
            # keep the spread: smallest, largest, and evenly in between
            idx = np.unique(np.round(
                np.linspace(0, len(out) - 1, self.max_gacc_candidates)
            ).astype(int))
            out = [out[i] for i in idx]
        return out

    def _layer_counts(self, num_stages: int, *,
                      slack: int | None = None) -> list[int]:
        """Candidate per-stage layer counts around the balanced split."""
        total = self.model.num_layers
        base = total / num_stages
        if slack is None:
            slack = self.space.layer_slack
        lo = max(1, int(np.floor(base)) - slack)
        hi = min(total - (num_stages - 1), int(np.ceil(base)) + slack)
        return list(range(lo, hi + 1))

    # -- main loop ------------------------------------------------------------

    def _sg_grid(self, global_batch: int) -> list[tuple]:
        """The outer grid: (num_stages, stage_gpus, gacc, layers, groups).

        Homogeneous clusters enumerate pipeline depths with equal-size
        stages (``groups is None``); heterogeneous clusters enumerate
        stage -> device-group assignments, where ``stage_gpus`` varies
        per stage and lives inside the assignment.
        """
        grid = []
        if self.hetero is not None:
            # mixed memory capacities want more skew than the balanced
            # split allows, so widen the per-stage layer slack by one
            slack = self.space.layer_slack + 1
            for assignment in group_stage_assignments(
                    self.hetero, self.model.num_layers):
                num_stages = len(assignment)
                layer_counts = self._layer_counts(num_stages, slack=slack)
                for gacc in self._gacc_candidates(global_batch, num_stages):
                    grid.append((num_stages, None, gacc, layer_counts,
                                 assignment))
            return grid
        for num_stages in self._stage_counts():
            stage_gpus = self.cluster.total_gpus // num_stages
            layer_counts = self._layer_counts(num_stages)
            for gacc in self._gacc_candidates(global_batch, num_stages):
                grid.append((num_stages, stage_gpus, gacc, layer_counts,
                             None))
        return grid

    def search(self, global_batch: int, *, parallelism: int = 1,
               verbose: bool = False, keep_top: int = 3,
               progress=None, should_stop=None) -> TuningResult:
        """Solve every (S, G) candidate and return the ranked outcome.

        ``parallelism > 1`` fans the independent per-(S, G) solves over
        that many worker threads (``0`` means one per CPU core); results
        are merged in enumeration order, so the returned plans are
        identical regardless of worker count.

        ``progress(done, total)`` is invoked after every solved (S, G)
        cell (from worker threads when parallel — keep it cheap and
        thread-safe). ``should_stop()`` is polled before each cell; the
        first ``True`` raises :class:`SearchCancelled`, discarding
        partial results. Both hooks exist for long-running callers (the
        ``repro serve`` daemon) that need liveness and cancellation.
        """
        start = time.perf_counter()
        grid = self._sg_grid(global_batch)
        total = len(grid)
        done_lock = threading.Lock()
        done = [0]

        def _solve_cell(task):
            if should_stop is not None and should_stop():
                raise SearchCancelled(
                    f"search cancelled after {done[0]}/{total} cells")
            solution = self._tune_pipeline(global_batch, *task)
            with done_lock:
                done[0] += 1
                if progress is not None:
                    progress(done[0], total)
            return solution

        workers = parallelism if parallelism > 0 else (os.cpu_count() or 1)
        if workers > 1 and len(grid) > 1:
            with ThreadPoolExecutor(
                    max_workers=min(workers, len(grid))) as pool:
                solutions = list(pool.map(_solve_cell, grid))
        else:
            solutions = [_solve_cell(task) for task in grid]

        candidates: list[tuple[float, TrainingPlan]] = []
        evaluated = 0
        search_log: list[dict] = []
        for (num_stages, _, gacc, _, assignment), (solution, n_evaluated) \
                in zip(grid, solutions):
            evaluated += n_evaluated
            # infeasible cells log None, not inf — search logs must stay
            # strictly JSON-serializable (SolveReport round-trip contract)
            entry = {
                "num_stages": num_stages,
                "gacc": gacc,
                "objective": float(solution.objective) if solution else None,
            }
            if assignment is not None:
                entry["groups"] = [slot.group for slot in assignment]
            search_log.append(entry)
            if verbose:  # pragma: no cover - console aid
                obj = entry["objective"]
                print(f"  S={num_stages} G={gacc}: "
                      + (f"{obj * 1e3:.1f} ms" if obj is not None
                         else "infeasible"))
            if solution:
                candidates.append((
                    solution.objective,
                    TrainingPlan(
                        global_batch=global_batch,
                        gacc=gacc,
                        stages=tuple(p.config for p in solution.choices),
                        source=f"mist[{self.space.name}]",
                    ),
                ))

        candidates.sort(key=lambda item: item[0])
        best_objective = candidates[0][0] if candidates else np.inf
        best_plan = candidates[0][1] if candidates else None
        elapsed = time.perf_counter() - start
        return TuningResult(
            best_plan=best_plan,
            predicted_iteration_time=best_objective,
            predicted_throughput=(
                throughput(global_batch, best_objective)
                if np.isfinite(best_objective) else 0.0
            ),
            tuning_time_seconds=elapsed,
            configurations_evaluated=evaluated,
            search_log=search_log,
            top_plans=[plan for _, plan in candidates[:keep_top]],
        )

    def tune(self, global_batch: int, *, verbose: bool = False,
             keep_top: int = 3) -> TuningResult:
        """Deprecated alias for :meth:`search` (serial path).

        Deprecated since v1.1 (the ``repro.api`` registry redesign);
        scheduled for removal in v2.0. Call :meth:`search` or go
        through :func:`repro.api.solve` — see the deprecation policy in
        ``docs/API.md``.
        """
        warnings.warn(
            "MistTuner.tune() is deprecated since v1.1 and will be removed "
            "in v2.0; use MistTuner.search() or the repro.api solver "
            "registry (repro.api.solve).",
            DeprecationWarning, stacklevel=2,
        )
        return self.search(global_batch, verbose=verbose, keep_top=keep_top)

    # -- per-(S, G) solve ---------------------------------------------------------

    def _tune_pipeline(self, global_batch: int, num_stages: int,
                       stage_gpus: int, gacc: int,
                       layer_counts: list[int],
                       assignment: "tuple[StageSlot, ...] | None" = None):
        """Solve one (S, G) candidate.

        Returns ``(solution, evaluated)`` where ``evaluated`` is the
        number of configurations the intra-stage tuner scored — each
        call owns fresh :class:`IntraStageTuner`\\ s, so the method is
        safe to run concurrently across (S, G) candidates. With an
        ``assignment`` (heterogeneous clusters) each stage is tuned by
        its device group's analyzer.
        """
        if assignment is not None:
            return self._tune_pipeline_hetero(global_batch, gacc,
                                              layer_counts, assignment)
        intra = IntraStageTuner(
            self.analyzer, self.space, global_batch=global_batch,
            seq_len=self.seq_len, max_pareto_points=self.max_pareto_points,
        )

        if num_stages == 1:
            shape = StageShape(stage_gpus=stage_gpus, gacc=gacc, inflight=1,
                               has_pre=True, has_post=True)
            menus = [intra.tune(shape, [self.model.num_layers])]
            solution = inter_stage.solve(
                menus, self.model.num_layers, gacc,
                imbalance_aware=self.space.imbalance_aware,
            )
            return solution, intra.evaluated

        # Stage positions with identical (inflight, pre, post) share menus.
        menus = []
        cache: dict[tuple, dict] = {}
        for idx in range(num_stages):
            inflight = min(gacc, num_stages - idx)
            key = (inflight, idx == 0, idx == num_stages - 1)
            if key not in cache:
                shape = StageShape(
                    stage_gpus=stage_gpus, gacc=gacc, inflight=inflight,
                    has_pre=key[1], has_post=key[2],
                )
                cache[key] = intra.tune(shape, layer_counts)
            menus.append(cache[key])
        solution = inter_stage.solve(
            menus, self.model.num_layers, gacc,
            imbalance_aware=self.space.imbalance_aware,
        )
        return solution, intra.evaluated

    def _tune_pipeline_hetero(self, global_batch: int, gacc: int,
                              layer_counts: list[int],
                              assignment: "tuple[StageSlot, ...]"):
        """Solve one heterogeneous (assignment, G) candidate.

        Stage menus come from the analyzer of the stage's device group,
        so every Pareto point is priced with that group's cost model
        and filtered against that group's memory budget; stages
        adjacent to a group boundary additionally price pipeline p2p
        over the inter-group link (the same clamp the execution engine
        applies). Stage positions sharing (group, gpus, inflight, pre,
        post, boundary) share menus, mirroring the homogeneous cache.
        """
        num_stages = len(assignment)
        intra = {
            name: IntraStageTuner(
                self.analyzers[name], self.space, global_batch=global_batch,
                seq_len=self.seq_len,
                max_pareto_points=self.max_pareto_points,
            )
            for name in {slot.group for slot in assignment}
        }
        boundary = [False] * num_stages
        for i in range(num_stages - 1):
            if assignment[i].group != assignment[i + 1].group:
                boundary[i] = boundary[i + 1] = True
        menus = []
        cache: dict[tuple, dict] = {}
        for idx, slot in enumerate(assignment):
            inflight = min(gacc, num_stages - idx)
            key = (slot.group, slot.stage_gpus, inflight,
                   idx == 0, idx == num_stages - 1, boundary[idx])
            if key not in cache:
                shape = StageShape(
                    stage_gpus=slot.stage_gpus, gacc=gacc, inflight=inflight,
                    has_pre=key[3], has_post=key[4], group=slot.group,
                    p2p_bandwidth_cap=(self.hetero.inter_group_bandwidth
                                       if boundary[idx] else None),
                    p2p_latency_floor=(self.hetero.inter_group_latency
                                       if boundary[idx] else None),
                )
                counts = (layer_counts if num_stages > 1
                          else [self.model.num_layers])
                cache[key] = intra[slot.group].tune(shape, counts)
            menus.append(cache[key])
        solution = inter_stage.solve(
            menus, self.model.num_layers, gacc,
            imbalance_aware=self.space.imbalance_aware,
        )
        return solution, sum(t.evaluated for t in intra.values())
