"""Mist's hierarchical auto-tuner (paper Section 5.3, Figure 6).

Given a model, a cluster, and a global batch size, enumerate the outer
discrete choices — pipeline depth ``S`` and gradient-accumulation steps
``G`` — and for each:

1. **intra-stage tuning** builds Pareto frontiers of
   ``(t_stable, d_delta)`` per stage position and candidate layer count
   (batched symbolic evaluation, memory-constrained);
2. **inter-stage tuning** assembles them through the imbalance-aware
   MILP (Eq. 2) into the best pipeline partition.

The winner across all ``(S, G)`` becomes the output
:class:`~repro.core.plan.TrainingPlan`. Searching the ``(S, G)`` grid is
embarrassingly parallel (the paper parallelizes it across cores, §5.3 /
Fig. 16): :meth:`MistTuner.search` fans the per-``(S, G)`` solves over a
thread pool when ``parallelism > 1``, and merges results in enumeration
order so the chosen plan is identical to the serial path.

Pruning (Fig. 16's tractability claim): by default the search runs the
**prune-and-memoize engine** instead of exhaustively solving every
cell, while still returning bit-identical plans:

* a *memory-feasibility pre-filter* evaluates the symbolic peak-memory
  expressions alone and rejects over-budget configurations before any
  runtime cost evaluation (:meth:`IntraStageTuner.tune` with
  ``prefilter=True`` — the exact constraint, applied earlier);
* a *branch-and-bound cut* orders cells by an optimistic compute-only,
  interference-free lower bound
  (:func:`repro.core.inter_stage.objective_lower_bound`), seeds the
  first incumbent from the cell a Megatron-style uniform heuristic
  prefers, and skips any cell whose bound already exceeds the current
  ``keep_top``-th best incumbent — so ``top_plans`` stays identical,
  not just the winner. Incumbents come only from solved cells (the
  heuristic chooses *where to look first*, never the bound itself),
  which is what makes the bit-identity guarantee unconditional;
* a *keyed memoization layer* (:class:`repro.core.memo.MenuMemo`)
  shares identical stage-cost subproblems — same layer slice, device
  group, parallelism, budget — across cells, across the parallel
  fan-out workers, and across repeated searches.

Explored/pruned/memo-hit counters are reported per search in
:class:`SearchStats` (surfaced as ``SolveReport.search_stats`` and in
the service ``/metrics``). ``prune=False`` restores the exhaustive
reference path the property tests and `repro bench` compare against.

On a :class:`~repro.hardware.HeterogeneousCluster` the outer loop
additionally enumerates stage -> device-group assignments
(:func:`repro.core.inter_stage.group_stage_assignments`): each group
gets its own traced cost model and
:class:`~repro.core.analyzer.SymbolicPerformanceAnalyzer` bounded by
that group's GPU memory, so a stage menu offered to the inter-stage
MILP always respects the device that would host it. A single-group
heterogeneous cluster is reduced to its plain
:class:`~repro.hardware.ClusterSpec` and follows the homogeneous code
path bit for bit.

Elastic re-tuning: :meth:`MistTuner.replan` warm-starts the same
pruned search from an incumbent plan after a cluster change
(:class:`~repro.hardware.ClusterDelta`) — the incumbent's (S, G) cell
is solved first, every later cell prunes against the best solved
objective, and per-device-group memo scoping keeps menus of unchanged
groups warm — while returning a ``best_plan`` bit-identical to a cold
:meth:`MistTuner.search` of the new cluster.

Deprecation: :meth:`MistTuner.tune` (the pre-registry entry point) has
emitted :class:`DeprecationWarning` since v1.1 and will be removed in
v2.0 — use :meth:`MistTuner.search` or :func:`repro.api.solve`.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
import time
import warnings
from collections.abc import Callable, Mapping
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.interference import InterferenceModel
from repro.hardware import ClusterSpec, HeterogeneousCluster
from repro.models.config import ModelConfig
from repro.symbolic import validate_engine
from repro.tracing import trace

from . import inter_stage
from .analyzer import SymbolicPerformanceAnalyzer
from .inter_stage import (
    StageSlot,
    group_stage_assignments,
    objective_lower_bound,
)
from .intra_stage import (
    IntraStageTuner,
    ParetoPoint,
    StageShape,
    stage_parallelism_options,
)
from .memo import GLOBAL_MENU_MEMO, MemoEntry, MenuMemo
from .objectives import pipeline_iteration_time, throughput
from .plan import TrainingPlan
from .spaces import SPACE_MIST, SearchSpace

__all__ = ["MistTuner", "SearchCancelled", "SearchStats", "TuningResult"]


class SearchCancelled(RuntimeError):
    """Raised when a ``should_stop`` hook aborts a running search.

    Cooperative: the tuner polls the hook between (S, G) cells —
    explored *and* pruned — so a cancellation lands at the next cell
    boundary, never mid-solve.
    """


@dataclass
class SearchStats:
    """Explored/pruned/memoized accounting for one search.

    ``configs_evaluated`` / ``configs_prefiltered`` are *deterministic*
    regardless of memo warmth: a memo hit replays the counters the
    original computation recorded. ``memo_hits`` / ``memo_misses`` are
    the telemetry that distinguishes replay from fresh work. Under a
    parallel pruned search the explored/pruned split may vary slightly
    run-to-run (incumbents arrive in timing-dependent order); the
    returned plans never do. All counters are also independent of
    ``engine`` — both evaluation paths score the same configurations.
    """

    #: False when the search ran the exhaustive reference path
    prune: bool = True
    #: cost-model evaluation path ("vectorized" or "interpreted")
    engine: str = "vectorized"
    cells_total: int = 0
    cells_explored: int = 0
    #: cells skipped by the branch-and-bound cut
    cells_pruned: int = 0
    #: cells with no feasible (dp, tp, b) option at all
    cells_infeasible: int = 0
    configs_evaluated: int = 0
    configs_prefiltered: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    #: False disables the bound cut (e.g. interference factors < 1)
    bound_pruning: bool = True
    #: Megatron-style heuristic seed cell, when one was feasible:
    #: ``{"num_stages": S, "gacc": G, "objective": predicted}``
    seed: dict | None = None
    #: True when the search was warm-started from an incumbent plan
    #: (:meth:`MistTuner.replan`)
    warm: bool = False
    #: the incumbent's cell, when warm: ``{"num_stages": S, "gacc": G,
    #: "matched": bool}`` — ``matched`` is False when the cell no
    #: longer exists on the delta'd cluster and the replan fell back to
    #: cold ordering
    warm_seed: dict | None = None

    def to_dict(self) -> dict:
        return {
            "prune": self.prune,
            "engine": self.engine,
            "cells_total": self.cells_total,
            "cells_explored": self.cells_explored,
            "cells_pruned": self.cells_pruned,
            "cells_infeasible": self.cells_infeasible,
            "configs_evaluated": self.configs_evaluated,
            "configs_prefiltered": self.configs_prefiltered,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "bound_pruning": self.bound_pruning,
            "seed": dict(self.seed) if self.seed else None,
            "warm": self.warm,
            "warm_seed": dict(self.warm_seed) if self.warm_seed else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchStats":
        """Rebuild from :meth:`to_dict` output (manifest resume path)."""
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        for key in ("seed", "warm_seed"):
            value = known.get(key)
            if value is not None:
                known[key] = dict(value)
        return cls(**known)


@dataclass
class _CellCounts:
    """Per-cell work accounting, merged into :class:`SearchStats`."""

    evaluated: int = 0
    prefiltered: int = 0
    memo_hits: int = 0
    memo_misses: int = 0


@dataclass
class TuningResult:
    """Outcome of one auto-tuning run."""

    best_plan: TrainingPlan | None
    predicted_iteration_time: float
    predicted_throughput: float
    tuning_time_seconds: float
    configurations_evaluated: int
    #: per-(S, G) best objective, for diagnostics
    search_log: list[dict] = field(default_factory=list)
    #: predicted-best plans across (S, G) candidates, best first — the
    #: runner executes these in order (the artifact's final
    #: benchmark-one-case step), which de-biases the winner's curse of
    #: picking the argmin of noisy predictions
    top_plans: list[TrainingPlan] = field(default_factory=list)
    #: explored/pruned/memo-hit accounting for this search
    stats: "SearchStats | None" = None

    @property
    def found(self) -> bool:
        return self.best_plan is not None


class _Incumbents:
    """Thread-safe k-best objective tracker for the bound cut.

    The cut may skip a cell only when its optimistic bound exceeds the
    *k-th best solved* objective (k = ``keep_top``): anything pruned is
    then provably outside the final top-k, so ``top_plans`` — not just
    the winner — matches the exhaustive search bit for bit. A stale
    (worse) threshold read under contention only makes the cut more
    conservative, never wrong.
    """

    def __init__(self, k: int):
        self._k = k
        self._lock = threading.Lock()
        self._best: list[float] = []

    def offer(self, objective: float) -> None:
        with self._lock:
            bisect.insort(self._best, objective)
            del self._best[self._k:]

    def threshold(self) -> float:
        """The k-th best objective so far, or +inf before k solutions."""
        with self._lock:
            if len(self._best) < self._k:
                return math.inf
            return self._best[-1]


class MistTuner:
    """Memory-, overlap- and imbalance-aware automatic tuner.

    ``cluster`` may be a homogeneous :class:`ClusterSpec` or a
    :class:`~repro.hardware.HeterogeneousCluster`. ``interference``
    accepts a single :class:`InterferenceModel` (applied everywhere), a
    mapping from device-group name to model (heterogeneous clusters),
    or ``None`` for each device's default.
    """

    def __init__(self, model: ModelConfig,
                 cluster: "ClusterSpec | HeterogeneousCluster", *,
                 seq_len: int, flash: bool = True,
                 space: SearchSpace = SPACE_MIST,
                 interference: "InterferenceModel | Mapping | None" = None,
                 max_pareto_points: int = 8,
                 max_gacc_candidates: int | None = None):
        self.model = model
        if isinstance(cluster, HeterogeneousCluster) and cluster.is_homogeneous:
            # one group == a plain cluster; take the (identical) fast path
            cluster = cluster.groups[0].cluster
        self.cluster = cluster
        self.hetero = (cluster if isinstance(cluster, HeterogeneousCluster)
                       else None)
        self.seq_len = seq_len
        self.flash = flash
        self.space = space
        if self.hetero is None:
            traced = trace(model, cluster.gpu, flash=flash)
            self.analyzer = SymbolicPerformanceAnalyzer(
                traced, cluster,
                interference=self._group_interference(interference, ""),
            )
            self.analyzers = {"": self.analyzer}
        else:
            self.analyzers = {}
            for group in self.hetero.groups:
                traced = trace(model, group.gpu, flash=flash)
                self.analyzers[group.name] = SymbolicPerformanceAnalyzer(
                    traced, group.cluster,
                    interference=self._group_interference(interference,
                                                          group.name),
                    gpu=group.gpu,
                )
            # convenience alias: the first group's analyzer
            self.analyzer = self.analyzers[self.hetero.groups[0].name]
        self.max_pareto_points = max_pareto_points
        self.max_gacc_candidates = max_gacc_candidates
        # Everything a memoized stage-cost subproblem depends on besides
        # its StageShape/layer counts/global batch. The scope is *per
        # device group*: a stage menu is priced entirely by its group's
        # sub-cluster (plus the p2p clamps already inside StageShape),
        # so a cluster delta that leaves a group untouched keeps that
        # group's scope — and its memo entries — valid, which is what
        # lets a replan on the delta'd cluster reuse menus for the
        # unchanged groups. Frozen-dataclass reprs spell out every
        # field, so two tuners share entries only when the group's cost
        # model is parameter-identical; false *misses* merely lose
        # sharing.
        def _group_scope(analyzer: SymbolicPerformanceAnalyzer,
                         group_cluster: "ClusterSpec | HeterogeneousCluster",
                         ) -> tuple:
            return (
                repr(self.model), repr(group_cluster), self.seq_len,
                self.flash, repr(self.space),
                analyzer.interference.fingerprint(),
                self.max_pareto_points,
            )

        if self.hetero is None:
            self._memo_scopes = {"": _group_scope(self.analyzer,
                                                  self.cluster)}
        else:
            self._memo_scopes = {
                group.name: _group_scope(self.analyzers[group.name],
                                         group.cluster)
                for group in self.hetero.groups
            }

    @staticmethod
    def _group_interference(
            interference: "InterferenceModel | Mapping | None",
            group_name: str) -> InterferenceModel | None:
        """Resolve the interference model for one device group."""
        if interference is None or isinstance(interference, InterferenceModel):
            return interference
        if isinstance(interference, Mapping):
            return interference.get(group_name)
        raise TypeError(
            "interference must be an InterferenceModel, a mapping from "
            f"device-group name to model, or None; got {type(interference)}"
        )

    # -- candidate enumeration ---------------------------------------------

    def _stage_counts(self) -> list[int]:
        return [
            s for s in self.cluster.pipeline_stage_counts()
            if s <= self.model.num_layers
        ]

    def _gacc_candidates(self, global_batch: int, num_stages: int) -> list[int]:
        """Gradient-accumulation steps worth trying for this depth."""
        out = []
        g = 1
        while g <= global_batch:
            if global_batch % g == 0:
                out.append(g)
            g *= 2
        if global_batch not in out:
            out.append(global_batch)
        # Deep pipelines need G >= S to fill; keep one undersized G as a
        # fallback but skip the clearly wasteful ones.
        if num_stages > 1:
            out = [g for g in out if g * 2 >= num_stages] or out[-1:]
        if self.max_gacc_candidates is not None and \
                len(out) > self.max_gacc_candidates:
            # keep the spread: smallest, largest, and evenly in between
            idx = np.unique(np.round(
                np.linspace(0, len(out) - 1, self.max_gacc_candidates)
            ).astype(int))
            out = [out[i] for i in idx]
        return out

    def _layer_counts(self, num_stages: int, *,
                      slack: int | None = None) -> list[int]:
        """Candidate per-stage layer counts around the balanced split."""
        total = self.model.num_layers
        base = total / num_stages
        if slack is None:
            slack = self.space.layer_slack
        lo = max(1, int(np.floor(base)) - slack)
        hi = min(total - (num_stages - 1), int(np.ceil(base)) + slack)
        return list(range(lo, hi + 1))

    # -- main loop ------------------------------------------------------------

    def _sg_grid(self, global_batch: int) -> list[tuple]:
        """The outer grid: (num_stages, stage_gpus, gacc, layers, groups).

        Homogeneous clusters enumerate pipeline depths with equal-size
        stages (``groups is None``); heterogeneous clusters enumerate
        stage -> device-group assignments, where ``stage_gpus`` varies
        per stage and lives inside the assignment.
        """
        grid = []
        if self.hetero is not None:
            # mixed memory capacities want more skew than the balanced
            # split allows, so widen the per-stage layer slack by one
            slack = self.space.layer_slack + 1
            for assignment in group_stage_assignments(
                    self.hetero, self.model.num_layers):
                num_stages = len(assignment)
                layer_counts = self._layer_counts(num_stages, slack=slack)
                for gacc in self._gacc_candidates(global_batch, num_stages):
                    grid.append((num_stages, None, gacc, layer_counts,
                                 assignment))
            return grid
        for num_stages in self._stage_counts():
            stage_gpus = self.cluster.total_gpus // num_stages
            layer_counts = self._layer_counts(num_stages)
            for gacc in self._gacc_candidates(global_batch, num_stages):
                grid.append((num_stages, stage_gpus, gacc, layer_counts,
                             None))
        return grid

    def search(self, global_batch: int, *, parallelism: int = 1,
               verbose: bool = False, keep_top: int = 3,
               progress: "Callable[[int, int], None] | None" = None,
               should_stop: "Callable[[], bool] | None" = None,
               prune: bool = True,
               memo: MenuMemo | None = None,
               engine: str = "vectorized") -> TuningResult:
        """Solve the (S, G) grid and return the ranked outcome.

        ``prune=True`` (the default) runs the prune-and-memoize engine:
        memory-infeasible configurations are rejected symbolically
        before cost evaluation, cells whose optimistic lower bound
        exceeds the ``keep_top``-th best solved objective are skipped,
        and identical stage-cost subproblems are served from ``memo``
        (default: the process-wide
        :data:`~repro.core.memo.GLOBAL_MENU_MEMO`). The returned
        ``best_plan`` / ``top_plans`` / objectives are bit-identical to
        ``prune=False``, which runs the exhaustive reference path.

        ``parallelism > 1`` fans the independent per-(S, G) solves over
        that many worker threads (``0`` means one per CPU core); results
        are merged in enumeration order, so the returned plans are
        identical regardless of worker count.

        ``progress(done, total)`` is invoked after every handled (S, G)
        cell — solved or pruned — (from worker threads when parallel —
        keep it cheap and thread-safe). ``should_stop()`` is polled
        before each cell; the first ``True`` raises
        :class:`SearchCancelled`, discarding partial results. Both hooks
        exist for long-running callers (the ``repro serve`` daemon) that
        need liveness and cancellation.

        ``engine`` selects the cost-model evaluation path:
        ``"vectorized"`` (the default) evaluates whole config menus
        through the compiled numpy closures; ``"interpreted"`` walks
        the raw expression trees one configuration at a time. Returned
        plans, objectives and work counters are bit-identical across
        engines — the interpreted path exists as the slow reference the
        differential tests compare against.
        """
        engine = validate_engine(engine)
        if prune:
            return self._search_pruned(
                global_batch, parallelism=parallelism, verbose=verbose,
                keep_top=keep_top, progress=progress,
                should_stop=should_stop,
                memo=memo if memo is not None else GLOBAL_MENU_MEMO,
                engine=engine,
            )
        start = time.perf_counter()
        grid = self._sg_grid(global_batch)
        total = len(grid)
        done_lock = threading.Lock()
        done = [0]

        def _solve_cell(task: tuple) -> tuple:
            if should_stop is not None and should_stop():
                raise SearchCancelled(
                    f"search cancelled after {done[0]}/{total} cells")
            solution = self._tune_pipeline(global_batch, *task, engine=engine)
            with done_lock:
                done[0] += 1
                if progress is not None:
                    progress(done[0], total)
            return solution

        workers = parallelism if parallelism > 0 else (os.cpu_count() or 1)
        if workers > 1 and len(grid) > 1:
            with ThreadPoolExecutor(
                    max_workers=min(workers, len(grid))) as pool:
                solutions = list(pool.map(_solve_cell, grid))
        else:
            solutions = [_solve_cell(task) for task in grid]

        candidates: list[tuple[float, TrainingPlan]] = []
        evaluated = 0
        search_log: list[dict] = []
        for (num_stages, _, gacc, _, assignment), (solution, n_evaluated) \
                in zip(grid, solutions):
            evaluated += n_evaluated
            # infeasible cells log None, not inf — search logs must stay
            # strictly JSON-serializable (SolveReport round-trip contract)
            entry = {
                "num_stages": num_stages,
                "gacc": gacc,
                "objective": float(solution.objective) if solution else None,
            }
            if assignment is not None:
                entry["groups"] = [slot.group for slot in assignment]
            search_log.append(entry)
            if verbose:  # pragma: no cover - console aid
                obj = entry["objective"]
                print(f"  S={num_stages} G={gacc}: "
                      + (f"{obj * 1e3:.1f} ms" if obj is not None
                         else "infeasible"))
            if solution:
                candidates.append((
                    solution.objective,
                    self._plan_from_solution(solution, global_batch, gacc),
                ))

        candidates.sort(key=lambda item: item[0])
        stats = SearchStats(
            prune=False, engine=engine, cells_total=total,
            cells_explored=total, configs_evaluated=evaluated,
            bound_pruning=False,
        )
        return self._result(candidates, global_batch, start, evaluated,
                            search_log, keep_top, stats)

    def replan(self, global_batch: int, *, incumbent: TrainingPlan,
               parallelism: int = 1, verbose: bool = False,
               keep_top: int = 1,
               progress: "Callable[[int, int], None] | None" = None,
               should_stop: "Callable[[], bool] | None" = None,
               memo: MenuMemo | None = None,
               engine: str = "vectorized") -> TuningResult:
        """Warm-started search for a changed cluster (elastic re-tuning).

        ``incumbent`` is the plan that was running before the cluster
        changed (typically the cached :attr:`TuningResult.best_plan`
        of the pre-delta cluster). Only its *shape* is used — pipeline
        depth, device-group sequence, and gradient-accumulation steps
        locate the matching (S, G) cell of the new grid, which is
        solved first so the branch-and-bound cut starts from a strong
        incumbent objective on the very next cell. The plan itself is
        never re-priced or used as a bound, so the returned
        ``best_plan`` is **bit-identical** to what a cold
        :meth:`search` of this tuner would return; when the incumbent's
        cell no longer exists (``SearchStats.warm_seed["matched"]`` is
        False) the replan degrades to cold ordering and stays correct.

        Two things make a warm replan cheaper than a cold search:

        * it prunes against the *best* solved objective rather than the
          ``keep_top``-th best, so ``top_plans`` beyond the winner is
          advisory (hence the ``keep_top=1`` default — replanning wants
          *the* plan, fast);
        * the per-device-group memo scope keeps
          :class:`~repro.core.memo.MenuMemo` entries of unchanged
          groups valid across the delta, so shared stage subproblems
          replay instead of recompute (pass the same ``memo`` the cold
          search used; counters stay deterministic either way).
        """
        engine = validate_engine(engine)
        return self._search_pruned(
            global_batch, parallelism=parallelism, verbose=verbose,
            keep_top=keep_top, progress=progress, should_stop=should_stop,
            memo=memo if memo is not None else GLOBAL_MENU_MEMO,
            engine=engine, incumbent=incumbent,
        )

    def _incumbent_cell(self, grid: list[tuple],
                        plan: TrainingPlan) -> int | None:
        """Locate ``plan``'s (S, G) cell in the current grid, if any.

        Homogeneous grids match on pipeline depth and gacc (stage size
        is implied by depth). Heterogeneous grids match the stage ->
        device-group sequence too, preferring an assignment with the
        exact per-stage GPU counts but settling for the same group
        sequence when the delta resized a group.
        """
        if self.hetero is None:
            for idx, (s, _, g, _, assignment) in enumerate(grid):
                if assignment is None and s == plan.num_stages \
                        and g == plan.gacc:
                    return idx
            return None
        stage_groups = tuple(s.device_group for s in plan.stages)
        stage_gpus = tuple(s.gpus for s in plan.stages)
        group_match = None
        for idx, (s, _, g, _, assignment) in enumerate(grid):
            if assignment is None or s != plan.num_stages or g != plan.gacc:
                continue
            if tuple(slot.group for slot in assignment) != stage_groups:
                continue
            if tuple(slot.stage_gpus for slot in assignment) == stage_gpus:
                return idx
            if group_match is None:
                group_match = idx
        return group_match

    def _plan_from_solution(self, solution: inter_stage.InterStageSolution,
                            global_batch: int, gacc: int) -> TrainingPlan:
        return TrainingPlan(
            global_batch=global_batch,
            gacc=gacc,
            stages=tuple(p.config for p in solution.choices),
            source=f"mist[{self.space.name}]",
        )

    def _result(self, candidates: list[tuple[float, TrainingPlan]],
                global_batch: int, start: float,
                evaluated: int, search_log: list, keep_top: int,
                stats: SearchStats) -> TuningResult:
        best_objective = candidates[0][0] if candidates else np.inf
        best_plan = candidates[0][1] if candidates else None
        elapsed = time.perf_counter() - start
        return TuningResult(
            best_plan=best_plan,
            predicted_iteration_time=best_objective,
            predicted_throughput=(
                throughput(global_batch, best_objective)
                if np.isfinite(best_objective) else 0.0
            ),
            tuning_time_seconds=elapsed,
            configurations_evaluated=evaluated,
            search_log=search_log,
            top_plans=[plan for _, plan in candidates[:keep_top]],
            stats=stats,
        )

    # -- pruned search ------------------------------------------------------

    def _search_pruned(self, global_batch: int, *, parallelism: int,
                       verbose: bool, keep_top: int,
                       progress: "Callable[[int, int], None] | None",
                       should_stop: "Callable[[], bool] | None",
                       memo: MenuMemo, engine: str = "vectorized",
                       incumbent: TrainingPlan | None = None) -> TuningResult:
        start = time.perf_counter()
        grid = self._sg_grid(global_batch)
        total = len(grid)
        stats = SearchStats(cells_total=total, engine=engine)
        # The bound argument needs every interference factor >= 1 (see
        # InterferenceModel.min_factor); a physically meaningless model
        # silently falls back to prefilter + memoization only.
        bound_ok = all(a.interference.min_factor() >= 1.0
                       for a in self.analyzers.values())
        stats.bound_pruning = bound_ok
        bounds, feasible = self._cell_bounds(global_batch, grid,
                                             engine=engine)
        seed_idx = None
        if incumbent is not None:
            # Warm start (replan): solve the incumbent plan's (S, G)
            # cell first. Like the heuristic seed, the incumbent only
            # chooses *where to look first* — its old objective is
            # never reused as a bound (the delta changed the cost
            # model under it), so bit-identity stays unconditional.
            seed_idx = self._incumbent_cell(grid, incumbent)
            stats.warm = True
            stats.warm_seed = {
                "num_stages": incumbent.num_stages,
                "gacc": incumbent.gacc,
                "matched": seed_idx is not None,
            }
        if seed_idx is None and self.hetero is None:
            seed_idx, seed_info = self._heuristic_seed(
                global_batch, grid, feasible, engine=engine)
            stats.seed = seed_info
        order = sorted(
            range(total),
            key=lambda i: (i != seed_idx, bounds[i], i),
        )

        # A warm replan guarantees only the *winner* bit-identical, so
        # it prunes against the best solved objective (k = 1) — far
        # tighter than the top-k-protecting cut of a cold search, and
        # the source of the warm speedup (pruned cells evaluate zero
        # configurations).
        incumbents = _Incumbents(1 if incumbent is not None else keep_top)
        outcomes: list = [None] * total
        done_lock = threading.Lock()
        done = [0]

        def _process(idx: int) -> None:
            if should_stop is not None and should_stop():
                raise SearchCancelled(
                    f"search cancelled after {done[0]}/{total} cells")
            if not feasible[idx]:
                outcomes[idx] = ("infeasible", None, _CellCounts())
            elif bound_ok and bounds[idx] > incumbents.threshold():
                outcomes[idx] = ("pruned", None, _CellCounts())
            else:
                solution, counts = self._tune_pipeline_memo(
                    global_batch, grid[idx], memo,
                    threshold=(incumbents.threshold() if bound_ok
                               else math.inf),
                    engine=engine)
                if solution:
                    incumbents.offer(solution.objective)
                outcomes[idx] = ("explored", solution, counts)
            with done_lock:
                done[0] += 1
                if progress is not None:
                    progress(done[0], total)

        workers = parallelism if parallelism > 0 else (os.cpu_count() or 1)
        if workers > 1 and total > 1:
            with ThreadPoolExecutor(
                    max_workers=min(workers, total)) as pool:
                list(pool.map(_process, order))
        else:
            for idx in order:
                _process(idx)

        candidates: list[tuple[float, int, TrainingPlan]] = []
        search_log: list[dict] = []
        evaluated = 0
        for idx, (num_stages, _, gacc, _, assignment) in enumerate(grid):
            status, solution, counts = outcomes[idx]
            evaluated += counts.evaluated
            stats.configs_evaluated += counts.evaluated
            stats.configs_prefiltered += counts.prefiltered
            stats.memo_hits += counts.memo_hits
            stats.memo_misses += counts.memo_misses
            if status == "explored":
                stats.cells_explored += 1
            elif status == "pruned":
                stats.cells_pruned += 1
            else:
                stats.cells_infeasible += 1
            entry = {
                "num_stages": num_stages,
                "gacc": gacc,
                "objective": float(solution.objective) if solution else None,
                "status": status,
            }
            if math.isfinite(bounds[idx]):
                entry["bound"] = float(bounds[idx])
            if assignment is not None:
                entry["groups"] = [slot.group for slot in assignment]
            search_log.append(entry)
            if verbose:  # pragma: no cover - console aid
                obj = entry["objective"]
                detail = (f"{obj * 1e3:.1f} ms" if obj is not None
                          else status)
                print(f"  S={num_stages} G={gacc}: {detail}")
            if solution:
                candidates.append((
                    solution.objective, idx,
                    self._plan_from_solution(solution, global_batch, gacc),
                ))

        # ties resolve by enumeration order — the same order the stable
        # sort of the exhaustive path preserves
        candidates.sort(key=lambda item: (item[0], item[1]))
        ranked = [(obj, plan) for obj, _, plan in candidates]
        return self._result(ranked, global_batch, start, evaluated,
                            search_log, keep_top, stats)

    def _cell_bounds(self, global_batch: int, grid: list[tuple], *,
                     engine: str = "vectorized",
                     ) -> tuple[list[float], list[bool]]:
        """Optimistic lower bound + feasibility flag per (S, G) cell.

        The bound is compute-only and interference-free: for every
        unique (device group, stage GPUs, gacc) slot the marginal
        per-layer compute-channel time of its cheapest (dp, tp, b)
        option is measured with two batched evaluations (l=1 vs l=2),
        then composed through
        :func:`~repro.core.inter_stage.objective_lower_bound`. A cell
        with a slot that has no (dp, tp, b) option at all is flagged
        infeasible (the exhaustive path would explore it and find
        nothing).
        """
        slot_keys: set[tuple[str, int, int]] = set()
        for num_stages, stage_gpus, gacc, _, assignment in grid:
            if assignment is None:
                slot_keys.add(("", stage_gpus, gacc))
            else:
                for slot in assignment:
                    slot_keys.add((slot.group, slot.stage_gpus, gacc))

        floors: dict[tuple[str, int, int], float | None] = {}
        by_group: dict[str, list[tuple]] = {}
        for group, stage_gpus, gacc in slot_keys:
            analyzer = self.analyzers[group]
            options = stage_parallelism_options(
                analyzer, stage_gpus, gacc, global_batch)
            if not options:
                floors[(group, stage_gpus, gacc)] = None
                continue
            by_group.setdefault(group, []).append(
                ((group, stage_gpus, gacc), options))

        for group, entries in by_group.items():
            analyzer = self.analyzers[group]
            rows = [(dp, tp, b, gacc, layers)
                    for (_, _, gacc), options in entries
                    for dp, tp, b in options
                    for layers in (1, 2)]
            n = len(rows)
            dp_a, tp_a, b_a, gacc_a, l_a = (
                np.array([row[i] for row in rows], dtype=float)
                for i in range(5)
            )
            env = analyzer.build_env(
                b=b_a, s=np.full(n, self.seq_len), tp=tp_a, dp=dp_a,
                l=l_a, ckpt=np.zeros(n),
                z1=np.zeros(n), z2=np.zeros(n), z3=np.zeros(n),
                wo=np.zeros(n), go=np.zeros(n), oo=np.zeros(n),
                ao=np.zeros(n),
                gacc=gacc_a, inflight=np.ones(n),
                has_pre=np.zeros(n), has_post=np.zeros(n),
            )
            comp = analyzer.compute_channel(env, engine=engine)
            pos = 0
            for key, options in entries:
                floor = math.inf
                for _ in options:
                    marginal = float(comp[pos + 1] - comp[pos])
                    floor = min(floor, max(0.0, marginal))
                    pos += 2
                floors[key] = floor

        bounds: list[float] = []
        feasible: list[bool] = []
        total_layers = self.model.num_layers
        for num_stages, stage_gpus, gacc, _, assignment in grid:
            if assignment is None:
                slot_floors = [floors[("", stage_gpus, gacc)]]
            else:
                slot_floors = [floors[(s.group, s.stage_gpus, gacc)]
                               for s in assignment]
            finite = [f for f in slot_floors if f is not None]
            if len(finite) != len(slot_floors):
                bounds.append(math.inf)
                feasible.append(False)
                continue
            bounds.append(objective_lower_bound(
                min(finite), total_layers, num_stages, gacc))
            feasible.append(True)
        return bounds, feasible

    def _heuristic_seed(self, global_batch: int, grid: list[tuple],
                        feasible: list[bool], *,
                        engine: str = "vectorized",
                        ) -> "tuple[int | None, dict | None]":
        """Pick the cell a Megatron-style uniform layout prefers.

        For every feasible homogeneous cell, price the uniform
        heuristic candidates — balanced layer split, one shared
        (dp, tp, b) option, distributed optimizer (ZeRO-1 when the
        space allows it), full-or-none recomputation, no offloading —
        in a single batched prediction, and return the cell whose best
        memory-feasible candidate predicts the lowest Eq. (1)
        objective. That cell is solved *first*, so the branch-and-bound
        cut starts from a strong incumbent; the heuristic objective
        itself is advisory (recorded in :class:`SearchStats`) and never
        used as a bound, which keeps bit-identity unconditional.
        """
        space = self.space
        zero = 1 if 1 in space.zero_levels else space.zero_levels[0]
        total_layers = self.model.num_layers
        rows: list[tuple] = []
        row_meta: list[tuple[int, int]] = []  # (cell idx, candidate id)
        for idx, (num_stages, stage_gpus, gacc, _, assignment) in \
                enumerate(grid):
            if assignment is not None or not feasible[idx]:
                continue
            options = stage_parallelism_options(
                self.analyzer, stage_gpus, gacc, global_batch)
            base, extra = divmod(total_layers, num_stages)
            candidate = 0
            for dp, tp, b in options:
                ckpt_choices = ((lambda l: l),) if space.ckpt_policy == "full" \
                    else ((lambda l: 0), (lambda l: l))
                for ckpt_of in ckpt_choices:
                    for pos in range(num_stages):
                        layers = base + (1 if pos < extra else 0)
                        rows.append((
                            dp, tp, b, layers, ckpt_of(layers), zero, gacc,
                            min(gacc, num_stages - pos),
                            int(pos == 0), int(pos == num_stages - 1),
                        ))
                        row_meta.append((idx, candidate))
                    candidate += 1  # one candidate per (option, ckpt)
        if not rows:
            return None, None

        n = len(rows)
        cols = [np.array([row[i] for row in rows], dtype=float)
                for i in range(10)]
        dp_a, tp_a, b_a, l_a, ckpt_a, zero_a, gacc_a, inflight_a, \
            pre_a, post_a = cols
        env = self.analyzer.build_env(
            b=b_a, s=np.full(n, self.seq_len), tp=tp_a, dp=dp_a,
            l=l_a, ckpt=ckpt_a,
            z1=(zero_a >= 1).astype(float),
            z2=(zero_a >= 2).astype(float),
            z3=(zero_a >= 3).astype(float),
            wo=np.zeros(n), go=np.zeros(n), oo=np.zeros(n), ao=np.zeros(n),
            gacc=gacc_a, inflight=inflight_a,
            has_pre=pre_a, has_post=post_a,
        )
        pred = self.analyzer.predict(env, engine=engine)
        fits = pred.peak_mem <= self.analyzer.memory_budget

        best_idx, best_obj, best_gacc, best_stages = None, math.inf, 0, 0
        pos = 0
        while pos < n:
            idx, candidate = row_meta[pos]
            end = pos
            while end < n and row_meta[end] == (idx, candidate):
                end += 1
            if bool(fits[pos:end].all()):
                gacc = int(gacc_a[pos])
                objective = pipeline_iteration_time(
                    pred.t_stable[pos:end], pred.delta[pos:end], gacc)
                if objective < best_obj:
                    best_idx, best_obj = idx, objective
                    best_gacc, best_stages = gacc, end - pos
            pos = end
        if best_idx is None:
            return None, None
        return best_idx, {
            "num_stages": best_stages,
            "gacc": best_gacc,
            "objective": float(best_obj),
        }

    @staticmethod
    def _cut_menus(menus: list, gacc: int,
                   threshold: float) -> tuple[list, int]:
        """Drop stage options that provably cannot beat ``threshold``.

        For an option with stable time ``t`` in stage ``i``, every plan
        using it costs at least ``(G - 1) * t + t + sum_{j != i}
        min_t_j`` (Eq. 1 with the exposed-delta term clamped at zero),
        so when that exceeds the current k-th-best incumbent the option
        cannot appear in any plan that reaches the final top-k. Options
        of every plan with objective <= threshold survive by the same
        inequality, which keeps the cell's returned solution identical
        whenever it still matters for the ranking. Menus come from the
        (shared, immutable) memo, so the cut builds filtered copies.
        """
        mins = []
        for stage in menus:
            best = min((p.t for points in stage.values() for p in points),
                       default=math.inf)
            mins.append(best)
        if any(not math.isfinite(m) for m in mins):
            return menus, 0  # an empty stage: solve() returns None anyway
        total_min = sum(mins)
        cut = []
        removed = 0
        for i, stage in enumerate(menus):
            others = total_min - mins[i]
            filtered = {}
            for l, points in stage.items():
                kept = [p for p in points
                        if (gacc * p.t + others) * (1.0 - 1e-9) <= threshold]
                removed += len(points) - len(kept)
                filtered[l] = kept
            cut.append(filtered)
        return cut, removed

    def _tune_pipeline_memo(
            self, global_batch: int, task: tuple, memo: MenuMemo, *,
            threshold: float = math.inf, engine: str = "vectorized",
    ) -> "tuple[inter_stage.InterStageSolution | None, _CellCounts]":
        """Solve one (S, G) cell through the memoized, prefiltered path.

        Returns ``(solution, _CellCounts)``. Results are bit-identical
        to :meth:`_tune_pipeline`: the memo stores pure menus keyed by
        the full subproblem fingerprint, and a hit replays the
        evaluated/prefiltered counters its original computation
        recorded, keeping work accounting deterministic. A finite
        ``threshold`` additionally applies :meth:`_cut_menus` before
        the inter-stage solve — plans that can still reach the top-k
        are unaffected; a cell whose optimum is already worse may
        resolve to a (correctly ranked) weaker solution or ``None``.
        """
        num_stages, stage_gpus, gacc, layer_counts, assignment = task
        counts = _CellCounts()
        intra: dict[str, IntraStageTuner] = {}
        seen_in_cell: set[tuple] = set()

        def menus_for(group: str, shape: StageShape, lcounts: list[int],
                      ) -> dict[int, list[ParetoPoint]]:
            # engine is part of the key: menus are bit-identical across
            # engines, but replaying a vectorized entry under
            # engine="interpreted" would let memo warmth mask exactly
            # the divergence the differential tests exist to catch
            key = (self._memo_scopes[group], engine, global_batch, shape,
                   tuple(lcounts))
            entry = memo.lookup(key)
            if entry is None:
                counts.memo_misses += 1
                tuner = intra.get(group)
                if tuner is None:
                    tuner = intra[group] = IntraStageTuner(
                        self.analyzers[group], self.space,
                        global_batch=global_batch, seq_len=self.seq_len,
                        max_pareto_points=self.max_pareto_points,
                        engine=engine,
                    )
                before_eval = tuner.evaluated
                before_pre = tuner.prefiltered
                menus = tuner.tune(shape, lcounts, prefilter=True)
                entry = MemoEntry(
                    menus=menus,
                    evaluated=tuner.evaluated - before_eval,
                    prefiltered=tuner.prefiltered - before_pre,
                )
                memo.store(key, entry)
            else:
                counts.memo_hits += 1
            # count each unique subproblem once per cell — the same
            # dedup the exhaustive path's per-cell shape cache applies,
            # so explored cells report identical work either way
            if key not in seen_in_cell:
                seen_in_cell.add(key)
                counts.evaluated += entry.evaluated
                counts.prefiltered += entry.prefiltered
            return entry.menus

        menus = []
        if assignment is None:
            counts_for_stage = (layer_counts if num_stages > 1
                                else [self.model.num_layers])
            for idx in range(num_stages):
                inflight = min(gacc, num_stages - idx)
                shape = StageShape(
                    stage_gpus=stage_gpus, gacc=gacc,
                    inflight=inflight if num_stages > 1 else 1,
                    has_pre=(idx == 0), has_post=(idx == num_stages - 1),
                )
                menus.append(menus_for("", shape, counts_for_stage))
        else:
            boundary = [False] * num_stages
            for i in range(num_stages - 1):
                if assignment[i].group != assignment[i + 1].group:
                    boundary[i] = boundary[i + 1] = True
            for idx, slot in enumerate(assignment):
                inflight = min(gacc, num_stages - idx)
                shape = StageShape(
                    stage_gpus=slot.stage_gpus, gacc=gacc, inflight=inflight,
                    has_pre=(idx == 0), has_post=(idx == num_stages - 1),
                    group=slot.group,
                    p2p_bandwidth_cap=(self.hetero.inter_group_bandwidth
                                       if boundary[idx] else None),
                    p2p_latency_floor=(self.hetero.inter_group_latency
                                       if boundary[idx] else None),
                )
                stage_counts = (layer_counts if num_stages > 1
                                else [self.model.num_layers])
                menus.append(menus_for(slot.group, shape, stage_counts))

        def _solve(stage_menus: list,
                   ) -> "inter_stage.InterStageSolution | None":
            return inter_stage.solve(
                stage_menus, self.model.num_layers, gacc,
                imbalance_aware=self.space.imbalance_aware,
            )

        if not math.isfinite(threshold):
            return _solve(menus), counts
        # Screen-then-canonicalize: solve the option-cut menus first
        # (cheap — dominated options gone). If the cell still lands at
        # or under the incumbent threshold it may enter the top-k, so
        # re-solve the *full* menus: the MILP's tie-breaking among
        # equal-objective optima depends on the exact model, and only
        # the full-menu solution matches the exhaustive path bit for
        # bit. Cells screened out (worse than the threshold, or
        # infeasible after the cut) are provably outside the top-k and
        # keep the cheap answer. The relative margin absorbs float
        # drift between the recomputed objectives of tied optima.
        cut, removed = self._cut_menus(menus, gacc, threshold)
        if removed == 0:
            return _solve(menus), counts
        screened = _solve(cut)
        if screened is not None and \
                screened.objective <= threshold * (1.0 + 1e-6):
            return _solve(menus), counts
        return screened, counts

    def tune(self, global_batch: int, *, verbose: bool = False,
             keep_top: int = 3) -> TuningResult:
        """Deprecated alias for :meth:`search` (serial path).

        Deprecated since v1.1 (the ``repro.api`` registry redesign);
        scheduled for removal in v2.0. Call :meth:`search` or go
        through :func:`repro.api.solve` — see the deprecation policy in
        ``docs/API.md``.
        """
        warnings.warn(
            "MistTuner.tune() is deprecated since v1.1 and will be removed "
            "in v2.0; use MistTuner.search() or the repro.api solver "
            "registry (repro.api.solve).",
            DeprecationWarning, stacklevel=2,
        )
        return self.search(global_batch, verbose=verbose, keep_top=keep_top)

    # -- per-(S, G) solve ---------------------------------------------------------

    def _tune_pipeline(
            self, global_batch: int, num_stages: int,
            stage_gpus: int, gacc: int,
            layer_counts: list[int],
            assignment: "tuple[StageSlot, ...] | None" = None,
            *, engine: str = "vectorized",
    ) -> "tuple[inter_stage.InterStageSolution | None, int]":
        """Solve one (S, G) candidate (exhaustive reference path).

        Returns ``(solution, evaluated)`` where ``evaluated`` is the
        number of configurations the intra-stage tuner scored — each
        call owns fresh :class:`IntraStageTuner`\\ s, so the method is
        safe to run concurrently across (S, G) candidates. With an
        ``assignment`` (heterogeneous clusters) each stage is tuned by
        its device group's analyzer.
        """
        if assignment is not None:
            return self._tune_pipeline_hetero(global_batch, gacc,
                                              layer_counts, assignment,
                                              engine=engine)
        intra = IntraStageTuner(
            self.analyzer, self.space, global_batch=global_batch,
            seq_len=self.seq_len, max_pareto_points=self.max_pareto_points,
            engine=engine,
        )

        if num_stages == 1:
            shape = StageShape(stage_gpus=stage_gpus, gacc=gacc, inflight=1,
                               has_pre=True, has_post=True)
            menus = [intra.tune(shape, [self.model.num_layers])]
            solution = inter_stage.solve(
                menus, self.model.num_layers, gacc,
                imbalance_aware=self.space.imbalance_aware,
            )
            return solution, intra.evaluated

        # Stage positions with identical (inflight, pre, post) share menus.
        menus = []
        cache: dict[tuple, dict] = {}
        for idx in range(num_stages):
            inflight = min(gacc, num_stages - idx)
            key = (inflight, idx == 0, idx == num_stages - 1)
            if key not in cache:
                shape = StageShape(
                    stage_gpus=stage_gpus, gacc=gacc, inflight=inflight,
                    has_pre=key[1], has_post=key[2],
                )
                cache[key] = intra.tune(shape, layer_counts)
            menus.append(cache[key])
        solution = inter_stage.solve(
            menus, self.model.num_layers, gacc,
            imbalance_aware=self.space.imbalance_aware,
        )
        return solution, intra.evaluated

    def _tune_pipeline_hetero(
            self, global_batch: int, gacc: int,
            layer_counts: list[int],
            assignment: "tuple[StageSlot, ...]",
            *, engine: str = "vectorized",
    ) -> "tuple[inter_stage.InterStageSolution | None, int]":
        """Solve one heterogeneous (assignment, G) candidate.

        Stage menus come from the analyzer of the stage's device group,
        so every Pareto point is priced with that group's cost model
        and filtered against that group's memory budget; stages
        adjacent to a group boundary additionally price pipeline p2p
        over the inter-group link (the same clamp the execution engine
        applies). Stage positions sharing (group, gpus, inflight, pre,
        post, boundary) share menus, mirroring the homogeneous cache.
        """
        num_stages = len(assignment)
        intra = {
            name: IntraStageTuner(
                self.analyzers[name], self.space, global_batch=global_batch,
                seq_len=self.seq_len,
                max_pareto_points=self.max_pareto_points,
                engine=engine,
            )
            for name in {slot.group for slot in assignment}
        }
        boundary = [False] * num_stages
        for i in range(num_stages - 1):
            if assignment[i].group != assignment[i + 1].group:
                boundary[i] = boundary[i + 1] = True
        menus = []
        cache: dict[tuple, dict] = {}
        for idx, slot in enumerate(assignment):
            inflight = min(gacc, num_stages - idx)
            key = (slot.group, slot.stage_gpus, inflight,
                   idx == 0, idx == num_stages - 1, boundary[idx])
            if key not in cache:
                shape = StageShape(
                    stage_gpus=slot.stage_gpus, gacc=gacc, inflight=inflight,
                    has_pre=key[3], has_post=key[4], group=slot.group,
                    p2p_bandwidth_cap=(self.hetero.inter_group_bandwidth
                                       if boundary[idx] else None),
                    p2p_latency_floor=(self.hetero.inter_group_latency
                                       if boundary[idx] else None),
                )
                counts = (layer_counts if num_stages > 1
                          else [self.model.num_layers])
                cache[key] = intra[slot.group].tune(shape, counts)
            menus.append(cache[key])
        solution = inter_stage.solve(
            menus, self.model.num_layers, gacc,
            imbalance_aware=self.space.imbalance_aware,
        )
        return solution, sum(t.evaluated for t in intra.values())
