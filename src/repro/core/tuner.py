"""Mist's hierarchical auto-tuner (paper Section 5.3, Figure 6).

Given a model, a cluster, and a global batch size, enumerate the outer
discrete choices — pipeline depth ``S`` and gradient-accumulation steps
``G`` — and for each:

1. **intra-stage tuning** builds Pareto frontiers of
   ``(t_stable, d_delta)`` per stage position and candidate layer count
   (batched symbolic evaluation, memory-constrained);
2. **inter-stage tuning** assembles them through the imbalance-aware
   MILP (Eq. 2) into the best pipeline partition.

The winner across all ``(S, G)`` becomes the output
:class:`~repro.core.plan.TrainingPlan`. Searching the ``(S, G)`` grid is
embarrassingly parallel (the paper parallelizes it across cores, §5.3 /
Fig. 16): :meth:`MistTuner.search` fans the per-``(S, G)`` solves over a
thread pool when ``parallelism > 1``, and merges results in enumeration
order so the chosen plan is identical to the serial path.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.interference import InterferenceModel
from repro.hardware import ClusterSpec
from repro.models.config import ModelConfig
from repro.tracing import trace

from . import inter_stage
from .analyzer import SymbolicPerformanceAnalyzer
from .intra_stage import IntraStageTuner, StageShape
from .objectives import throughput
from .plan import TrainingPlan
from .spaces import SPACE_MIST, SearchSpace

__all__ = ["MistTuner", "TuningResult"]


@dataclass
class TuningResult:
    """Outcome of one auto-tuning run."""

    best_plan: TrainingPlan | None
    predicted_iteration_time: float
    predicted_throughput: float
    tuning_time_seconds: float
    configurations_evaluated: int
    #: per-(S, G) best objective, for diagnostics
    search_log: list[dict] = field(default_factory=list)
    #: predicted-best plans across (S, G) candidates, best first — the
    #: runner executes these in order (the artifact's final
    #: benchmark-one-case step), which de-biases the winner's curse of
    #: picking the argmin of noisy predictions
    top_plans: list[TrainingPlan] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.best_plan is not None


class MistTuner:
    """Memory-, overlap- and imbalance-aware automatic tuner."""

    def __init__(self, model: ModelConfig, cluster: ClusterSpec, *,
                 seq_len: int, flash: bool = True,
                 space: SearchSpace = SPACE_MIST,
                 interference: InterferenceModel | None = None,
                 max_pareto_points: int = 8,
                 max_gacc_candidates: int | None = None):
        self.model = model
        self.cluster = cluster
        self.seq_len = seq_len
        self.flash = flash
        self.space = space
        traced = trace(model, cluster.gpu, flash=flash)
        self.analyzer = SymbolicPerformanceAnalyzer(
            traced, cluster, interference=interference
        )
        self.max_pareto_points = max_pareto_points
        self.max_gacc_candidates = max_gacc_candidates

    # -- candidate enumeration ---------------------------------------------

    def _stage_counts(self) -> list[int]:
        return [
            s for s in self.cluster.pipeline_stage_counts()
            if s <= self.model.num_layers
        ]

    def _gacc_candidates(self, global_batch: int, num_stages: int) -> list[int]:
        """Gradient-accumulation steps worth trying for this depth."""
        out = []
        g = 1
        while g <= global_batch:
            if global_batch % g == 0:
                out.append(g)
            g *= 2
        if global_batch not in out:
            out.append(global_batch)
        # Deep pipelines need G >= S to fill; keep one undersized G as a
        # fallback but skip the clearly wasteful ones.
        if num_stages > 1:
            out = [g for g in out if g * 2 >= num_stages] or out[-1:]
        if self.max_gacc_candidates is not None and \
                len(out) > self.max_gacc_candidates:
            # keep the spread: smallest, largest, and evenly in between
            idx = np.unique(np.round(
                np.linspace(0, len(out) - 1, self.max_gacc_candidates)
            ).astype(int))
            out = [out[i] for i in idx]
        return out

    def _layer_counts(self, num_stages: int) -> list[int]:
        """Candidate per-stage layer counts around the balanced split."""
        total = self.model.num_layers
        base = total / num_stages
        slack = self.space.layer_slack
        lo = max(1, int(np.floor(base)) - slack)
        hi = min(total - (num_stages - 1), int(np.ceil(base)) + slack)
        return list(range(lo, hi + 1))

    # -- main loop ------------------------------------------------------------

    def _sg_grid(self, global_batch: int) -> list[tuple[int, int, int, list[int]]]:
        """The outer (S, G) grid: (num_stages, stage_gpus, gacc, layers)."""
        grid = []
        for num_stages in self._stage_counts():
            stage_gpus = self.cluster.total_gpus // num_stages
            layer_counts = self._layer_counts(num_stages)
            for gacc in self._gacc_candidates(global_batch, num_stages):
                grid.append((num_stages, stage_gpus, gacc, layer_counts))
        return grid

    def search(self, global_batch: int, *, parallelism: int = 1,
               verbose: bool = False, keep_top: int = 3) -> TuningResult:
        """Solve every (S, G) candidate and return the ranked outcome.

        ``parallelism > 1`` fans the independent per-(S, G) solves over
        that many worker threads (``0`` means one per CPU core); results
        are merged in enumeration order, so the returned plans are
        identical regardless of worker count.
        """
        start = time.perf_counter()
        grid = self._sg_grid(global_batch)
        workers = parallelism if parallelism > 0 else (os.cpu_count() or 1)
        if workers > 1 and len(grid) > 1:
            with ThreadPoolExecutor(
                    max_workers=min(workers, len(grid))) as pool:
                solutions = list(pool.map(
                    lambda task: self._tune_pipeline(global_batch, *task),
                    grid,
                ))
        else:
            solutions = [self._tune_pipeline(global_batch, *task)
                         for task in grid]

        candidates: list[tuple[float, TrainingPlan]] = []
        evaluated = 0
        search_log: list[dict] = []
        for (num_stages, _, gacc, _), (solution, n_evaluated) in zip(
                grid, solutions):
            evaluated += n_evaluated
            # infeasible cells log None, not inf — search logs must stay
            # strictly JSON-serializable (SolveReport round-trip contract)
            entry = {
                "num_stages": num_stages,
                "gacc": gacc,
                "objective": float(solution.objective) if solution else None,
            }
            search_log.append(entry)
            if verbose:  # pragma: no cover - console aid
                obj = entry["objective"]
                print(f"  S={num_stages} G={gacc}: "
                      + (f"{obj * 1e3:.1f} ms" if obj is not None
                         else "infeasible"))
            if solution:
                candidates.append((
                    solution.objective,
                    TrainingPlan(
                        global_batch=global_batch,
                        gacc=gacc,
                        stages=tuple(p.config for p in solution.choices),
                        source=f"mist[{self.space.name}]",
                    ),
                ))

        candidates.sort(key=lambda item: item[0])
        best_objective = candidates[0][0] if candidates else np.inf
        best_plan = candidates[0][1] if candidates else None
        elapsed = time.perf_counter() - start
        return TuningResult(
            best_plan=best_plan,
            predicted_iteration_time=best_objective,
            predicted_throughput=(
                throughput(global_batch, best_objective)
                if np.isfinite(best_objective) else 0.0
            ),
            tuning_time_seconds=elapsed,
            configurations_evaluated=evaluated,
            search_log=search_log,
            top_plans=[plan for _, plan in candidates[:keep_top]],
        )

    def tune(self, global_batch: int, *, verbose: bool = False,
             keep_top: int = 3) -> TuningResult:
        """Deprecated alias for :meth:`search` (serial path)."""
        warnings.warn(
            "MistTuner.tune() is deprecated; use MistTuner.search() or the "
            "repro.api solver registry (repro.api.solve).",
            DeprecationWarning, stacklevel=2,
        )
        return self.search(global_batch, verbose=verbose, keep_top=keep_top)

    # -- per-(S, G) solve ---------------------------------------------------------

    def _tune_pipeline(self, global_batch: int, num_stages: int,
                       stage_gpus: int, gacc: int,
                       layer_counts: list[int]):
        """Solve one (S, G) candidate.

        Returns ``(solution, evaluated)`` where ``evaluated`` is the
        number of configurations the intra-stage tuner scored — each
        call owns a fresh :class:`IntraStageTuner`, so the method is
        safe to run concurrently across (S, G) candidates.
        """
        intra = IntraStageTuner(
            self.analyzer, self.space, global_batch=global_batch,
            seq_len=self.seq_len, max_pareto_points=self.max_pareto_points,
        )

        if num_stages == 1:
            shape = StageShape(stage_gpus=stage_gpus, gacc=gacc, inflight=1,
                               has_pre=True, has_post=True)
            menus = [intra.tune(shape, [self.model.num_layers])]
            solution = inter_stage.solve(
                menus, self.model.num_layers, gacc,
                imbalance_aware=self.space.imbalance_aware,
            )
            return solution, intra.evaluated

        # Stage positions with identical (inflight, pre, post) share menus.
        menus = []
        cache: dict[tuple, dict] = {}
        for idx in range(num_stages):
            inflight = min(gacc, num_stages - idx)
            key = (inflight, idx == 0, idx == num_stages - 1)
            if key not in cache:
                shape = StageShape(
                    stage_gpus=stage_gpus, gacc=gacc, inflight=inflight,
                    has_pre=key[1], has_post=key[2],
                )
                cache[key] = intra.tune(shape, layer_counts)
            menus.append(cache[key])
        solution = inter_stage.solve(
            menus, self.model.num_layers, gacc,
            imbalance_aware=self.space.imbalance_aware,
        )
        return solution, intra.evaluated
