"""Cost models: operator timing, communication, and interference."""

from .calibration import (
    CalibrationResult,
    fit_interference_model,
    sample_corun_workloads,
)
from .comm import (
    all_gather_time,
    all_reduce_time,
    broadcast_time,
    host_copy_time,
    p2p_time,
    reduce_scatter_time,
)
from .interference import CHANNELS, Channel, InterferenceModel
from .opdb import OperatorDatabase, OpTimings

__all__ = [
    "CHANNELS",
    "CalibrationResult",
    "Channel",
    "InterferenceModel",
    "OpTimings",
    "OperatorDatabase",
    "all_gather_time",
    "all_reduce_time",
    "broadcast_time",
    "fit_interference_model",
    "host_copy_time",
    "p2p_time",
    "reduce_scatter_time",
]
