"""Data-driven fitting of interference slowdown factors.

"A data-driven approach is used to fit the model, where different shapes
and combinations of concurrent kernels are sampled and benchmarked, and
the resulting runtime data is used to train the slowdown factors"
(paper Section 5.2.2).

Here the "benchmark" is any oracle callable — in this reproduction the
discrete-event execution engine's contention resolver
(:func:`repro.execution.events.corun_total_time`) plays the role of the
hardware. The fit optimizes the 12 pairwise slowdown factors so that
Algorithm 1's predictions match the oracle on sampled co-run workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from .interference import CHANNELS, InterferenceModel

__all__ = ["CalibrationResult", "sample_corun_workloads", "fit_interference_model"]

Oracle = Callable[[np.ndarray], np.ndarray]
"""Maps an (N, 4) array of channel busy-times to N measured totals."""


@dataclass
class CalibrationResult:
    model: InterferenceModel
    mean_abs_error: float
    max_abs_error: float
    n_samples: int


def sample_corun_workloads(n_samples: int = 256, *, seed: int = 0,
                           scale: float = 10e-3) -> np.ndarray:
    """Sample busy-time combinations covering 1- to 4-way concurrency.

    Times are log-uniform in ``[scale/30, scale]`` with random channel
    subsets active, mimicking the shape diversity of a profiling sweep.
    """
    rng = np.random.default_rng(seed)
    times = np.exp(rng.uniform(np.log(scale / 30), np.log(scale),
                               size=(n_samples, 4)))
    # Randomly silence channels so all concurrency levels appear.
    n_active = rng.integers(1, 5, size=n_samples)
    for i, k in enumerate(n_active):
        off = rng.choice(4, size=4 - k, replace=False)
        times[i, off] = 0.0
    return times


def fit_interference_model(oracle: Oracle, *, pcie_only: bool,
                           n_samples: int = 256, seed: int = 0,
                           scale: float = 10e-3) -> CalibrationResult:
    """Fit pairwise slowdown factors against ``oracle`` measurements."""
    workloads = sample_corun_workloads(n_samples, seed=seed, scale=scale)
    measured = np.asarray(oracle(workloads), dtype=float)
    if measured.shape != (n_samples,):
        raise ValueError("oracle must return one total time per workload")

    seed_model = InterferenceModel.default(pcie_only=pcie_only)
    keys, x0 = seed_model.pair_vector()

    def objective(params: np.ndarray) -> float:
        model = InterferenceModel.from_pair_vector(keys, params)
        predicted = model.predict(workloads[:, 0], workloads[:, 1],
                                  workloads[:, 2], workloads[:, 3])
        rel = (predicted - measured) / np.maximum(measured, 1e-9)
        return float(np.mean(rel**2))

    result = optimize.minimize(
        objective, x0, method="Nelder-Mead",
        options={"maxiter": 2000, "xatol": 1e-4, "fatol": 1e-10},
    )
    fitted = InterferenceModel.from_pair_vector(keys, result.x)
    predicted = fitted.predict(workloads[:, 0], workloads[:, 1],
                               workloads[:, 2], workloads[:, 3])
    rel_err = np.abs(predicted - measured) / np.maximum(measured, 1e-9)
    return CalibrationResult(
        model=fitted,
        mean_abs_error=float(rel_err.mean()),
        max_abs_error=float(rel_err.max()),
        n_samples=n_samples,
    )
