"""Communication cost model: ring collectives, p2p, and host copies.

Communication is "modeled symbolically by dividing communicated bytes by
the bandwidth" (paper Section 5.2.1). Collective formulas follow the
standard ring algorithm costs; group size and bus bandwidth may be
either numbers or symbols, so the same formulas serve the symbolic
analyzer (bandwidths substituted at evaluation time) and the execution
engine (fully concrete).

``bytes_`` for :func:`all_gather_time` / :func:`reduce_scatter_time` is
the *full* (gathered/unreduced) tensor size.
"""

from __future__ import annotations

from repro.symbolic import Expr, ExprLike, as_expr, smax

__all__ = [
    "all_reduce_time",
    "all_gather_time",
    "reduce_scatter_time",
    "broadcast_time",
    "p2p_time",
    "host_copy_time",
]


def all_reduce_time(bytes_: ExprLike, n: ExprLike, bus_bw: ExprLike,
                    latency: ExprLike = 0.0) -> Expr:
    """Ring all-reduce: ``2(n-1)/n`` of the data crosses each link."""
    bytes_, n, bus_bw = as_expr(bytes_), as_expr(n), as_expr(bus_bw)
    volume = 2 * (n - 1) / n * bytes_
    return volume / bus_bw + 2 * (n - 1) * as_expr(latency)


def all_gather_time(bytes_: ExprLike, n: ExprLike, bus_bw: ExprLike,
                    latency: ExprLike = 0.0) -> Expr:
    """Ring all-gather of a tensor whose *gathered* size is ``bytes_``."""
    bytes_, n, bus_bw = as_expr(bytes_), as_expr(n), as_expr(bus_bw)
    volume = (n - 1) / n * bytes_
    return volume / bus_bw + (n - 1) * as_expr(latency)


def reduce_scatter_time(bytes_: ExprLike, n: ExprLike, bus_bw: ExprLike,
                        latency: ExprLike = 0.0) -> Expr:
    """Ring reduce-scatter of a tensor of full size ``bytes_``."""
    return all_gather_time(bytes_, n, bus_bw, latency)


def broadcast_time(bytes_: ExprLike, n: ExprLike, bus_bw: ExprLike,
                   latency: ExprLike = 0.0) -> Expr:
    bytes_, n, bus_bw = as_expr(bytes_), as_expr(n), as_expr(bus_bw)
    # tree broadcast: bandwidth-bound term independent of n (pipelined)
    return smax(bytes_ / bus_bw, 0) + (n - 1) * as_expr(latency)


def p2p_time(bytes_: ExprLike, bw: ExprLike, latency: ExprLike = 0.0) -> Expr:
    """Point-to-point send/recv between adjacent pipeline stages."""
    return as_expr(bytes_) / as_expr(bw) + as_expr(latency)


def host_copy_time(bytes_: ExprLike, pcie_bw: ExprLike) -> Expr:
    """H2D or D2H copy over the host link (one direction)."""
    return as_expr(bytes_) / as_expr(pcie_bw)
