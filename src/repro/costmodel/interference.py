"""Interference model for co-running kernels (paper Algorithm 1).

When computation, NCCL (GPU<->GPU), H2D (CPU->GPU) and D2H (GPU->CPU)
kernels run concurrently they slow each other down. The paper models
this with *slowdown factors* per combination of co-running kernel
types, applied by a batched estimation procedure (Algorithm 1):

1. stack the four per-channel busy times into ``X``;
2. for concurrency levels ``n = 4, 3, 2`` and every channel combination
   of that size, scale the remaining times of fully-busy combinations
   by their slowdown factors, peel off the shortest scaled time as a
   fully-overlapped window, and return the residue to ``X``;
3. finally add whatever runs alone.

The model is deliberately *not* an ML regressor — "fewer parameters and
clearer intuition" — and its factors are fitted from co-run
measurements by :mod:`repro.costmodel.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

__all__ = ["Channel", "InterferenceModel", "CHANNELS"]


class Channel:
    """The four kernel channels distinguished by the model."""

    COMPUTE = "comp"
    NCCL = "g2g"
    H2D = "c2g"
    D2H = "g2c"


CHANNELS: tuple[str, ...] = (Channel.COMPUTE, Channel.NCCL, Channel.H2D,
                             Channel.D2H)

#: all combinations of >= 2 channels, largest first (Algorithm 1 order)
_COMBOS: list[tuple[int, ...]] = [
    combo
    for n in (4, 3, 2)
    for combo in combinations(range(4), n)
]


def _default_pairs(pcie_only: bool) -> dict[frozenset[str], dict[str, float]]:
    """Pairwise slowdown factors before calibration.

    On PCIe-only machines (L4), NCCL traffic itself rides PCIe, so it
    contends heavily with host copies; on NVLink machines they use
    different fabrics. Compute slows mildly next to any communication
    (the paper measures 7.7% on an attention linear layer co-running
    with all-reduce).
    """
    c, g, h, d = CHANNELS
    if pcie_only:
        return {
            frozenset((c, g)): {c: 1.06, g: 1.12},
            frozenset((c, h)): {c: 1.03, h: 1.10},
            frozenset((c, d)): {c: 1.03, d: 1.10},
            frozenset((g, h)): {g: 1.55, h: 1.55},
            frozenset((g, d)): {g: 1.55, d: 1.55},
            frozenset((h, d)): {h: 1.15, d: 1.15},
        }
    return {
        frozenset((c, g)): {c: 1.08, g: 1.10},
        frozenset((c, h)): {c: 1.02, h: 1.06},
        frozenset((c, d)): {c: 1.02, d: 1.06},
        frozenset((g, h)): {g: 1.04, h: 1.08},
        frozenset((g, d)): {g: 1.04, d: 1.08},
        frozenset((h, d)): {h: 1.10, d: 1.10},
    }


@dataclass
class InterferenceModel:
    """Slowdown-factor model with the Algorithm 1 batched estimator.

    ``factors[combo][channel]`` is the slowdown of ``channel`` while all
    channels in ``combo`` (a frozenset of channel names) are active.
    Higher-order combinations default to capped products of the pairwise
    factors; calibration may overwrite any entry.
    """

    factors: dict[frozenset[str], dict[str, float]] = field(default_factory=dict)
    #: cap on combined slowdowns — contention never fully serializes
    max_factor: float = 2.6

    @classmethod
    def from_pairs(cls, pairs: dict[frozenset[str], dict[str, float]],
                   max_factor: float = 2.6) -> "InterferenceModel":
        """Build all 2/3/4-way factors from pairwise ones (capped products)."""
        factors: dict[frozenset[str], dict[str, float]] = {}
        for combo_idx in _COMBOS:
            names = frozenset(CHANNELS[i] for i in combo_idx)
            entry: dict[str, float] = {}
            for ch in names:
                product = 1.0
                for other in names:
                    if other == ch:
                        continue
                    pair = pairs.get(frozenset((ch, other)), {})
                    product *= pair.get(ch, 1.0)
                entry[ch] = min(product, max_factor)
            factors[names] = entry
        return cls(factors=factors, max_factor=max_factor)

    @classmethod
    def default(cls, *, pcie_only: bool) -> "InterferenceModel":
        return cls.from_pairs(_default_pairs(pcie_only))

    def factor(self, combo: frozenset[str], channel: str) -> float:
        entry = self.factors.get(combo)
        if entry is None:
            return 1.0
        return entry.get(channel, 1.0)

    # -- Algorithm 1: batched interference estimation -------------------------

    def predict(self, comp, g2g, c2g, g2c) -> np.ndarray:
        """Total latency for co-running channel busy-times (batched).

        Inputs broadcast to a common shape; the return value has that
        shape. This is the ``I(c, nccl, d2h, h2d)`` of Eq. (5)/(6).
        """
        arrays = np.broadcast_arrays(
            np.asarray(comp, dtype=float), np.asarray(g2g, dtype=float),
            np.asarray(c2g, dtype=float), np.asarray(g2c, dtype=float),
        )
        shape = arrays[0].shape
        x = np.stack([a.reshape(-1).copy() for a in arrays])  # (4, batch)
        total = np.zeros(x.shape[1], dtype=float)

        for combo_idx in _COMBOS:
            names = frozenset(CHANNELS[i] for i in combo_idx)
            entry = self.factors.get(names)
            if entry is None:
                continue
            fac = np.array([entry.get(CHANNELS[i], 1.0) for i in combo_idx])
            self._update(x, total, combo_idx, fac)

        total += x.sum(axis=0)
        return total.reshape(shape) if shape else total[0]

    @staticmethod
    def _update(x: np.ndarray, total: np.ndarray, combo_idx: tuple[int, ...],
                fac: np.ndarray) -> None:
        """One ``Update`` step of Algorithm 1 (vectorized over the batch)."""
        rows = x[list(combo_idx)]
        ids = (rows > 0).all(axis=0)
        if not ids.any():
            return
        scaled = rows[:, ids] * fac[:, None]
        overlap = scaled.min(axis=0)
        rows[:, ids] = (scaled - overlap[None, :]) / fac[:, None]
        x[list(combo_idx)] = rows
        total[ids] += overlap

    def predict_scalar(self, comp: float = 0.0, g2g: float = 0.0,
                       c2g: float = 0.0, g2c: float = 0.0) -> float:
        return float(self.predict(comp, g2g, c2g, g2c))

    def min_factor(self) -> float:
        """Smallest slowdown factor across all combinations.

        Interference can only *slow down* co-running kernels, so every
        factor is >= 1 for any physically meaningful model (calibration
        clamps its fits accordingly). The pruned tuner checks this
        before enabling its branch-and-bound cut: when all factors are
        >= 1, ``predict(...) >= max(channel busy times) >= compute
        channel``, which makes a compute-only, interference-free time a
        valid optimistic lower bound on any stage's microbatch latency.
        """
        values = [factor
                  for entry in self.factors.values()
                  for factor in entry.values()]
        return min(values, default=1.0)

    def fingerprint(self) -> tuple:
        """Canonical hashable identity of this model's parameters.

        Used to scope memoized tuning subproblems: two searches may
        share memo entries only when their interference models are
        parameter-identical.
        """
        items = tuple(sorted(
            (tuple(sorted(combo)),
             tuple(sorted((ch, float(v)) for ch, v in entry.items())))
            for combo, entry in self.factors.items()
        ))
        return (items, float(self.max_factor))

    # -- (de)serialization for calibration ------------------------------------

    def pair_vector(self) -> tuple[list[tuple[frozenset[str], str]], np.ndarray]:
        """Flatten pairwise factors into a parameter vector for fitting."""
        keys = []
        values = []
        for combo_idx in combinations(range(4), 2):
            names = frozenset(CHANNELS[i] for i in combo_idx)
            entry = self.factors.get(names, {})
            for i in combo_idx:
                ch = CHANNELS[i]
                keys.append((names, ch))
                values.append(entry.get(ch, 1.0))
        return keys, np.array(values)

    @classmethod
    def from_pair_vector(cls, keys, values,
                         max_factor: float = 2.6) -> "InterferenceModel":
        pairs: dict[frozenset[str], dict[str, float]] = {}
        for (names, ch), value in zip(keys, values):
            pairs.setdefault(names, {})[ch] = float(max(1.0, value))
        return cls.from_pairs(pairs, max_factor=max_factor)
