"""Operator computation database.

The paper estimates computation time from "an operator computation
database, which benchmarks new operators or unseen input shapes on the
current hardware and stores results for future use" (Section 5.2.1).

Without hardware, this reproduction replaces the CUDA benchmark with an
analytic roofline kernel model that preserves the properties the tuner
exploits:

* GEMM efficiency *saturates with work size* — larger microbatches (and
  smaller TP degrees) run closer to peak, reproducing the paper's
  "increasing the batch size improves kernel efficiency" lever;
* elementwise/normalization/softmax kernels are memory-bound;
* non-flash attention pays O(s²) memory traffic while FlashAttention is
  compute-bound with a backward recompute factor.

Because the model is closed-form, per-operator times are returned as
*symbolic expressions* over the graph symbols, which composes directly
with the symbolic analyzer. The database interface (memoized lookups
keyed by operator signature) is preserved from the paper so a real
profiler could be dropped in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import GPUSpec
from repro.models.ops import Op, OpKind
from repro.symbolic import Const, Expr, smax

__all__ = ["OperatorDatabase", "OpTimings"]


@dataclass(frozen=True)
class OpTimings:
    """Forward and backward time expressions for one operator."""

    fwd: Expr
    bwd: Expr


class OperatorDatabase:
    """Prices operators on one GPU; memoizes by operator signature."""

    #: peak-efficiency ceilings per op kind (fraction of tensor-core peak)
    KIND_MAX_EFF = {
        OpKind.GEMM: 1.00,   # scaled by gpu.max_gemm_efficiency
        OpKind.BMM: 0.62,
        OpKind.FLASH_ATTN: 0.80,
    }
    #: FLOPs at which efficiency reaches half of its ceiling
    KIND_F_HALF = {
        OpKind.GEMM: 2.5e10,
        OpKind.BMM: 4.0e10,
        OpKind.FLASH_ATTN: 3.0e10,
    }

    def __init__(self, gpu: GPUSpec):
        self.gpu = gpu
        self._cache: dict[tuple, OpTimings] = {}
        self._lookups = 0
        self._misses = 0

    # -- public API ---------------------------------------------------------

    def timings(self, op: Op) -> OpTimings:
        """Forward/backward time expressions for ``op`` (memoized)."""
        key = (op.name, op.kind, op.flops, op.io_bytes,
               op.bwd_flops_factor, op.bwd_io_factor)
        self._lookups += 1
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self._misses += 1
        timings = OpTimings(fwd=self._price(op, backward=False),
                            bwd=self._price(op, backward=True))
        self._cache[key] = timings
        return timings

    def fwd_time(self, op: Op) -> Expr:
        return self.timings(op).fwd

    def bwd_time(self, op: Op) -> Expr:
        return self.timings(op).bwd

    @property
    def cache_stats(self) -> tuple[int, int]:
        """(lookups, misses) — mirrors the paper's profile-once behaviour."""
        return self._lookups, self._misses

    # -- analytic kernel model ------------------------------------------------

    def _price(self, op: Op, *, backward: bool) -> Expr:
        flops = op.flops * op.bwd_flops_factor if backward else op.flops
        io = op.io_bytes * op.bwd_io_factor if backward else op.io_bytes
        overhead = Const(self.gpu.kernel_launch_overhead)
        if flops == Const(0) and io == Const(0):
            return Const(0)

        if op.kind in self.KIND_MAX_EFF:
            ceiling = self.KIND_MAX_EFF[op.kind]
            if op.kind == OpKind.GEMM:
                ceiling *= self.gpu.max_gemm_efficiency
            f_half = self.KIND_F_HALF[op.kind]
            # efficiency saturates as the per-rank workload grows
            eff = ceiling * flops / (flops + f_half)
            t_compute = flops / (self.gpu.peak_fp16_flops * eff)
            t_memory = io / self.gpu.mem_bandwidth
            return smax(t_compute, t_memory) + overhead

        # Memory-bound kernels: elementwise, norm, softmax, embedding, xent.
        # The small vector-ALU term prevents zero-cost ops with tiny IO.
        t_memory = io / self.gpu.mem_bandwidth
        t_alu = flops / (0.08 * self.gpu.peak_fp16_flops)
        return smax(t_memory, t_alu) + overhead

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OperatorDatabase(gpu={self.gpu.name}, entries={len(self._cache)})"
