"""Evaluation harness: workloads, runner, reporting (paper Section 6)."""

from .reporting import format_series, format_table, format_throughput_rows
from .runner import (
    Comparison,
    SystemOutcome,
    calibrated_interference,
    compare_systems,
    run_baseline,
    run_mist,
    run_via_service,
)
from .workloads import (
    SCALES,
    TuningScale,
    WorkloadSpec,
    batch_for_size,
    current_scale,
    default_seq_len,
    get_scale,
    gpu_count_for_size,
    mixed_workload,
    paper_workloads,
    scale_from_dict,
    scale_ref,
    scale_to_dict,
)


def __getattr__(name: str):
    # deprecated shim, forwarded lazily so importing this package stays
    # warning-free; repro.evaluation.runner.__getattr__ emits the
    # DeprecationWarning on actual access
    if name == "BASELINE_TUNERS":
        from . import runner

        return runner.BASELINE_TUNERS
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Comparison",
    "SCALES",
    "SystemOutcome",
    "TuningScale",
    "WorkloadSpec",
    "batch_for_size",
    "calibrated_interference",
    "compare_systems",
    "current_scale",
    "default_seq_len",
    "format_series",
    "format_table",
    "format_throughput_rows",
    "get_scale",
    "gpu_count_for_size",
    "mixed_workload",
    "paper_workloads",
    "run_baseline",
    "run_mist",
    "run_via_service",
    "scale_from_dict",
    "scale_ref",
    "scale_to_dict",
]
