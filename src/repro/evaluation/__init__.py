"""Evaluation harness: workloads, runner, reporting (paper Section 6)."""

from .reporting import format_series, format_table, format_throughput_rows
from .runner import (
    BASELINE_TUNERS,
    Comparison,
    SystemOutcome,
    calibrated_interference,
    compare_systems,
    run_baseline,
    run_mist,
    run_via_service,
)
from .workloads import (
    SCALES,
    TuningScale,
    WorkloadSpec,
    current_scale,
    get_scale,
    gpu_count_for_size,
    mixed_workload,
    paper_workloads,
    scale_from_dict,
    scale_ref,
    scale_to_dict,
)

__all__ = [
    "BASELINE_TUNERS",
    "Comparison",
    "SCALES",
    "SystemOutcome",
    "TuningScale",
    "WorkloadSpec",
    "calibrated_interference",
    "compare_systems",
    "current_scale",
    "format_series",
    "format_table",
    "format_throughput_rows",
    "get_scale",
    "gpu_count_for_size",
    "mixed_workload",
    "paper_workloads",
    "run_baseline",
    "run_mist",
    "run_via_service",
    "scale_from_dict",
    "scale_ref",
    "scale_to_dict",
]
