"""Plain-text tables and series for the benchmark harness output.

Benchmarks print the same rows/series the paper's figures show:
per-model normalized throughput (Figures 11/12), incremental-space
speedups (Figure 13), sweeps (Figures 14/15), and tuning-time bars
(Figure 16).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_throughput_rows", "format_series"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Minimal fixed-width table renderer (no external deps)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+".join("-" * (w + 2) for w in widths)
    line = f"+{line}+"

    def fmt(cells):
        inner = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        return f"| {inner} |"

    out = [line, fmt(headers), line]
    out.extend(fmt(row) for row in rows)
    out.append(line)
    return "\n".join(out)


def format_throughput_rows(title: str,
                           results: Mapping[str, Mapping[str, float]],
                           reference: str) -> str:
    """Figure 11/12-style rows: absolute + normalized throughput.

    ``results[workload][system] = samples/sec``.
    """
    systems = sorted({s for row in results.values() for s in row})
    systems.sort(key=lambda s: (s != reference, s))
    headers = ["Workload"] + [
        f"{s} (samp/s | x)" for s in systems
    ]
    rows = []
    for workload, row in results.items():
        ref = row.get(reference, 0.0)
        cells = [workload]
        for system in systems:
            value = row.get(system, 0.0)
            if value <= 0:
                cells.append("OOM/none")
            elif ref > 0:
                cells.append(f"{value:7.2f} | {value / ref:4.2f}x")
            else:
                cells.append(f"{value:7.2f} |   - ")
        rows.append(cells)
    return f"{title}\n" + format_table(headers, rows)


def format_series(title: str, x_label: str, series: Mapping[str, Sequence],
                  x_values: Sequence) -> str:
    """Sweep output (Figures 14/15/16): one column per x value."""
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        rows.append([name] + [
            f"{v:.3g}" if isinstance(v, (int, float)) else str(v)
            for v in values
        ])
    return f"{title}\n" + format_table(headers, rows)
