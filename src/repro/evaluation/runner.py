"""Evaluation runner: tune -> execute -> compare, per workload.

Every system is measured the same way: its tuner picks a plan, the
execution engine runs one iteration under that system's overlap
capability, and throughput (samples/second) is reported — mirroring the
paper's methodology where all numbers are measured on the same cluster.

Interference models are calibrated once per fabric type (PCIe vs
NVLink) against the engine's contention ground truth and cached for the
process lifetime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache

from repro.baselines import (
    AcesoTuner,
    DeepSpeedTuner,
    MegatronTuner,
    UniformHeuristicTuner,
)
from repro.core import MistTuner, SPACE_MIST, SearchSpace, TrainingPlan
from repro.costmodel import InterferenceModel, fit_interference_model
from repro.execution import (
    ContentionSpec,
    ExecutionEngine,
    IterationResult,
    OOMError,
    make_oracle,
)

from .workloads import SCALES, TuningScale, WorkloadSpec, current_scale

__all__ = [
    "SystemOutcome",
    "Comparison",
    "calibrated_interference",
    "run_mist",
    "run_baseline",
    "compare_systems",
]

BASELINE_TUNERS = {
    "megatron": MegatronTuner,
    "deepspeed": DeepSpeedTuner,
    "aceso": AcesoTuner,
    "uniform-heuristic": UniformHeuristicTuner,
}


@lru_cache(maxsize=4)
def calibrated_interference(pcie_only: bool) -> InterferenceModel:
    """Fit Algorithm 1's factors to the engine's contention ground truth."""
    spec = ContentionSpec.default(pcie_only=pcie_only)
    result = fit_interference_model(make_oracle(spec), pcie_only=pcie_only,
                                    n_samples=192)
    return result.model


@dataclass
class SystemOutcome:
    """One system's tuned-and-measured result on one workload."""

    system: str
    plan: TrainingPlan | None
    result: IterationResult | None
    tuning_time_seconds: float
    extra: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.result.throughput if self.result else 0.0

    @property
    def found(self) -> bool:
        return self.result is not None


@dataclass
class Comparison:
    """All systems on one workload, with speedups vs a reference."""

    workload: WorkloadSpec
    outcomes: dict[str, SystemOutcome]

    def speedup(self, system: str, reference: str = "megatron") -> float:
        ref = self.outcomes[reference].throughput
        if ref <= 0:
            return float("inf") if self.outcomes[system].throughput > 0 else 0.0
        return self.outcomes[system].throughput / ref


def run_mist(spec: WorkloadSpec, *, space: SearchSpace = SPACE_MIST,
             scale: TuningScale | None = None,
             imbalance_aware: bool | None = None) -> SystemOutcome:
    """Tune with Mist and execute the winning plan on the Mist runtime."""
    scale = scale or current_scale()
    tuned_space = scale.apply(space)
    if imbalance_aware is not None:
        tuned_space = tuned_space.with_(imbalance_aware=imbalance_aware)
    cluster = spec.cluster
    interference = calibrated_interference(not cluster.gpu.has_nvlink)
    tuner = MistTuner(
        spec.model, cluster, seq_len=spec.seq_len, flash=spec.flash,
        space=tuned_space, interference=interference,
        max_pareto_points=scale.max_pareto_points,
        max_gacc_candidates=scale.max_gacc_candidates,
    )
    tuning = tuner.tune(spec.global_batch)
    # Execute the tuner's top predicted plans and keep the best measured
    # one — the artifact's final benchmark-one-case step, which absorbs
    # the winner's-curse bias of selecting the argmin of ~2%-noisy
    # predictions.
    result = None
    best_plan = None
    engine = ExecutionEngine(cluster, system="mist")
    for plan in tuning.top_plans or (
            [tuning.best_plan] if tuning.best_plan else []):
        try:
            candidate = engine.run(plan, spec.model, seq_len=spec.seq_len,
                                   flash=spec.flash)
        except OOMError:
            continue
        if result is None or candidate.throughput > result.throughput:
            result = candidate
            best_plan = plan
    return SystemOutcome(
        system=f"mist[{tuned_space.name}]",
        plan=best_plan if best_plan is not None else tuning.best_plan,
        result=result,
        tuning_time_seconds=tuning.tuning_time_seconds,
        extra={
            "predicted_iteration_time": tuning.predicted_iteration_time,
            "configurations_evaluated": tuning.configurations_evaluated,
            "space": tuned_space.name,
        },
    )


def run_baseline(spec: WorkloadSpec, system: str) -> SystemOutcome:
    """Run one baseline tuner end to end."""
    if system not in BASELINE_TUNERS:
        raise KeyError(
            f"unknown baseline {system!r}; options: {sorted(BASELINE_TUNERS)}"
        )
    tuner_cls = BASELINE_TUNERS[system]
    kwargs = {}
    if system == "uniform-heuristic":
        kwargs["interference"] = calibrated_interference(
            not spec.cluster.gpu.has_nvlink
        )
        from repro.core import SPACE_MIST as _mist_space

        kwargs["space"] = current_scale().apply(_mist_space)
    tuner = tuner_cls(spec.model, spec.cluster, seq_len=spec.seq_len,
                      flash=spec.flash, **kwargs)
    start = time.perf_counter()
    result = tuner.tune(spec.global_batch)
    return SystemOutcome(
        system=system,
        plan=result.best_plan,
        result=result.best_result,
        tuning_time_seconds=time.perf_counter() - start,
        extra={
            "candidates_tried": result.candidates_tried,
            "candidates_oom": result.candidates_oom,
        },
    )


def compare_systems(spec: WorkloadSpec,
                    systems: tuple[str, ...] = ("megatron", "deepspeed",
                                                "mist"),
                    scale: TuningScale | None = None) -> Comparison:
    """Measure every requested system on one workload."""
    outcomes: dict[str, SystemOutcome] = {}
    for system in systems:
        if system == "mist":
            outcomes[system] = run_mist(spec, scale=scale)
        else:
            outcomes[system] = run_baseline(spec, system)
    return Comparison(workload=spec, outcomes=outcomes)
