"""Evaluation runner: tune -> execute -> compare, per workload.

Every system is measured the same way: its solver picks a plan, the
execution engine runs one iteration under that system's overlap
capability, and throughput (samples/second) is reported — mirroring the
paper's methodology where all numbers are measured on the same cluster.

Since the :mod:`repro.api` redesign this module is a thin compatibility
layer: workloads are turned into declarative
:class:`~repro.api.job.TuningJob`\\ s and dispatched through the solver
registry; the historical :class:`SystemOutcome` shape is preserved for
existing benchmarks.

Interference models are calibrated once per fabric type (PCIe vs
NVLink) against the engine's contention ground truth and cached for the
process lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.baselines import (
    AcesoTuner,
    DeepSpeedTuner,
    MegatronTuner,
    UniformHeuristicTuner,
)
from repro.core import SPACE_MIST, SearchSpace, TrainingPlan
from repro.core.spaces import space_ref
from repro.costmodel import InterferenceModel, fit_interference_model
from repro.execution import ContentionSpec, IterationResult, make_oracle

from .workloads import TuningScale, WorkloadSpec, current_scale, scale_ref

__all__ = [
    "SystemOutcome",
    "Comparison",
    "calibrated_interference",
    "run_mist",
    "run_baseline",
    "run_via_service",
    "compare_systems",
]

#: legacy system name -> tuner class (kept for backward compatibility;
#: new code should consult the repro.api solver registry instead)
BASELINE_TUNERS = {
    "megatron": MegatronTuner,
    "deepspeed": DeepSpeedTuner,
    "aceso": AcesoTuner,
    "uniform-heuristic": UniformHeuristicTuner,
}

#: legacy runner name -> registry solver name
_SOLVER_ALIASES = {"uniform-heuristic": "uniform"}


@lru_cache(maxsize=4)
def calibrated_interference(pcie_only: bool) -> InterferenceModel:
    """Fit Algorithm 1's factors to the engine's contention ground truth."""
    spec = ContentionSpec.default(pcie_only=pcie_only)
    result = fit_interference_model(make_oracle(spec), pcie_only=pcie_only,
                                    n_samples=192)
    return result.model


@dataclass
class SystemOutcome:
    """One system's tuned-and-measured result on one workload.

    Local runs carry the live :class:`IterationResult`; outcomes
    fetched from a ``repro serve`` daemon only have the serialized
    ``measured`` metrics (the wire format drops runtime objects), so
    :attr:`throughput` / :attr:`found` consult both.
    """

    system: str
    plan: TrainingPlan | None
    result: IterationResult | None
    tuning_time_seconds: float
    extra: dict = field(default_factory=dict)
    #: serialized metrics (``iteration_time``/``throughput``/...) for
    #: outcomes that crossed a process boundary
    measured: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        if self.result is not None:
            return self.result.throughput
        return float(self.measured.get("throughput", 0.0))

    @property
    def found(self) -> bool:
        return self.result is not None or bool(self.measured)


@dataclass
class Comparison:
    """All systems on one workload, with speedups vs a reference."""

    workload: WorkloadSpec
    outcomes: dict[str, SystemOutcome]

    def speedup(self, system: str, reference: str = "megatron") -> float:
        ref = self.outcomes[reference].throughput
        if ref <= 0:
            return float("inf") if self.outcomes[system].throughput > 0 else 0.0
        return self.outcomes[system].throughput / ref


def run_mist(spec: WorkloadSpec, *, space: SearchSpace = SPACE_MIST,
             scale: TuningScale | None = None,
             imbalance_aware: bool | None = None,
             parallelism: int = 1) -> SystemOutcome:
    """Tune with Mist and execute the winning plan on the Mist runtime."""
    # Imported lazily: repro.api imports this module for
    # calibrated_interference, so a top-level import would be circular.
    from repro.api import TuningJob, get_solver

    scale = scale or current_scale()
    tuned_space = space
    if imbalance_aware is not None:
        tuned_space = tuned_space.with_(imbalance_aware=imbalance_aware)
    job = TuningJob.from_workload(
        spec, space=space_ref(tuned_space), scale=scale_ref(scale),
        parallelism=parallelism,
    )
    report = get_solver("mist").solve(job)
    return SystemOutcome(
        system=f"mist[{report.extra.get('space', tuned_space.name)}]",
        plan=report.plan,
        result=report.result,
        tuning_time_seconds=report.tuning_time_seconds,
        extra={
            "predicted_iteration_time": report.predicted.get(
                "iteration_time", float("inf")),
            "configurations_evaluated": report.configurations_evaluated,
            "space": report.extra.get("space", tuned_space.name),
        },
    )


def run_baseline(spec: WorkloadSpec, system: str) -> SystemOutcome:
    """Run one baseline solver end to end (registry-driven)."""
    from repro.api import TuningJob, get_solver, solver_names

    solver = _SOLVER_ALIASES.get(system, system)
    valid = (set(BASELINE_TUNERS) | set(solver_names())) - {"mist"}
    if system not in valid:
        raise KeyError(
            f"unknown baseline {system!r}; options: {sorted(valid)}"
        )
    job = TuningJob.from_workload(spec, scale=scale_ref(current_scale()))
    report = get_solver(solver).solve(job)
    return SystemOutcome(
        system=system,
        plan=report.plan,
        result=report.result,
        tuning_time_seconds=report.tuning_time_seconds,
        extra=dict(report.extra),
    )


def run_via_service(spec: WorkloadSpec, system: str, service_url: str, *,
                    scale: TuningScale | None = None,
                    parallelism: int = 1,
                    timeout: float | None = None) -> SystemOutcome:
    """Solve one workload on a live ``repro serve`` daemon.

    The daemon owns the search (and its coalescing + plan cache); this
    process only submits the declarative job and reconstructs the
    outcome from the returned report. ``result`` is ``None`` — runtime
    execution objects never cross the wire — but ``measured`` carries
    the daemon-side measurements, so throughput comparisons work
    unchanged.
    """
    from repro.api import TuningJob
    from repro.service import Client

    solver = _SOLVER_ALIASES.get(system, system)
    job = TuningJob.from_workload(
        spec, scale=scale_ref(scale or current_scale()),
        parallelism=parallelism,
    )
    report = Client(service_url).solve(job, solver=solver, timeout=timeout)
    extra = dict(report.extra)
    extra["service_url"] = service_url
    extra["from_cache"] = report.from_cache
    return SystemOutcome(
        system=system,
        plan=report.plan,
        result=None,
        tuning_time_seconds=report.tuning_time_seconds,
        extra=extra,
        measured=dict(report.measured),
    )


def compare_systems(spec: WorkloadSpec,
                    systems: tuple[str, ...] = ("megatron", "deepspeed",
                                                "mist"),
                    scale: TuningScale | None = None,
                    service_url: str | None = None) -> Comparison:
    """Measure every requested system on one workload.

    With ``service_url``, every solve is delegated to that live
    ``repro serve`` daemon instead of running in-process.
    """
    outcomes: dict[str, SystemOutcome] = {}
    for system in systems:
        if service_url is not None:
            outcomes[system] = run_via_service(spec, system, service_url,
                                               scale=scale)
        elif system == "mist":
            outcomes[system] = run_mist(spec, scale=scale)
        else:
            outcomes[system] = run_baseline(spec, system)
    return Comparison(workload=spec, outcomes=outcomes)
