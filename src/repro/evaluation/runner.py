"""Evaluation runner: tune -> execute -> compare, per workload.

Every system is measured the same way: its solver picks a plan, the
execution engine runs one iteration under that system's overlap
capability, and throughput (samples/second) is reported — mirroring the
paper's methodology where all numbers are measured on the same cluster.

Since the :mod:`repro.api` redesign this module is a thin compatibility
layer: workloads are turned into declarative
:class:`~repro.api.job.TuningJob`\\ s and dispatched through the solver
registry; the historical :class:`SystemOutcome` shape is preserved for
existing benchmarks. Multi-system comparisons go through
:mod:`repro.campaigns` — :func:`compare_systems` is a one-workload
campaign — so local and ``repro serve`` runs share one code path.

Interference models are calibrated once per fabric type (PCIe vs
NVLink) against the engine's contention ground truth and cached for the
process lifetime.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core import SPACE_MIST, SearchSpace, TrainingPlan
from repro.core.spaces import space_ref
from repro.costmodel import InterferenceModel, fit_interference_model
from repro.execution import ContentionSpec, IterationResult, make_oracle

from .workloads import TuningScale, WorkloadSpec, current_scale, scale_ref

__all__ = [
    "SystemOutcome",
    "Comparison",
    "calibrated_interference",
    "run_mist",
    "run_baseline",
    "run_via_service",
    "compare_systems",
]

#: deprecated runner-era system names -> registry solver names
_LEGACY_SYSTEM_ALIASES = {"uniform-heuristic": "uniform"}


def _canonical_system(system: str) -> str:
    """Map a requested system name onto its registry solver name.

    Legacy runner-era names (``"uniform-heuristic"``) keep working for
    one release with a :class:`DeprecationWarning`, mirroring the
    ``MistTuner.tune()`` policy (see ``docs/API.md``).
    """
    alias = _LEGACY_SYSTEM_ALIASES.get(system)
    if alias is None:
        return system
    warnings.warn(
        f"system name {system!r} is deprecated; use the repro.api "
        f"registry name {alias!r} (removal in v2.0)",
        DeprecationWarning, stacklevel=3,
    )
    return alias


def __getattr__(name: str):
    # BASELINE_TUNERS predates the solver registry; kept one release as
    # a lazily built shim so old callers keep working with a warning
    if name == "BASELINE_TUNERS":
        from repro.baselines import (
            AcesoTuner,
            DeepSpeedTuner,
            MegatronTuner,
            UniformHeuristicTuner,
        )

        warnings.warn(
            "BASELINE_TUNERS is deprecated; consult the repro.api solver "
            "registry (solver_registry()) instead (removal in v2.0)",
            DeprecationWarning, stacklevel=2,
        )
        return {
            "megatron": MegatronTuner,
            "deepspeed": DeepSpeedTuner,
            "aceso": AcesoTuner,
            "uniform-heuristic": UniformHeuristicTuner,
        }
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


@lru_cache(maxsize=4)
def calibrated_interference(pcie_only: bool) -> InterferenceModel:
    """Fit Algorithm 1's factors to the engine's contention ground truth."""
    spec = ContentionSpec.default(pcie_only=pcie_only)
    result = fit_interference_model(make_oracle(spec), pcie_only=pcie_only,
                                    n_samples=192)
    return result.model


@dataclass
class SystemOutcome:
    """One system's tuned-and-measured result on one workload.

    Local runs carry the live :class:`IterationResult`; outcomes
    fetched from a ``repro serve`` daemon only have the serialized
    ``measured`` metrics (the wire format drops runtime objects), so
    :attr:`throughput` / :attr:`found` consult both.
    """

    system: str
    plan: TrainingPlan | None
    result: IterationResult | None
    tuning_time_seconds: float
    extra: dict = field(default_factory=dict)
    #: serialized metrics (``iteration_time``/``throughput``/...) for
    #: outcomes that crossed a process boundary
    measured: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        if self.result is not None:
            return self.result.throughput
        return float(self.measured.get("throughput", 0.0))

    @property
    def found(self) -> bool:
        return self.result is not None or bool(self.measured)


@dataclass
class Comparison:
    """All systems on one workload, with speedups vs a reference."""

    workload: WorkloadSpec
    outcomes: dict[str, SystemOutcome]

    def speedup(self, system: str, reference: str = "megatron") -> float:
        for role, name in (("reference", reference), ("system", system)):
            if name not in self.outcomes:
                raise ValueError(
                    f"{role} system {name!r} is not among this "
                    f"comparison's outcomes; available: "
                    f"{sorted(self.outcomes)}")
        ref = self.outcomes[reference].throughput
        if ref <= 0:
            return float("inf") if self.outcomes[system].throughput > 0 else 0.0
        return self.outcomes[system].throughput / ref


def _outcome_from_report(system: str, report, *,
                         service_url: str | None = None) -> SystemOutcome:
    """Rebuild the historical :class:`SystemOutcome` from a SolveReport."""
    if service_url is not None:
        extra = dict(report.extra)
        extra["service_url"] = service_url
        extra["from_cache"] = report.from_cache
        return SystemOutcome(
            system=system,
            plan=report.plan,
            result=None,
            tuning_time_seconds=report.tuning_time_seconds,
            extra=extra,
            measured=dict(report.measured),
        )
    if system == "mist":
        space = report.extra.get("space", SPACE_MIST.name)
        return SystemOutcome(
            system=f"mist[{space}]",
            plan=report.plan,
            result=report.result,
            tuning_time_seconds=report.tuning_time_seconds,
            extra={
                "predicted_iteration_time": report.predicted.get(
                    "iteration_time", float("inf")),
                "configurations_evaluated": report.configurations_evaluated,
                "space": space,
            },
            measured=dict(report.measured),
        )
    return SystemOutcome(
        system=system,
        plan=report.plan,
        result=report.result,
        tuning_time_seconds=report.tuning_time_seconds,
        extra=dict(report.extra),
        measured=dict(report.measured),
    )


def run_mist(spec: WorkloadSpec, *, space: SearchSpace = SPACE_MIST,
             scale: TuningScale | None = None,
             imbalance_aware: bool | None = None,
             parallelism: int = 1) -> SystemOutcome:
    """Tune with Mist and execute the winning plan on the Mist runtime."""
    # Imported lazily: repro.api imports this module for
    # calibrated_interference, so a top-level import would be circular.
    from repro.api import TuningJob, get_solver

    scale = scale or current_scale()
    tuned_space = space
    if imbalance_aware is not None:
        tuned_space = tuned_space.with_(imbalance_aware=imbalance_aware)
    job = TuningJob.from_workload(
        spec, space=space_ref(tuned_space), scale=scale_ref(scale),
        parallelism=parallelism,
    )
    report = get_solver("mist").solve(job)
    return SystemOutcome(
        system=f"mist[{report.extra.get('space', tuned_space.name)}]",
        plan=report.plan,
        result=report.result,
        tuning_time_seconds=report.tuning_time_seconds,
        extra={
            "predicted_iteration_time": report.predicted.get(
                "iteration_time", float("inf")),
            "configurations_evaluated": report.configurations_evaluated,
            "space": report.extra.get("space", tuned_space.name),
        },
    )


def run_baseline(spec: WorkloadSpec, system: str) -> SystemOutcome:
    """Run one baseline solver end to end (registry-driven)."""
    from repro.api import TuningJob, get_solver, solver_names

    solver = _canonical_system(system)
    valid = (set(solver_names()) | set(_LEGACY_SYSTEM_ALIASES)) - {"mist"}
    if system not in valid:
        raise KeyError(
            f"unknown baseline {system!r}; options: {sorted(valid)}"
        )
    job = TuningJob.from_workload(spec, scale=scale_ref(current_scale()))
    report = get_solver(solver).solve(job)
    return SystemOutcome(
        system=system,
        plan=report.plan,
        result=report.result,
        tuning_time_seconds=report.tuning_time_seconds,
        extra=dict(report.extra),
    )


def run_via_service(spec: WorkloadSpec, system: str, service_url: str, *,
                    scale: TuningScale | None = None,
                    parallelism: int = 1,
                    timeout: float | None = None) -> SystemOutcome:
    """Solve one workload on a live ``repro serve`` daemon.

    The daemon owns the search (and its coalescing + plan cache); this
    process only submits the declarative job and reconstructs the
    outcome from the returned report. ``result`` is ``None`` — runtime
    execution objects never cross the wire — but ``measured`` carries
    the daemon-side measurements, so throughput comparisons work
    unchanged.
    """
    from repro.api import TuningJob
    from repro.service import Client

    solver = _canonical_system(system)
    job = TuningJob.from_workload(
        spec, scale=scale_ref(scale or current_scale()),
        parallelism=parallelism,
    )
    report = Client(service_url).solve(job, solver=solver, timeout=timeout)
    return _outcome_from_report(system, report, service_url=service_url)


def compare_systems(spec: WorkloadSpec,
                    systems: tuple[str, ...] = ("megatron", "deepspeed",
                                                "mist"),
                    scale: TuningScale | None = None,
                    service_url: str | None = None) -> Comparison:
    """Measure every requested system on one workload.

    A thin wrapper over :func:`repro.campaigns.run_campaign`: the
    workload and systems become a one-row campaign matrix, solved by
    the ``inline`` executor — or, with ``service_url``, by the
    ``service`` executor against that live ``repro serve`` daemon. The
    per-system jobs (and so their plan-cache fingerprints) are
    identical to what :func:`run_mist` / :func:`run_baseline` build.
    """
    from repro.campaigns import CampaignSpec, run_campaign

    scale = scale or current_scale()
    solvers = tuple(_canonical_system(system) for system in systems)
    cluster_entry = (dict(spec.cluster_dict) if spec.cluster_dict is not None
                     else {"gpu": spec.gpu_name, "num_gpus": spec.num_gpus})
    campaign = CampaignSpec(
        name=f"compare-{spec.name}",
        solvers=solvers,
        models=(spec.model_spec,),
        clusters=(cluster_entry,),
        scales=(scale_ref(scale),),
        seq_lens=(spec.seq_len,),
        global_batches=(spec.global_batch,),
        flash=spec.flash,
    )
    reports: dict[str, object] = {}
    errors: dict[str, str] = {}

    def on_event(record, report):
        if report is not None:
            reports[record["solver"]] = report
        elif record.get("error"):
            errors[record["solver"]] = record["error"]

    executor = "inline" if service_url is None else "service"
    options = {} if service_url is None else {"url": service_url}
    run_campaign(campaign, executor=executor, executor_options=options,
                 on_event=on_event)

    outcomes: dict[str, SystemOutcome] = {}
    for system, solver in zip(systems, solvers):
        report = reports.get(solver)
        if report is None:
            raise RuntimeError(
                f"system {system!r} failed on {spec.name}: "
                f"{errors.get(solver, 'no report produced')}")
        outcomes[system] = _outcome_from_report(
            system, report, service_url=service_url)
    return Comparison(workload=spec, outcomes=outcomes)
