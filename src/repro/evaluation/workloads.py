"""Workload definitions (paper Tables 3/4) and tuning-scale presets.

The paper scales GPUs and global batch with model size: 1.3B on 2 GPUs
with batch 32 up to 22B on 32 GPUs with batch 512; sequence length 2048
on L4 machines and 4096 on A100 machines.

Because full-scale sweeps are expensive, benchmarks accept a
:class:`TuningScale` preset ("smoke" / "quick" / "full"), selected via
the ``REPRO_BENCH_SCALE`` environment variable; presets only change
search-grid resolution, never the model or the objective.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.spaces import SearchSpace
from repro.hardware import (
    ClusterSpec,
    HeterogeneousCluster,
    cluster_from_dict,
    make_cluster,
)
from repro.models.config import ModelConfig
from repro.models.registry import get_model

__all__ = [
    "WorkloadSpec",
    "TuningScale",
    "SCALES",
    "current_scale",
    "get_scale",
    "mixed_workload",
    "paper_workloads",
    "batch_for_size",
    "default_seq_len",
    "gpu_count_for_size",
    "scale_from_dict",
    "scale_ref",
    "scale_to_dict",
]

#: model size tag -> number of GPUs (Table 4 scaling rule)
_SIZE_TO_GPUS = {"1.3b": 2, "2.7b": 4, "6.7b": 8, "7b": 8, "13b": 16,
                 "22b": 32}
#: model size tag -> global batch size
_SIZE_TO_BATCH = {"1.3b": 32, "2.7b": 64, "6.7b": 128, "7b": 128,
                  "13b": 256, "22b": 512}

GPUS_PER_NODE = 8


def gpu_count_for_size(size: str) -> int:
    return _SIZE_TO_GPUS[size.lower()]


def batch_for_size(size: str) -> int:
    """Global batch the Table 4 scaling rule pairs with a model size."""
    return _SIZE_TO_BATCH[size.lower()]


def default_seq_len(gpu_name: str) -> int:
    """Paper default: 2048 on L4 machines, 4096 otherwise."""
    return 2048 if gpu_name == "L4" else 4096


@dataclass(frozen=True)
class WorkloadSpec:
    """One evaluation point: model + cluster + batch + sequence length.

    ``cluster_dict`` optionally pins an explicit cluster topology (the
    :func:`repro.hardware.cluster_from_dict` schema) — required for
    heterogeneous fleets, also usable to override the default
    8-GPUs-per-node homogeneous shape. When unset the cluster is
    derived from ``gpu_name``/``num_gpus`` exactly as before.
    """

    model_spec: str
    gpu_name: str
    num_gpus: int
    global_batch: int
    seq_len: int
    flash: bool = True
    cluster_dict: dict | None = field(default=None)

    @property
    def model(self) -> ModelConfig:
        return get_model(self.model_spec)

    @property
    def cluster(self) -> "ClusterSpec | HeterogeneousCluster":
        if self.cluster_dict is not None:
            return cluster_from_dict(self.cluster_dict)
        nodes = max(1, self.num_gpus // GPUS_PER_NODE)
        per_node = min(self.num_gpus, GPUS_PER_NODE)
        return make_cluster(self.gpu_name, nodes, per_node)

    @property
    def name(self) -> str:
        if self.cluster_dict is not None:
            cluster = self.cluster
            if isinstance(cluster, HeterogeneousCluster):
                return (f"{self.model_spec}-{cluster.name}"
                        f"-B{self.global_batch}-s{self.seq_len}"
                        f"{'-flash' if self.flash else ''}")
        return (f"{self.model_spec}-{self.gpu_name}x{self.num_gpus}"
                f"-B{self.global_batch}-s{self.seq_len}"
                f"{'-flash' if self.flash else ''}")


def mixed_workload(cluster: "dict | ClusterSpec | HeterogeneousCluster",
                   model_spec: str, global_batch: int, *,
                   seq_len: int = 2048, flash: bool = True) -> WorkloadSpec:
    """Workload on an explicit (possibly heterogeneous) cluster.

    ``gpu_name``/``num_gpus`` are derived from the cluster so the spec
    stays consistent; the Fig. 11-style sweep over mixed fleets builds
    its grid from these.
    """
    from repro.hardware import cluster_to_dict

    if isinstance(cluster, (ClusterSpec, HeterogeneousCluster)):
        data = cluster_to_dict(cluster)
    else:
        data = dict(cluster)
    parsed = cluster_from_dict(data)
    gpu_name = (parsed.groups[0].gpu.name
                if isinstance(parsed, HeterogeneousCluster)
                else parsed.gpu.name)
    return WorkloadSpec(
        model_spec=model_spec, gpu_name=gpu_name,
        num_gpus=parsed.total_gpus, global_batch=global_batch,
        seq_len=seq_len, flash=flash, cluster_dict=data,
    )


def paper_workloads(gpu_name: str, *, family: str = "gpt3",
                    sizes: tuple[str, ...] = ("1.3b", "2.7b", "6.7b",
                                              "13b", "22b"),
                    flash: bool = True) -> list[WorkloadSpec]:
    """The Table 4 grid for one GPU type and model family."""
    seq_len = default_seq_len(gpu_name)
    return [
        WorkloadSpec(
            model_spec=f"{family}-{size}",
            gpu_name=gpu_name,
            num_gpus=_SIZE_TO_GPUS[size],
            global_batch=_SIZE_TO_BATCH[size],
            seq_len=seq_len,
            flash=flash,
        )
        for size in sizes
    ]


@dataclass(frozen=True)
class TuningScale:
    """Search-grid resolution preset."""

    name: str
    offload_grid: tuple[float, ...]
    binary_grid: tuple[float, ...]
    ckpt_grid_points: int
    max_pareto_points: int
    layer_slack: int
    #: cap on gradient-accumulation candidates per pipeline depth
    max_gacc_candidates: int

    def apply(self, space: SearchSpace) -> SearchSpace:
        """Coarsen ``space``'s grids to this preset (never widen)."""
        changes = {
            "ckpt_grid_points": min(space.ckpt_grid_points,
                                    self.ckpt_grid_points),
            "layer_slack": min(space.layer_slack, self.layer_slack),
        }
        for grid_name, preset in (
            ("oo_grid", self.offload_grid), ("ao_grid", self.offload_grid),
            ("go_grid", self.binary_grid), ("wo_grid", self.binary_grid),
        ):
            grid = getattr(space, grid_name)
            if len(grid) > 1:
                changes[grid_name] = preset
        return space.with_(**changes)


SCALES: dict[str, TuningScale] = {
    "smoke": TuningScale(
        name="smoke", offload_grid=(0.0, 0.5), binary_grid=(0.0,),
        ckpt_grid_points=3, max_pareto_points=3, layer_slack=1,
        max_gacc_candidates=2,
    ),
    "quick": TuningScale(
        name="quick", offload_grid=(0.0, 0.5, 1.0), binary_grid=(0.0, 1.0),
        ckpt_grid_points=5, max_pareto_points=5, layer_slack=1,
        max_gacc_candidates=4,
    ),
    "full": TuningScale(
        name="full", offload_grid=(0.0, 0.25, 0.5, 0.75, 1.0),
        binary_grid=(0.0, 0.5, 1.0),
        ckpt_grid_points=9, max_pareto_points=8, layer_slack=2,
        max_gacc_candidates=8,
    ),
}


def current_scale() -> TuningScale:
    """Preset selected by ``REPRO_BENCH_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    try:
        return get_scale(name)
    except KeyError:
        raise KeyError(
            f"REPRO_BENCH_SCALE={name.lower()!r}; options: {sorted(SCALES)}"
        ) from None


def get_scale(name: str) -> TuningScale:
    """Look up a preset by name (case-insensitive)."""
    key = name.lower()
    if key not in SCALES:
        raise KeyError(f"unknown scale {name!r}; options: {sorted(SCALES)}")
    return SCALES[key]


def scale_to_dict(scale: TuningScale) -> dict:
    """JSON-ready dict for an arbitrary (possibly customized) preset."""
    return {
        "name": scale.name,
        "offload_grid": [float(v) for v in scale.offload_grid],
        "binary_grid": [float(v) for v in scale.binary_grid],
        "ckpt_grid_points": scale.ckpt_grid_points,
        "max_pareto_points": scale.max_pareto_points,
        "layer_slack": scale.layer_slack,
        "max_gacc_candidates": scale.max_gacc_candidates,
    }


def scale_from_dict(data: dict) -> TuningScale:
    """Inverse of :func:`scale_to_dict`."""
    return TuningScale(
        name=data["name"],
        offload_grid=tuple(float(v) for v in data["offload_grid"]),
        binary_grid=tuple(float(v) for v in data["binary_grid"]),
        ckpt_grid_points=int(data["ckpt_grid_points"]),
        max_pareto_points=int(data["max_pareto_points"]),
        layer_slack=int(data["layer_slack"]),
        max_gacc_candidates=int(data["max_gacc_candidates"]),
    )


def scale_ref(scale: TuningScale) -> "str | dict":
    """Serializable reference: a preset name when known, else a dict."""
    for name, preset in SCALES.items():
        if preset == scale:
            return name
    return scale_to_dict(scale)
