"""Discrete-event execution engine — the reproduction's GPU cluster.

Simulates training iterations for concrete plans: 4-channel contention,
overlap-centric scheduling (per executing system), exact 1F1B
dependencies, and memory tracking with OOM.
"""

from .engine import ExecutionEngine, IterationResult
from .events import ContentionSpec, corun_total_time, make_oracle
from .memory_tracker import (
    ALLOCATOR_SLACK,
    OOMError,
    StageMemoryReport,
    track_stage_memory,
)
from .pipeline import (
    PhaseRecord,
    PipelineResult,
    one_f_one_b_order,
    simulate_pipeline,
)
from .schedule import (
    MIST_IMPL_OVERHEAD,
    SCHEDULES,
    OverlapCapability,
    PhaseComponents,
    phase_wall_time,
)
from .timeline import render_timeline, timeline_summary

__all__ = [
    "ALLOCATOR_SLACK",
    "ContentionSpec",
    "ExecutionEngine",
    "IterationResult",
    "MIST_IMPL_OVERHEAD",
    "OOMError",
    "OverlapCapability",
    "PhaseComponents",
    "PhaseRecord",
    "PipelineResult",
    "SCHEDULES",
    "StageMemoryReport",
    "corun_total_time",
    "make_oracle",
    "one_f_one_b_order",
    "phase_wall_time",
    "render_timeline",
    "simulate_pipeline",
    "timeline_summary",
    "track_stage_memory",
]
