"""Discrete-event execution engine: the reproduction's "GPU cluster".

Runs a concrete :class:`~repro.core.plan.TrainingPlan` for one training
iteration and reports measured time, throughput, per-stage memory and a
full phase timeline. All systems (Mist and the baselines) execute here;
they differ in their :class:`~repro.execution.schedule.OverlapCapability`
and, upstream, in the plans their tuners can express.

Concreteness knobs that distinguish "execution" from the analyzer's
closed-form prediction (and give Section 6.6 its nonzero error):

* channel contention resolved by piecewise integration
  (:mod:`repro.execution.events`) rather than Algorithm 1;
* offloading ratios quantized to whole layers;
* 1F1B dependencies simulated exactly, including ramp-up/drain and the
  propagation of first/last-microbatch delays across stages;
* allocator slack in the memory tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import StageConfig, TrainingPlan
from repro.hardware import ClusterSpec, HeterogeneousCluster
from repro.models.config import ModelConfig
from repro.symbolic import compile_expr
from repro.tracing import ALL_SYMBOLS, TracedModel, trace
from repro.tracing.symbols import hardware_env

from .events import ContentionSpec
from .memory_tracker import OOMError, StageMemoryReport, track_stage_memory
from .pipeline import PipelineResult, simulate_pipeline
from .schedule import SCHEDULES, OverlapCapability, PhaseComponents, \
    phase_wall_time

__all__ = ["ExecutionEngine", "IterationResult", "OOMError"]

_ARG_NAMES = tuple(sym.name for sym in ALL_SYMBOLS)

_COMPONENT_FIELDS = (
    "comp_fwd", "comp_bwd", "tp_fwd", "tp_bwd", "dp_fwd", "dp_bwd",
    "p2p_fwd", "p2p_bwd", "d2h_fwd", "d2h_bwd", "h2d_fwd", "h2d_bwd",
    "comp_first", "dp_first", "d2h_first", "h2d_first", "dp_last",
)


@dataclass
class IterationResult:
    """Measured outcome of one simulated training iteration."""

    plan: TrainingPlan
    system: str
    iteration_time: float
    throughput: float
    stage_memory: list[StageMemoryReport]
    pipeline: PipelineResult
    metadata: dict = field(default_factory=dict)

    @property
    def peak_memory(self) -> float:
        return max(report.peak for report in self.stage_memory)

    def describe(self) -> str:
        lines = [
            f"[{self.system}] iteration {self.iteration_time * 1e3:.1f} ms, "
            f"throughput {self.throughput:.2f} samples/s"
        ]
        for report in self.stage_memory:
            lines.append(
                f"  stage {report.stage_idx}: peak "
                f"{report.peak / 2**30:.2f} GiB "
                f"({report.utilization * 100:.0f}% of device)"
            )
        return "\n".join(lines)


def _quantize(ratio: float, layers: int) -> float:
    if layers <= 0:
        return ratio
    return round(ratio * layers) / layers


class ExecutionEngine:
    """Simulated cluster executor for training plans.

    Accepts a homogeneous :class:`ClusterSpec` or a
    :class:`~repro.hardware.HeterogeneousCluster`; on the latter every
    stage executes on its :attr:`StageConfig.device_group`'s devices —
    memory is checked against that group's GPU, kernels are priced with
    its operator database, and activations crossing a group boundary
    ride the (usually slower) inter-group link.
    """

    def __init__(self, cluster: "ClusterSpec | HeterogeneousCluster", *,
                 system: str = "mist",
                 contention: ContentionSpec | None = None):
        if system not in SCHEDULES:
            raise ValueError(
                f"unknown system {system!r}; known: {sorted(SCHEDULES)}"
            )
        if isinstance(cluster, HeterogeneousCluster) and cluster.is_homogeneous:
            cluster = cluster.groups[0].cluster
        self.cluster = cluster
        self.hetero = (cluster if isinstance(cluster, HeterogeneousCluster)
                       else None)
        self.system = system
        self.capability: OverlapCapability = SCHEDULES[system]
        if self.hetero is None:
            pcie_only = not cluster.gpu.has_nvlink
        else:
            # conservative: contention factors of the weakest fabric
            pcie_only = any(not g.gpu.has_nvlink for g in self.hetero.groups)
        self.contention = contention or ContentionSpec.default(
            pcie_only=pcie_only
        )
        self._traced_cache: dict[tuple[str, bool, str], TracedModel] = {}
        self._fn_cache: dict[tuple[str, bool, str], object] = {}

    # -- caches -----------------------------------------------------------

    def _stage_cluster(self, stage: StageConfig) -> ClusterSpec:
        """The homogeneous (sub-)cluster executing ``stage``."""
        if self.hetero is None:
            return self.cluster
        return self.hetero.group_for_stage(stage.device_group).cluster

    def _traced(self, model: ModelConfig, flash: bool,
                cluster: ClusterSpec) -> TracedModel:
        key = (model.name, flash, cluster.gpu.name)
        if key not in self._traced_cache:
            self._traced_cache[key] = trace(model, cluster.gpu, flash=flash)
        return self._traced_cache[key]

    def _components_fn(self, model: ModelConfig, flash: bool,
                       cluster: ClusterSpec):
        key = (model.name, flash, cluster.gpu.name)
        if key not in self._fn_cache:
            rt = self._traced(model, flash, cluster).runtime
            exprs = [getattr(rt, name) for name in _COMPONENT_FIELDS]
            self._fn_cache[key] = compile_expr(exprs, arg_names=_ARG_NAMES)
        return self._fn_cache[key]

    # -- execution ------------------------------------------------------------

    def run(self, plan: TrainingPlan, model: ModelConfig, *, seq_len: int,
            flash: bool = True, check_memory: bool = True) -> IterationResult:
        """Execute one iteration; raises :class:`OOMError` if a stage
        exceeds device memory (like the real cluster would)."""
        plan.validate(model, self.cluster)

        num_stages = plan.num_stages
        gacc = plan.gacc
        stage_memory: list[StageMemoryReport] = []
        fwd_times: list[list[float]] = []
        bwd_times: list[list[float]] = []
        max_p2p_lat = 0.0
        boundary = self._group_boundaries(plan)

        for idx, stage in enumerate(plan.stages):
            gcluster = self._stage_cluster(stage)
            traced = self._traced(model, flash, gcluster)
            fn = self._components_fn(model, flash, gcluster)
            report = track_stage_memory(
                traced.graph, gcluster.gpu, stage,
                stage_idx=idx, num_stages=num_stages,
                inflight=plan.inflight(idx), seq_len=seq_len,
                runtime_overhead_bytes=self.capability.extra_memory_bytes,
            )
            stage_memory.append(report)
            if check_memory and not report.fits:
                raise OOMError(idx, report.peak, report.capacity)

            env = self._stage_env(plan, idx, stage, seq_len, gcluster,
                                  crosses_groups=boundary[idx])
            values = [float(np.asarray(v).reshape(-1)[0]) for v in fn(**env)]
            comp = dict(zip(_COMPONENT_FIELDS, values))

            fwd = PhaseComponents(
                comp=comp["comp_fwd"], tp=comp["tp_fwd"], dp=comp["dp_fwd"],
                p2p=comp["p2p_fwd"], d2h=comp["d2h_fwd"], h2d=comp["h2d_fwd"],
            )
            bwd = PhaseComponents(
                comp=comp["comp_bwd"], tp=comp["tp_bwd"], dp=comp["dp_bwd"],
                p2p=comp["p2p_bwd"], d2h=comp["d2h_bwd"], h2d=comp["h2d_bwd"],
            )
            first_extra = PhaseComponents(
                comp=comp["comp_first"], dp=comp["dp_first"],
                d2h=comp["d2h_first"], h2d=comp["h2d_first"],
            )
            last_extra = PhaseComponents(dp=comp["dp_last"])

            stage_fwd = []
            stage_bwd = []
            for k in range(gacc):
                fwd_k = fwd + first_extra if k == 0 else fwd
                bwd_k = bwd + last_extra if k == gacc - 1 else bwd
                stage_fwd.append(phase_wall_time(fwd_k, self.capability,
                                                 self.contention))
                stage_bwd.append(phase_wall_time(bwd_k, self.capability,
                                                 self.contention))
            fwd_times.append(stage_fwd)
            bwd_times.append(stage_bwd)
            max_p2p_lat = max(max_p2p_lat, float(env["p2p_lat"][0]))

        pipeline = simulate_pipeline(fwd_times, bwd_times,
                                     p2p_delay=max_p2p_lat)
        iteration_time = pipeline.total_time
        return IterationResult(
            plan=plan,
            system=self.system,
            iteration_time=iteration_time,
            throughput=plan.global_batch / iteration_time,
            stage_memory=stage_memory,
            pipeline=pipeline,
            metadata={"seq_len": seq_len, "flash": flash,
                      "model": model.name},
        )

    # -- helpers ----------------------------------------------------------------

    def _group_boundaries(self, plan: TrainingPlan) -> list[bool]:
        """Per stage: does its pipeline p2p cross a device-group edge?"""
        flags = [False] * plan.num_stages
        if self.hetero is None:
            return flags
        for i in range(plan.num_stages - 1):
            if (plan.stages[i].device_group
                    != plan.stages[i + 1].device_group):
                flags[i] = flags[i + 1] = True
        return flags

    def _stage_env(self, plan: TrainingPlan, idx: int, stage: StageConfig,
                   seq_len: int, cluster: ClusterSpec | None = None, *,
                   crosses_groups: bool = False) -> dict:
        cluster = cluster if cluster is not None else self.cluster
        z1, z2, z3 = stage.zero_flags
        env = {
            "b": stage.microbatch, "s": seq_len,
            "tp": stage.tp, "dp": stage.dp,
            "l": stage.layers, "ckpt": stage.ckpt,
            "z1": z1, "z2": z2, "z3": z3,
            # execution quantizes offload ratios to whole layers
            "wo": _quantize(stage.wo, stage.layers),
            "go": _quantize(stage.go, stage.layers),
            "oo": _quantize(stage.oo, stage.layers),
            "ao": _quantize(stage.ao, stage.layers),
            "gacc": plan.gacc, "inflight": plan.inflight(idx),
            "has_pre": int(idx == 0),
            "has_post": int(idx == plan.num_stages - 1),
        }
        env.update(hardware_env(cluster, stage.dp, stage.tp))
        if crosses_groups and self.hetero is not None:
            # activations to/from an adjacent stage on another device
            # group ride the inter-group link
            env["p2p_bw"] = np.minimum(env["p2p_bw"],
                                       self.hetero.inter_group_bandwidth)
            env["p2p_lat"] = np.maximum(env["p2p_lat"],
                                        self.hetero.inter_group_latency)
        return env
