"""Channel contention ground truth for the execution engine.

The engine models each GPU as four concurrent hardware channels —
compute, NCCL, H2D, D2H. When several channels are busy at once they
slow each other down. The engine resolves this with *piecewise
integration*: at every instant, each active channel progresses at
``1 / slowdown(channel, active_set)``, where the slowdown is the
product of pairwise contention coefficients; the integrator advances to
the next channel-completion boundary and repeats.

This plays the role the real hardware plays in the paper: the
analyzer's Algorithm-1 interference model (a different, cheaper
computation with per-combination fitted factors) is *calibrated
against* this integrator via :mod:`repro.costmodel.calibration`, just
as the paper fits its factors to benchmarked co-runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.interference import CHANNELS

__all__ = ["ContentionSpec", "corun_total_time", "make_oracle"]


def _default_pairs(pcie_only: bool) -> dict[frozenset[str], dict[str, float]]:
    """Ground-truth pairwise contention (deliberately NOT identical to the
    analyzer's seed factors — calibration must close the gap)."""
    c, g, h, d = CHANNELS
    if pcie_only:
        return {
            frozenset((c, g)): {c: 1.09, g: 1.16},
            frozenset((c, h)): {c: 1.04, h: 1.13},
            frozenset((c, d)): {c: 1.04, d: 1.12},
            frozenset((g, h)): {g: 1.62, h: 1.70},
            frozenset((g, d)): {g: 1.58, d: 1.66},
            frozenset((h, d)): {h: 1.18, d: 1.22},
        }
    return {
        frozenset((c, g)): {c: 1.10, g: 1.12},
        frozenset((c, h)): {c: 1.03, h: 1.08},
        frozenset((c, d)): {c: 1.03, d: 1.07},
        frozenset((g, h)): {g: 1.05, h: 1.10},
        frozenset((g, d)): {g: 1.05, d: 1.09},
        frozenset((h, d)): {h: 1.12, d: 1.14},
    }


@dataclass
class ContentionSpec:
    """Pairwise contention coefficients with product composition."""

    pair_factors: dict[frozenset[str], dict[str, float]] = field(
        default_factory=dict
    )
    max_factor: float = 3.0

    @classmethod
    def default(cls, *, pcie_only: bool) -> "ContentionSpec":
        return cls(pair_factors=_default_pairs(pcie_only))

    def slowdown(self, channel: str, active: frozenset[str]) -> float:
        """Slowdown of ``channel`` given the set of active channels."""
        factor = 1.0
        for other in active:
            if other == channel:
                continue
            pair = self.pair_factors.get(frozenset((channel, other)), {})
            factor *= pair.get(channel, 1.0)
        return min(factor, self.max_factor)

    def _slowdown_table(self) -> np.ndarray:
        """table[mask, ch] = slowdown of channel ch when ``mask`` active."""
        table = np.ones((16, 4))
        for mask in range(16):
            active = frozenset(CHANNELS[i] for i in range(4) if mask >> i & 1)
            for i in range(4):
                if mask >> i & 1:
                    table[mask, i] = self.slowdown(CHANNELS[i], active)
        return table


def corun_total_time(times, spec: ContentionSpec) -> np.ndarray:
    """Piecewise-integrated completion time of co-running channels.

    ``times`` is ``(..., 4)`` of busy seconds per channel, in the order
    of :data:`repro.costmodel.interference.CHANNELS`. Returns the total
    wall time for each row.
    """
    arr = np.asarray(times, dtype=float)
    squeeze = arr.ndim == 1
    work = arr.reshape(-1, 4).copy()
    total = np.zeros(work.shape[0])
    table = spec._slowdown_table()

    # At most 4 channels finish, so at most 4 integration segments.
    for _ in range(4):
        active = work > 1e-15
        if not active.any():
            break
        masks = (active * (1 << np.arange(4))).sum(axis=1)
        slows = table[masks]  # (n, 4)
        with np.errstate(divide="ignore", invalid="ignore"):
            finish = np.where(active, work * slows, np.inf)
        dt = finish.min(axis=1)
        dt = np.where(np.isfinite(dt), dt, 0.0)
        rates = np.where(active, 1.0 / slows, 0.0)
        work = np.maximum(work - dt[:, None] * rates, 0.0)
        total += dt

    return total[0] if squeeze else total.reshape(arr.shape[:-1])


def make_oracle(spec: ContentionSpec):
    """Adapt the integrator to the calibration oracle signature."""

    def oracle(workloads: np.ndarray) -> np.ndarray:
        return corun_total_time(workloads, spec)

    return oracle
