"""Simulated per-stage memory accounting with OOM detection.

The engine's memory view is deliberately *more concrete* than the
analyzer's symbolic model:

* offloading ratios quantize to whole layers (a real runtime offloads
  tensors, not fractions of tensors);
* an allocator-slack factor models fragmentation;
* the in-flight microbatch count comes from the executed 1F1B schedule.

These differences are what make the Section 6.6 prediction-accuracy
experiment meaningful — the analyzer is compared against this tracker,
as the paper compares against measured memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import GPUSpec
from repro.models.graph import ModelGraph
from repro.symbolic import evaluate
from repro.tracing.liveness import backward_transient, forward_transient
from repro.tracing.memory import ALLOCATOR_SLACK, FRAMEWORK_OVERHEAD_BYTES

from ..core.plan import StageConfig

__all__ = ["OOMError", "StageMemoryReport", "track_stage_memory",
           "ALLOCATOR_SLACK"]

FP16_BYTES = 2
GRAD_BYTES = 2
OPT_BYTES = 12


class OOMError(RuntimeError):
    """The simulated stage exceeds device memory."""

    def __init__(self, stage_idx: int, required: float, capacity: float):
        self.stage_idx = stage_idx
        self.required = required
        self.capacity = capacity
        super().__init__(
            f"stage {stage_idx}: needs {required / 2**30:.2f} GiB, device "
            f"has {capacity / 2**30:.2f} GiB usable"
        )


@dataclass
class StageMemoryReport:
    """Peak memory breakdown of one executed stage (bytes)."""

    stage_idx: int
    peak: float
    params: float
    grads: float
    opt_states: float
    activations: float
    transient: float
    capacity: float

    @property
    def fits(self) -> bool:
        return self.peak <= self.capacity

    @property
    def utilization(self) -> float:
        return self.peak / self.capacity


def _quantize_ratio(ratio: float, layers: int) -> float:
    """Round an offload ratio to whole layers (ratio of ``layers``)."""
    if layers <= 0:
        return ratio
    return round(ratio * layers) / layers


def track_stage_memory(graph: ModelGraph, gpu: GPUSpec, stage: StageConfig,
                       *, stage_idx: int, num_stages: int, inflight: int,
                       seq_len: int,
                       runtime_overhead_bytes: float = 0.0) -> StageMemoryReport:
    """Account peak memory of one stage under the executed schedule.

    ``runtime_overhead_bytes`` is extra memory pinned by the executing
    system's runtime (beyond the common framework overhead).
    """
    env = {"b": stage.microbatch, "s": seq_len, "tp": stage.tp}
    block, pre, post = graph.block, graph.pre, graph.post
    has_pre = stage_idx == 0
    has_post = stage_idx == num_stages - 1

    # -- parameter/grad/optimizer state bytes on this rank -------------------
    block_params = float(evaluate(block.param_count, env))
    param_elems = stage.layers * block_params
    if has_pre:
        param_elems += float(evaluate(pre.param_count, env))
    if has_post:
        param_elems += float(evaluate(post.param_count, env))

    z1, z2, z3 = stage.zero_flags
    dp = stage.dp
    wo = _quantize_ratio(stage.wo, stage.layers)
    go = _quantize_ratio(stage.go, stage.layers)
    oo = _quantize_ratio(stage.oo, stage.layers)
    ao = _quantize_ratio(stage.ao, stage.layers)

    p16 = FP16_BYTES * param_elems
    g16 = GRAD_BYTES * param_elems
    o32 = OPT_BYTES * param_elems
    z3_frac = 1.0 / dp if z3 else 1.0
    z2_frac = 1.0 / dp if z2 else 1.0
    z1_frac = 1.0 / dp if z1 else 1.0

    block_p16 = FP16_BYTES * block_params
    params_buf = (2 * block_p16) if (z3 or wo > 0) else 0.0
    grads_buf = (2 * GRAD_BYTES * block_params) if (z2 or go > 0) else 0.0
    opt_buf = (2 * OPT_BYTES * block_params * z1_frac) if oo > 0 else 0.0

    params = p16 * z3_frac * (1 - wo) + params_buf
    grads = g16 * z2_frac * (1 - go) + grads_buf
    opt_states = o32 * z1_frac * (1 - oo) + opt_buf

    # -- activations -----------------------------------------------------------
    saved_full = float(evaluate(block.saved_activation_bytes(), env))
    saved_ckpt = float(evaluate(block.ckpt_saved_bytes(), env))
    saved_block = (stage.layers - stage.ckpt) * saved_full \
        + stage.ckpt * saved_ckpt
    saved_edges = 0.0
    if has_pre:
        saved_edges += float(evaluate(pre.saved_activation_bytes(), env))
    if has_post:
        saved_edges += float(evaluate(post.saved_activation_bytes(), env))
    boundary = float(evaluate(graph.boundary_activation_bytes, env))
    activations = inflight * ((1 - ao) * saved_block + saved_edges) \
        + 2 * boundary

    # -- transients --------------------------------------------------------------
    t_fwd = float(evaluate(forward_transient(block), env))
    t_bwd = float(evaluate(backward_transient(block), env))
    if stage.ckpt > 0:
        t_bwd += saved_full - saved_ckpt
    if has_pre:
        t_fwd = max(t_fwd, float(evaluate(forward_transient(pre), env)))
        t_bwd = max(t_bwd, float(evaluate(backward_transient(pre), env)))
    if has_post:
        t_fwd = max(t_fwd, float(evaluate(forward_transient(post), env)))
        t_bwd = max(t_bwd, float(evaluate(backward_transient(post), env)))
    transient = max(t_fwd, t_bwd)

    # Fragmentation slack applies to the churning allocations
    # (activations/transients); persistent state buffers pack tightly.
    states = params + grads + opt_states
    peak = states + (activations + transient) * (1.0 + ALLOCATOR_SLACK)
    return StageMemoryReport(
        stage_idx=stage_idx,
        peak=peak,
        params=params,
        grads=grads,
        opt_states=opt_states,
        activations=activations,
        transient=transient,
        capacity=(gpu.usable_memory_bytes - FRAMEWORK_OVERHEAD_BYTES
                  - runtime_overhead_bytes),
    )
