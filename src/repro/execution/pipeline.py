"""1F1B pipeline-parallel schedule simulation.

Simulates one training iteration of the one-forward-one-backward
(PipeDream-flush / Megatron) schedule at (stage, microbatch, phase)
granularity. Phase durations are supplied by the engine (they already
include overlap resolution within the stage); this module enforces the
*cross-stage* dependencies exactly, which is where pipeline bubbles and
the first/last-microbatch imbalance emerge.

Dependencies:
* ``F(i, k)`` needs ``F(i-1, k)`` plus the boundary p2p transfer;
* ``B(i, k)`` needs ``B(i+1, k)`` plus the boundary p2p transfer;
* within a stage, phases execute in the canonical 1F1B order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhaseRecord", "PipelineResult", "one_f_one_b_order",
           "simulate_pipeline"]


@dataclass(frozen=True)
class PhaseRecord:
    """One executed phase in the simulated timeline."""

    stage: int
    kind: str  # "F" or "B"
    microbatch: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PipelineResult:
    """Outcome of simulating one iteration."""

    total_time: float
    timeline: list[PhaseRecord]
    #: per-stage busy time (for bubble/idle analysis)
    stage_busy: list[float]

    @property
    def num_stages(self) -> int:
        return len(self.stage_busy)

    def bubble_fraction(self, stage: int) -> float:
        """Idle fraction of ``stage`` during the iteration."""
        if self.total_time <= 0:
            return 0.0
        return 1.0 - self.stage_busy[stage] / self.total_time


def one_f_one_b_order(num_stages: int, num_microbatches: int,
                      stage: int) -> list[tuple[str, int]]:
    """Phase order of ``stage`` under 1F1B.

    ``stage`` runs ``min(S - stage, G)`` warm-up forwards, then
    alternates 1F1B, then drains the remaining backwards.
    """
    if not 0 <= stage < num_stages:
        raise ValueError(f"stage {stage} outside [0, {num_stages})")
    warmup = min(num_stages - stage, num_microbatches)
    order: list[tuple[str, int]] = [("F", k) for k in range(warmup)]
    next_fwd = warmup
    next_bwd = 0
    while next_bwd < num_microbatches:
        order.append(("B", next_bwd))
        next_bwd += 1
        if next_fwd < num_microbatches:
            order.append(("F", next_fwd))
            next_fwd += 1
    return order


def simulate_pipeline(fwd_times, bwd_times, p2p_delay: float = 0.0,
                      ) -> PipelineResult:
    """Simulate one 1F1B iteration.

    ``fwd_times[i][k]`` / ``bwd_times[i][k]`` are phase durations for
    stage ``i``, microbatch ``k``; ``p2p_delay`` is the exposed latency
    of a boundary transfer (the bandwidth term is already inside the
    phase components).
    """
    num_stages = len(fwd_times)
    num_microbatches = len(fwd_times[0])
    if any(len(row) != num_microbatches for row in fwd_times + bwd_times):
        raise ValueError("ragged phase-duration arrays")

    orders = [one_f_one_b_order(num_stages, num_microbatches, i)
              for i in range(num_stages)]
    end: dict[tuple[str, int, int], float] = {}
    position = [0] * num_stages  # next op index per stage
    stage_clock = [0.0] * num_stages
    timeline: list[PhaseRecord] = []
    stage_busy = [0.0] * num_stages

    remaining = sum(len(order) for order in orders)
    while remaining:
        progressed = False
        for i in range(num_stages):
            while position[i] < len(orders[i]):
                kind, k = orders[i][position[i]]
                if kind == "F":
                    dep = ("F", i - 1, k) if i > 0 else None
                    duration = fwd_times[i][k]
                else:
                    dep = ("B", i + 1, k) if i < num_stages - 1 else None
                    duration = bwd_times[i][k]
                if dep is not None and dep not in end:
                    break  # dependency not ready; revisit next sweep
                ready = stage_clock[i]
                if dep is not None:
                    ready = max(ready, end[dep] + p2p_delay)
                record = PhaseRecord(stage=i, kind=kind, microbatch=k,
                                     start=ready, end=ready + duration)
                timeline.append(record)
                end[(kind, i, k)] = record.end
                stage_clock[i] = record.end
                stage_busy[i] += duration
                position[i] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            raise RuntimeError("pipeline schedule deadlocked (bug)")

    total = max(stage_clock)
    timeline.sort(key=lambda r: (r.start, r.stage))
    return PipelineResult(total_time=total, timeline=timeline,
                          stage_busy=stage_busy)
