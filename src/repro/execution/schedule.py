"""Overlap-centric schedule template (paper Section 5.1, Figure 7).

Defines how a stage's per-phase component times combine into wall-clock
phase durations, depending on the *executing system's* overlap
capability:

* **Mist** runs the fine-grained overlapped schedule: data-parallel
  collectives, activation/weight/optimizer offload traffic and pipeline
  p2p all co-run with compute (subject to contention); tensor-parallel
  all-reduces stay on the critical path (the consuming kernel waits on
  them), as they do on real systems.
* **Megatron-style** systems overlap only the gradient-synchronization
  collectives with backward compute; everything else serializes.
* **Serial** overlaps nothing (the no-overlap ablation).

Mist's extra machinery costs a small compute overhead
(``MIST_IMPL_OVERHEAD``): with identical search spaces Mist is slightly
*slower* than Megatron-LM, exactly as the paper's Figure 13 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import ContentionSpec, corun_total_time

__all__ = ["PhaseComponents", "OverlapCapability", "SCHEDULES", "phase_wall_time",
           "MIST_IMPL_OVERHEAD"]

#: relative compute overhead of Mist's orchestrated execution engine
MIST_IMPL_OVERHEAD = 0.015


@dataclass(frozen=True)
class PhaseComponents:
    """Busy seconds of one (stage, phase) pair, by resource."""

    comp: float = 0.0
    tp: float = 0.0
    dp: float = 0.0
    p2p: float = 0.0
    d2h: float = 0.0
    h2d: float = 0.0

    def scaled(self, factor: float) -> "PhaseComponents":
        return PhaseComponents(*(getattr(self, f) * factor for f in
                                 ("comp", "tp", "dp", "p2p", "d2h", "h2d")))

    def __add__(self, other: "PhaseComponents") -> "PhaseComponents":
        return PhaseComponents(*(getattr(self, f) + getattr(other, f) for f in
                                 ("comp", "tp", "dp", "p2p", "d2h", "h2d")))


@dataclass(frozen=True)
class OverlapCapability:
    """What the executing system can hide behind compute."""

    name: str
    #: DP collectives (grad sync, ZeRO gathers) overlap with compute
    overlap_dp: bool
    #: pipeline p2p transfers are asynchronous
    overlap_p2p: bool
    #: host-link offloading traffic overlaps with compute
    overlap_offload: bool
    #: constant relative compute overhead of the runtime
    impl_overhead: float = 0.0
    #: device memory the runtime itself pins beyond the common framework
    #: overhead (the paper observes Megatron-LM plans OOM under
    #: DeepSpeed, forcing it into sub-optimal configurations)
    extra_memory_bytes: float = 0.0


SCHEDULES: dict[str, OverlapCapability] = {
    # Mist: fully overlapped schedule, small orchestration overhead.
    "mist": OverlapCapability("mist", True, True, True,
                              impl_overhead=MIST_IMPL_OVERHEAD),
    # Megatron-LM: the hand-optimized reference runtime.
    "megatron": OverlapCapability("megatron", True, True, False),
    # DeepSpeed: serial offload traffic, a less tuned pipeline/kernel
    # path, and a memory-hungrier runtime (the paper measures it
    # consistently below Megatron-LM and observes its OOMs).
    "deepspeed": OverlapCapability("deepspeed", True, True, False,
                                   impl_overhead=0.03,
                                   extra_memory_bytes=1.6 * 1024**3),
    # Aceso: research prototype runtime on Megatron-like foundations.
    "aceso": OverlapCapability("aceso", True, True, False,
                               impl_overhead=0.012,
                               extra_memory_bytes=0.4 * 1024**3),
    # No-overlap ablation.
    "serial": OverlapCapability("serial", False, False, False),
}


def phase_wall_time(components: PhaseComponents, capability: OverlapCapability,
                    contention: ContentionSpec) -> float:
    """Wall-clock duration of one phase under ``capability``.

    TP all-reduces always serialize with compute (dependent kernels);
    overlappable components co-run through the contention integrator;
    non-overlappable ones are added serially.
    """
    comp = components.comp * (1.0 + capability.impl_overhead) + components.tp
    g2g = 0.0
    serial = 0.0
    if capability.overlap_dp:
        g2g += components.dp
    else:
        serial += components.dp
    if capability.overlap_p2p:
        g2g += components.p2p
    else:
        serial += components.p2p
    if capability.overlap_offload:
        c2g, g2c = components.h2d, components.d2h
    else:
        serial += components.h2d + components.d2h
        c2g = g2c = 0.0
    overlapped = corun_total_time(np.array([comp, g2g, c2g, g2c]), contention)
    return float(overlapped) + serial
