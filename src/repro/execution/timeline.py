"""ASCII timeline rendering for simulated pipelines (Figures 2/3/4/10).

Turns a :class:`~repro.execution.pipeline.PipelineResult` into a
character Gantt chart: one row per stage, microbatch indices (mod 10)
for forward phases, lowercase letters/digits in brackets for backward
phases, dots for bubbles.
"""

from __future__ import annotations

from .pipeline import PipelineResult

__all__ = ["render_timeline", "timeline_summary"]


def render_timeline(result: PipelineResult, *, width: int = 100) -> str:
    """Render the executed schedule as an ASCII Gantt chart."""
    total = result.total_time
    if total <= 0:
        return "(empty timeline)"
    num_stages = result.num_stages
    rows = [["."] * width for _ in range(num_stages)]

    for record in result.timeline:
        begin = int(record.start / total * width)
        finish = max(begin + 1, int(record.end / total * width))
        finish = min(finish, width)
        if record.kind == "F":
            glyph = str(record.microbatch % 10)
        else:
            glyph = chr(ord("a") + record.microbatch % 26)
        for pos in range(begin, finish):
            rows[record.stage][pos] = glyph

    header = (
        f"iteration = {total * 1e3:.1f} ms   "
        "(digits: forward mb, letters: backward mb, dots: idle)"
    )
    lines = [header]
    for stage in range(num_stages):
        bubble = result.bubble_fraction(stage) * 100
        lines.append(
            f"stage {stage:2d} |{''.join(rows[stage])}| idle {bubble:4.1f}%"
        )
    return "\n".join(lines)


def timeline_summary(result: PipelineResult) -> dict:
    """Aggregate statistics of an executed schedule."""
    return {
        "total_time": result.total_time,
        "stage_busy": list(result.stage_busy),
        "bubble_fractions": [
            result.bubble_fraction(i) for i in range(result.num_stages)
        ],
        "max_bubble_fraction": max(
            result.bubble_fraction(i) for i in range(result.num_stages)
        ),
        "num_phases": len(result.timeline),
    }
