"""Hardware model: GPU specs and cluster topology (paper Table 3)."""

from .gpu import GPU_REGISTRY, GiB, GPUSpec, get_gpu
from .topology import ClusterSpec, CommGroup, make_cluster

__all__ = [
    "GPU_REGISTRY",
    "GPUSpec",
    "GiB",
    "ClusterSpec",
    "CommGroup",
    "get_gpu",
    "make_cluster",
]
