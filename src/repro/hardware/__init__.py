"""Hardware model: GPU specs and cluster topology (paper Table 3).

Homogeneous clusters are :class:`ClusterSpec`; mixed fleets (e.g.
A100 + L4) are :class:`HeterogeneousCluster` — ordered, named
:class:`DeviceGroup`\\ s joined by an inter-group link. Both serialize
through :func:`cluster_to_dict` / :func:`cluster_from_dict`.
"""

from .delta import ClusterDelta, DeltaError
from .gpu import GPU_REGISTRY, GiB, GPUSpec, get_gpu
from .topology import (
    ClusterSpec,
    CommGroup,
    DeviceGroup,
    HeterogeneousCluster,
    cluster_from_dict,
    cluster_to_dict,
    load_cluster,
    make_cluster,
)

__all__ = [
    "GPU_REGISTRY",
    "GPUSpec",
    "GiB",
    "ClusterDelta",
    "ClusterSpec",
    "CommGroup",
    "DeltaError",
    "DeviceGroup",
    "HeterogeneousCluster",
    "cluster_from_dict",
    "cluster_to_dict",
    "get_gpu",
    "load_cluster",
    "make_cluster",
]
