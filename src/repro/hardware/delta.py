"""Cluster deltas: declarative changes to a running fleet.

Elastic training reacts to the fleet changing under it — spot nodes
preempted, stragglers drained, a rack of different GPUs joining, a
degraded inter-group link. :class:`ClusterDelta` expresses those
events as an ordered list of operations against the cluster JSON
schema of :func:`repro.hardware.topology.cluster_from_dict`, so the
same delta document can be shipped to the tuning service
(``POST /replan``), the CLI (``repro replan --delta``), and campaign
scenarios.

Operations (each a plain dict with an ``"op"`` key):

``add_nodes`` / ``remove_nodes``
    Grow or shrink a device group (or a homogeneous cluster) by whole
    nodes. ``{"op": "add_nodes", "count": 2, "group": "l4"}``.
``resize_group``
    Set a group's shape outright:
    ``{"op": "resize_group", "group": "l4", "num_nodes": 1,
    "gpus_per_node": 4}`` (either key may be omitted to keep it).
``retype_group``
    Swap the GPU type of a group:
    ``{"op": "retype_group", "group": "l4", "gpu": "A100-40GB"}``.
``remove_group``
    Drop a device group entirely (spot preemption of a whole slice).
``degrade_link``
    Scale a bandwidth by ``factor`` in (0, 1]: ``link`` is
    ``"inter_node"`` (per group) or ``"inter_group"`` (the link
    joining groups). Factors > 1 are allowed and model a repaired /
    upgraded link.

Deltas are pure: :meth:`ClusterDelta.apply` returns a new cluster and
never mutates its input. Applying a delta to a homogeneous cluster
treats it as its own single group addressed by ``group=""``.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from .gpu import get_gpu
from .topology import (
    ClusterSpec,
    HeterogeneousCluster,
    cluster_from_dict,
    cluster_to_dict,
)

__all__ = ["ClusterDelta", "DeltaError"]

_OPS = ("add_nodes", "remove_nodes", "resize_group", "retype_group",
        "remove_group", "degrade_link")


class DeltaError(ValueError):
    """A delta is malformed or cannot apply to the given cluster."""


def _as_op(data: Mapping[str, Any]) -> dict[str, Any]:
    op = dict(data)
    kind = op.get("op")
    if kind not in _OPS:
        raise DeltaError(f"unknown delta op {kind!r}; known: {list(_OPS)}")
    return op


@dataclass(frozen=True)
class ClusterDelta:
    """An ordered sequence of cluster-change operations.

    Build one from the constructor helpers and combine with ``+``::

        delta = (ClusterDelta.remove_nodes(1, group="l4")
                 + ClusterDelta.degrade_link(0.5, link="inter_group"))
        new_cluster = delta.apply(old_cluster)
    """

    ops: tuple[dict, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(_as_op(op) for op in self.ops))
        if not self.ops:
            raise DeltaError("a ClusterDelta needs at least one operation")

    # -- constructors ------------------------------------------------------

    @classmethod
    def add_nodes(cls, count: int, *, group: str = "") -> "ClusterDelta":
        return cls(ops=({"op": "add_nodes", "count": int(count),
                         "group": group},))

    @classmethod
    def remove_nodes(cls, count: int, *, group: str = "") -> "ClusterDelta":
        return cls(ops=({"op": "remove_nodes", "count": int(count),
                         "group": group},))

    @classmethod
    def resize_group(cls, group: str, *, num_nodes: int | None = None,
                     gpus_per_node: int | None = None) -> "ClusterDelta":
        op: dict[str, Any] = {"op": "resize_group", "group": group}
        if num_nodes is not None:
            op["num_nodes"] = int(num_nodes)
        if gpus_per_node is not None:
            op["gpus_per_node"] = int(gpus_per_node)
        return cls(ops=(op,))

    @classmethod
    def retype_group(cls, group: str, gpu: str) -> "ClusterDelta":
        return cls(ops=({"op": "retype_group", "group": group, "gpu": gpu},))

    @classmethod
    def remove_group(cls, group: str) -> "ClusterDelta":
        return cls(ops=({"op": "remove_group", "group": group},))

    @classmethod
    def degrade_link(cls, factor: float, *, link: str = "inter_node",
                     group: str = "") -> "ClusterDelta":
        op: dict[str, Any] = {"op": "degrade_link", "factor": float(factor),
                              "link": link}
        if group:
            op["group"] = group
        return cls(ops=(op,))

    def __add__(self, other: "ClusterDelta") -> "ClusterDelta":
        if not isinstance(other, ClusterDelta):
            return NotImplemented
        return ClusterDelta(ops=self.ops + other.ops)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {"ops": [dict(op) for op in self.ops]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterDelta":
        if not isinstance(data, Mapping) or "ops" not in data:
            raise DeltaError('a delta document is {"ops": [...]}')
        ops = data["ops"]
        if not isinstance(ops, list):
            raise DeltaError("'ops' must be a list of operation objects")
        return cls(ops=tuple(ops))

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ClusterDelta":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Stable short hash of the canonical JSON form."""
        digest = hashlib.sha256(self.to_json().encode("utf-8"))
        return digest.hexdigest()[:16]

    def describe(self) -> str:
        parts = []
        for op in self.ops:
            kind = op["op"]
            group = op.get("group", "")
            tag = f"@{group}" if group else ""
            if kind in ("add_nodes", "remove_nodes"):
                sign = "+" if kind == "add_nodes" else "-"
                parts.append(f"{sign}{op['count']}node{tag}")
            elif kind == "resize_group":
                shape = "x".join(str(op[k]) for k in
                                 ("num_nodes", "gpus_per_node") if k in op)
                parts.append(f"resize{tag}={shape}")
            elif kind == "retype_group":
                parts.append(f"retype{tag}={op['gpu']}")
            elif kind == "remove_group":
                parts.append(f"drop{tag}")
            else:
                parts.append(f"{op.get('link', 'inter_node')}"
                             f"{tag}x{op['factor']}")
        return ",".join(parts)

    # -- application -------------------------------------------------------

    def apply(self, cluster: "ClusterSpec | HeterogeneousCluster | dict"
              ) -> "ClusterSpec | HeterogeneousCluster | dict":
        """Apply every operation in order; returns the changed cluster.

        Accepts a cluster object or its dict form and returns the same
        kind. The result is validated by a
        :func:`~repro.hardware.topology.cluster_from_dict` round-trip,
        so an impossible outcome (zero nodes, no groups left) raises
        :class:`DeltaError` rather than producing a broken cluster.
        """
        as_dict = isinstance(cluster, dict)
        data = copy.deepcopy(cluster) if as_dict else cluster_to_dict(cluster)
        grouped = "groups" in data
        groups: list[dict]
        if grouped:
            groups = [dict(g) for g in data["groups"]]
        else:
            groups = [dict(data)]
        for op in self.ops:
            self._apply_op(op, data, groups, grouped)
        if grouped:
            if not groups:
                raise DeltaError("delta removed every device group")
            data["groups"] = groups
        else:
            data = dict(groups[0])
        result = cluster_from_dict(data)  # validates the outcome
        return cluster_to_dict(result) if as_dict else result

    def _apply_op(self, op: dict, data: dict, groups: list[dict],
                  grouped: bool) -> None:
        kind = op["op"]
        if kind == "degrade_link" and op.get("link", "inter_node") == "inter_group":
            if not grouped:
                raise DeltaError(
                    "inter_group link delta on a homogeneous cluster")
            factor = self._factor(op)
            data["inter_group_bandwidth"] = (
                self._bandwidth(data, "inter_group_bandwidth",
                                HeterogeneousCluster.inter_group_bandwidth)
                * factor)
            data.pop("inter_group_bandwidth_gbps", None)
            return
        group = self._group(op, groups, grouped)
        if kind == "add_nodes":
            group["num_nodes"] = self._nodes(group) + self._count(op)
        elif kind == "remove_nodes":
            remaining = self._nodes(group) - self._count(op)
            if remaining < 1:
                raise DeltaError(
                    f"removing {op['count']} node(s) leaves group "
                    f"{op.get('group') or group.get('name', '')!r} empty; "
                    "use remove_group instead")
            group["num_nodes"] = remaining
        elif kind == "resize_group":
            if "num_nodes" in op:
                group["num_nodes"] = int(op["num_nodes"])
            if "gpus_per_node" in op:
                group["gpus_per_node"] = int(op["gpus_per_node"])
        elif kind == "retype_group":
            group["gpu"] = get_gpu(str(op["gpu"])).name
        elif kind == "remove_group":
            if not grouped:
                raise DeltaError(
                    "remove_group on a homogeneous cluster would leave "
                    "nothing; shrink it with remove_nodes instead")
            groups.remove(group)
        else:  # degrade_link, inter_node scope
            factor = self._factor(op)
            default = group.get("inter_node_bandwidth")
            if default is None and "inter_node_bandwidth_gbps" not in group:
                raise DeltaError(
                    "degrade_link needs an explicit inter_node_bandwidth "
                    "on the target group")
            group["inter_node_bandwidth"] = (
                self._bandwidth(group, "inter_node_bandwidth", 0.0) * factor)
            group.pop("inter_node_bandwidth_gbps", None)

    @staticmethod
    def _group(op: dict, groups: list[dict], grouped: bool) -> dict:
        name = str(op.get("group", "") or "")
        if not grouped:
            if name:
                raise DeltaError(
                    f"homogeneous cluster has no group {name!r}")
            return groups[0]
        if not name:
            if len(groups) == 1:
                return groups[0]
            raise DeltaError(
                f"op {op['op']!r} needs a 'group' on a cluster with "
                f"{len(groups)} groups")
        for group in groups:
            if str(group.get("name", "") or group.get("gpu", "").lower()) == name:
                return group
        known = [str(g.get("name", "") or g.get("gpu", "").lower())
                 for g in groups]
        raise DeltaError(f"unknown device group {name!r}; known: {known}")

    @staticmethod
    def _count(op: dict) -> int:
        count = int(op.get("count", 0))
        if count < 1:
            raise DeltaError(f"{op['op']} needs a positive 'count'")
        return count

    @staticmethod
    def _factor(op: dict) -> float:
        factor = float(op.get("factor", 0.0))
        if factor <= 0.0:
            raise DeltaError("degrade_link 'factor' must be > 0")
        return factor

    @staticmethod
    def _nodes(group: dict) -> int:
        return int(group.get("num_nodes", 1))

    @staticmethod
    def _bandwidth(data: dict, key: str, default: float) -> float:
        if f"{key}_gbps" in data:
            return float(data[f"{key}_gbps"]) * 1e9 / 8
        return float(data.get(key, default))
