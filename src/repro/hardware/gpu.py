"""GPU device specifications.

Encodes the hardware used in the paper's evaluation (Table 3): NVIDIA
L4 (PCIe-only GCP machines) and NVIDIA A100-40GB (NVLink AWS
p4d.24xlarge machines), plus a few extra devices for experimentation.

All bandwidth figures are *effective* (achievable) rather than
theoretical peaks, which is what a calibrated cost model would measure.
Units: bytes, bytes/second, FLOP/s, seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GPUSpec", "GPU_REGISTRY", "get_gpu", "GiB"]

GiB = 1024**3


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a single GPU device."""

    name: str
    memory_bytes: int
    #: dense fp16/bf16 tensor-core peak, FLOP/s
    peak_fp16_flops: float
    #: fp32 peak (used for optimizer math), FLOP/s
    peak_fp32_flops: float
    #: HBM/GDDR bandwidth, bytes/s
    mem_bandwidth: float
    #: host<->device copy bandwidth per direction, bytes/s
    pcie_bandwidth: float
    #: per-GPU NVLink bandwidth to peers, bytes/s (None = PCIe only)
    nvlink_bandwidth: float | None = None
    #: fixed per-kernel launch overhead, seconds
    kernel_launch_overhead: float = 4.0e-6
    #: fraction of device memory usable by the framework (CUDA context
    #: and NCCL buffers are carved out of the rest)
    usable_memory_fraction: float = 0.96
    #: achievable fraction of peak FLOPs for large, well-shaped GEMMs
    max_gemm_efficiency: float = 0.72
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def usable_memory_bytes(self) -> int:
        return int(self.memory_bytes * self.usable_memory_fraction)

    @property
    def memory_gb(self) -> float:
        """Device memory in GiB (convenience for reports and docs)."""
        return self.memory_bytes / GiB

    @property
    def has_nvlink(self) -> bool:
        return self.nvlink_bandwidth is not None

    @property
    def gpu_gpu_bandwidth(self) -> float:
        """Effective per-GPU bandwidth for intra-node GPU<->GPU traffic."""
        if self.nvlink_bandwidth is not None:
            return self.nvlink_bandwidth
        # PCIe peer-to-peer traffic shares the host bridge; slightly lower
        # than host copies in practice.
        return 0.85 * self.pcie_bandwidth

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Devices used by the paper's evaluation plus common alternatives.
GPU_REGISTRY: dict[str, GPUSpec] = {
    # GCP G2: PCIe Gen3 x16 host link, no NVLink (Table 3).
    "L4": GPUSpec(
        name="L4",
        memory_bytes=24 * GiB,
        peak_fp16_flops=121e12,
        peak_fp32_flops=30e12,
        mem_bandwidth=300e9,
        pcie_bandwidth=13.0e9,
        nvlink_bandwidth=None,
    ),
    # AWS p4d.24xlarge: A100-40GB, NVSwitch, PCIe Gen4 host link (Table 3).
    "A100-40GB": GPUSpec(
        name="A100-40GB",
        memory_bytes=40 * GiB,
        peak_fp16_flops=312e12,
        peak_fp32_flops=19.5e12,
        mem_bandwidth=1555e9,
        pcie_bandwidth=24.0e9,
        nvlink_bandwidth=235e9,
    ),
    "A100-80GB": GPUSpec(
        name="A100-80GB",
        memory_bytes=80 * GiB,
        peak_fp16_flops=312e12,
        peak_fp32_flops=19.5e12,
        mem_bandwidth=2039e9,
        pcie_bandwidth=24.0e9,
        nvlink_bandwidth=235e9,
    ),
    "H100-80GB": GPUSpec(
        name="H100-80GB",
        memory_bytes=80 * GiB,
        peak_fp16_flops=989e12,
        peak_fp32_flops=67e12,
        mem_bandwidth=3350e9,
        pcie_bandwidth=50.0e9,
        nvlink_bandwidth=430e9,
    ),
    # Small PCIe card useful for laptop-scale tests.
    "T4": GPUSpec(
        name="T4",
        memory_bytes=16 * GiB,
        peak_fp16_flops=65e12,
        peak_fp32_flops=8.1e12,
        mem_bandwidth=300e9,
        pcie_bandwidth=10.0e9,
        nvlink_bandwidth=None,
    ),
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    key = name.strip()
    if key in GPU_REGISTRY:
        return GPU_REGISTRY[key]
    for candidate, spec in GPU_REGISTRY.items():
        if candidate.lower() == key.lower():
            return spec
    raise KeyError(
        f"unknown GPU {name!r}; known: {sorted(GPU_REGISTRY)}"
    )
