"""Cluster topology: nodes, device meshes, and communication groups.

The paper's tuning problem is posed over a device mesh ``(N, M)`` —
``N`` nodes with ``M`` GPUs each. Pipeline stages receive contiguous
GPU ranges; within a stage the GPUs form a ``DP x TP`` grid with TP
groups packed into nodes whenever they fit (the standard Megatron-LM
placement, which both the paper and all baselines assume).

:class:`CommGroup` captures what the communication cost model needs to
price a collective: group size, how many nodes it spans, and the
per-rank bottleneck bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gpu import GPUSpec, get_gpu

__all__ = ["ClusterSpec", "CommGroup", "make_cluster"]


@dataclass(frozen=True)
class CommGroup:
    """A set of ranks participating in one collective."""

    size: int
    #: number of distinct nodes the group spans
    nodes_spanned: int
    #: effective per-rank bus bandwidth (bytes/s) for ring collectives
    bus_bandwidth: float
    #: per-hop latency (seconds)
    latency: float

    @property
    def intra_node(self) -> bool:
        return self.nodes_spanned <= 1


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``num_nodes`` nodes x ``gpus_per_node`` GPUs."""

    gpu: GPUSpec
    num_nodes: int
    gpus_per_node: int
    #: per-node network bandwidth (bytes/s); Table 3: 100 Gbps (L4 nodes),
    #: 400 Gbps (A100 nodes)
    inter_node_bandwidth: float
    #: one-way network latency, seconds
    inter_node_latency: float = 12.0e-6
    #: intra-node hop latency, seconds
    intra_node_latency: float = 3.0e-6

    def __post_init__(self):
        if self.num_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("cluster must have at least one node and one GPU")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def name(self) -> str:
        return f"{self.num_nodes}x{self.gpus_per_node}x{self.gpu.name}"

    # -- group construction ----------------------------------------------

    def group(self, size: int, *, colocated_fraction: float | None = None) -> CommGroup:
        """Build a :class:`CommGroup` for ``size`` ranks placed contiguously.

        ``colocated_fraction`` overrides the inferred intra-node share —
        used by tensor-parallel groups that are deliberately packed into
        a node.
        """
        if size < 1:
            raise ValueError("group size must be >= 1")
        if size > self.total_gpus:
            raise ValueError(
                f"group of {size} exceeds cluster of {self.total_gpus} GPUs"
            )
        if size <= self.gpus_per_node and (colocated_fraction is None or colocated_fraction >= 1.0):
            nodes = 1
        else:
            nodes = -(-size // self.gpus_per_node)  # ceil
        if nodes == 1:
            bw = self.gpu.gpu_gpu_bandwidth
            lat = self.intra_node_latency
        else:
            ranks_per_node = size / nodes
            # Ring crossing nodes: each inter-node edge carries the ring
            # traffic of all ranks on the node through one NIC.
            inter_bw_per_rank = self.inter_node_bandwidth / ranks_per_node
            bw = min(self.gpu.gpu_gpu_bandwidth, inter_bw_per_rank)
            lat = self.inter_node_latency
        return CommGroup(size=size, nodes_spanned=nodes, bus_bandwidth=bw, latency=lat)

    def tp_group(self, tp: int) -> CommGroup:
        """Tensor-parallel group (packed within a node when possible)."""
        return self.group(tp)

    def dp_group(self, dp: int, tp: int) -> CommGroup:
        """Data-parallel group of ``dp`` ranks, strided by ``tp``.

        When ``tp * dp`` fits in one node, the DP group is intra-node.
        Otherwise DP ranks with the same TP index live on different
        nodes, so DP collectives cross the network.
        """
        if dp == 1:
            return CommGroup(1, 1, self.gpu.gpu_gpu_bandwidth, self.intra_node_latency)
        if tp * dp <= self.gpus_per_node:
            return self.group(dp)
        # DP ranks are spread across ceil(dp*tp/M) nodes; each node hosts
        # M/tp of them and they all share the NIC.
        ranks_per_node = max(1, self.gpus_per_node // max(tp, 1))
        ranks_per_node = min(ranks_per_node, dp)
        nodes = -(-dp // ranks_per_node)
        inter_bw_per_rank = self.inter_node_bandwidth / ranks_per_node
        bw = min(self.gpu.gpu_gpu_bandwidth, inter_bw_per_rank)
        return CommGroup(size=dp, nodes_spanned=nodes, bus_bandwidth=bw,
                         latency=self.inter_node_latency)

    def p2p_bandwidth(self, stage_gpus: int) -> float:
        """Pipeline p2p bandwidth between adjacent stages.

        If consecutive stages live on the same node the transfer uses the
        intra-node fabric; once a stage occupies one or more full nodes,
        activations cross the network.
        """
        if stage_gpus < self.gpus_per_node or self.num_nodes == 1:
            return self.gpu.gpu_gpu_bandwidth
        return self.inter_node_bandwidth

    def p2p_latency(self, stage_gpus: int) -> float:
        if stage_gpus < self.gpus_per_node or self.num_nodes == 1:
            return self.intra_node_latency
        return self.inter_node_latency

    # -- mesh enumeration ---------------------------------------------------

    def stage_parallelism_options(self, stage_gpus: int) -> list[tuple[int, int]]:
        """All ``(dp, tp)`` grids for a stage owning ``stage_gpus`` GPUs.

        TP is restricted to powers of two that fit within a node — TP
        across PCIe/network is never competitive and the paper's
        baselines make the same restriction.
        """
        options = []
        tp = 1
        while tp <= stage_gpus and tp <= self.gpus_per_node:
            if stage_gpus % tp == 0:
                options.append((stage_gpus // tp, tp))
            tp *= 2
        return options

    def pipeline_stage_counts(self, max_stages: int | None = None) -> list[int]:
        """Candidate pipeline sizes: powers of two dividing the cluster."""
        limit = self.total_gpus if max_stages is None else min(max_stages, self.total_gpus)
        sizes = []
        s = 1
        while s <= limit:
            if self.total_gpus % s == 0:
                sizes.append(s)
            s *= 2
        return sizes


def make_cluster(gpu_name: str, num_nodes: int, gpus_per_node: int) -> ClusterSpec:
    """Convenience constructor with Table 3 network defaults per GPU type."""
    gpu = get_gpu(gpu_name)
    if gpu.name == "L4":
        inter_bw = 100e9 / 8  # 100 Gbps
    elif gpu.name.startswith("A100"):
        inter_bw = 400e9 / 8  # 400 Gbps
    elif gpu.name.startswith("H100"):
        inter_bw = 3200e9 / 8
    else:
        inter_bw = 100e9 / 8
    return ClusterSpec(
        gpu=gpu,
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        inter_node_bandwidth=inter_bw,
    )
