"""Cluster topology: nodes, device meshes, and communication groups.

The paper's tuning problem is posed over a device mesh ``(N, M)`` —
``N`` nodes with ``M`` GPUs each. Pipeline stages receive contiguous
GPU ranges; within a stage the GPUs form a ``DP x TP`` grid with TP
groups packed into nodes whenever they fit (the standard Megatron-LM
placement, which both the paper and all baselines assume).

:class:`CommGroup` captures what the communication cost model needs to
price a collective: group size, how many nodes it spans, and the
per-rank bottleneck bandwidth.

Mixed fleets are modelled by :class:`HeterogeneousCluster`: an ordered
sequence of named :class:`DeviceGroup`\\ s, each a homogeneous
sub-cluster with its own :class:`~repro.hardware.gpu.GPUSpec` and
network, linked by an inter-group bandwidth the pipeline crosses when
adjacent stages live on different groups. A one-group heterogeneous
cluster is equivalent to its plain :class:`ClusterSpec`.

Both cluster kinds serialize to plain dicts (:func:`cluster_to_dict` /
:func:`cluster_from_dict`) — the schema behind ``TuningJob.cluster``
and the CLI's ``--cluster file.json`` (see ``docs/API.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .gpu import GPUSpec, get_gpu

__all__ = [
    "ClusterSpec",
    "CommGroup",
    "DeviceGroup",
    "HeterogeneousCluster",
    "cluster_from_dict",
    "cluster_to_dict",
    "load_cluster",
    "make_cluster",
]


@dataclass(frozen=True)
class CommGroup:
    """A set of ranks participating in one collective."""

    size: int
    #: number of distinct nodes the group spans
    nodes_spanned: int
    #: effective per-rank bus bandwidth (bytes/s) for ring collectives
    bus_bandwidth: float
    #: per-hop latency (seconds)
    latency: float

    @property
    def intra_node(self) -> bool:
        return self.nodes_spanned <= 1


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``num_nodes`` nodes x ``gpus_per_node`` GPUs."""

    gpu: GPUSpec
    num_nodes: int
    gpus_per_node: int
    #: per-node network bandwidth (bytes/s); Table 3: 100 Gbps (L4 nodes),
    #: 400 Gbps (A100 nodes)
    inter_node_bandwidth: float
    #: one-way network latency, seconds
    inter_node_latency: float = 12.0e-6
    #: intra-node hop latency, seconds
    intra_node_latency: float = 3.0e-6

    def __post_init__(self):
        if self.num_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("cluster must have at least one node and one GPU")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def name(self) -> str:
        return f"{self.num_nodes}x{self.gpus_per_node}x{self.gpu.name}"

    # -- group construction ----------------------------------------------

    def group(self, size: int, *, colocated_fraction: float | None = None) -> CommGroup:
        """Build a :class:`CommGroup` for ``size`` ranks placed contiguously.

        ``colocated_fraction`` overrides the inferred intra-node share —
        used by tensor-parallel groups that are deliberately packed into
        a node.
        """
        if size < 1:
            raise ValueError("group size must be >= 1")
        if size > self.total_gpus:
            raise ValueError(
                f"group of {size} exceeds cluster of {self.total_gpus} GPUs"
            )
        if size <= self.gpus_per_node and (colocated_fraction is None or colocated_fraction >= 1.0):
            nodes = 1
        else:
            nodes = -(-size // self.gpus_per_node)  # ceil
        if nodes == 1:
            bw = self.gpu.gpu_gpu_bandwidth
            lat = self.intra_node_latency
        else:
            ranks_per_node = size / nodes
            # Ring crossing nodes: each inter-node edge carries the ring
            # traffic of all ranks on the node through one NIC.
            inter_bw_per_rank = self.inter_node_bandwidth / ranks_per_node
            bw = min(self.gpu.gpu_gpu_bandwidth, inter_bw_per_rank)
            lat = self.inter_node_latency
        return CommGroup(size=size, nodes_spanned=nodes, bus_bandwidth=bw, latency=lat)

    def tp_group(self, tp: int) -> CommGroup:
        """Tensor-parallel group (packed within a node when possible)."""
        return self.group(tp)

    def dp_group(self, dp: int, tp: int) -> CommGroup:
        """Data-parallel group of ``dp`` ranks, strided by ``tp``.

        When ``tp * dp`` fits in one node, the DP group is intra-node.
        Otherwise DP ranks with the same TP index live on different
        nodes, so DP collectives cross the network.
        """
        if dp == 1:
            return CommGroup(1, 1, self.gpu.gpu_gpu_bandwidth, self.intra_node_latency)
        if tp * dp <= self.gpus_per_node:
            return self.group(dp)
        # DP ranks are spread across ceil(dp*tp/M) nodes; each node hosts
        # M/tp of them and they all share the NIC.
        ranks_per_node = max(1, self.gpus_per_node // max(tp, 1))
        ranks_per_node = min(ranks_per_node, dp)
        nodes = -(-dp // ranks_per_node)
        inter_bw_per_rank = self.inter_node_bandwidth / ranks_per_node
        bw = min(self.gpu.gpu_gpu_bandwidth, inter_bw_per_rank)
        return CommGroup(size=dp, nodes_spanned=nodes, bus_bandwidth=bw,
                         latency=self.inter_node_latency)

    def p2p_bandwidth(self, stage_gpus: int) -> float:
        """Pipeline p2p bandwidth between adjacent stages.

        If consecutive stages live on the same node the transfer uses the
        intra-node fabric; once a stage occupies one or more full nodes,
        activations cross the network.
        """
        if stage_gpus < self.gpus_per_node or self.num_nodes == 1:
            return self.gpu.gpu_gpu_bandwidth
        return self.inter_node_bandwidth

    def p2p_latency(self, stage_gpus: int) -> float:
        if stage_gpus < self.gpus_per_node or self.num_nodes == 1:
            return self.intra_node_latency
        return self.inter_node_latency

    # -- mesh enumeration ---------------------------------------------------

    def stage_parallelism_options(self, stage_gpus: int) -> list[tuple[int, int]]:
        """All ``(dp, tp)`` grids for a stage owning ``stage_gpus`` GPUs.

        TP is restricted to powers of two that fit within a node — TP
        across PCIe/network is never competitive and the paper's
        baselines make the same restriction.
        """
        options = []
        tp = 1
        while tp <= stage_gpus and tp <= self.gpus_per_node:
            if stage_gpus % tp == 0:
                options.append((stage_gpus // tp, tp))
            tp *= 2
        return options

    def pipeline_stage_counts(self, max_stages: int | None = None) -> list[int]:
        """Candidate pipeline sizes: powers of two dividing the cluster."""
        limit = self.total_gpus if max_stages is None else min(max_stages, self.total_gpus)
        sizes = []
        s = 1
        while s <= limit:
            if self.total_gpus % s == 0:
                sizes.append(s)
            s *= 2
        return sizes


def make_cluster(gpu_name: str, num_nodes: int, gpus_per_node: int) -> ClusterSpec:
    """Convenience constructor with Table 3 network defaults per GPU type."""
    gpu = get_gpu(gpu_name)
    return ClusterSpec(
        gpu=gpu,
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        inter_node_bandwidth=_default_network_bandwidth(gpu),
    )


def _default_network_bandwidth(gpu: GPUSpec) -> float:
    """Table 3 per-node network defaults by GPU type (bytes/s)."""
    if gpu.name.startswith("A100"):
        return 400e9 / 8  # 400 Gbps
    if gpu.name.startswith("H100"):
        return 3200e9 / 8
    return 100e9 / 8  # L4 nodes and anything unlisted: 100 Gbps


# -- heterogeneous clusters ------------------------------------------------


@dataclass(frozen=True)
class DeviceGroup:
    """A named homogeneous slice of a mixed fleet.

    The group behaves as its own :class:`ClusterSpec`: pipeline stages
    placed on the group form ``DP x TP`` grids inside it, collectives
    are priced with its fabric, and its GPU's memory bounds the stages
    it hosts.
    """

    name: str
    cluster: ClusterSpec

    def __post_init__(self):
        if not self.name:
            raise ValueError("device group needs a non-empty name")

    @property
    def gpu(self) -> GPUSpec:
        return self.cluster.gpu

    @property
    def total_gpus(self) -> int:
        return self.cluster.total_gpus

    @property
    def num_nodes(self) -> int:
        return self.cluster.num_nodes

    @property
    def gpus_per_node(self) -> int:
        return self.cluster.gpus_per_node

    def describe(self) -> str:
        gpu = self.gpu
        fabric = (f"NVLink {gpu.nvlink_bandwidth / 1e9:.0f} GB/s"
                  if gpu.has_nvlink else "PCIe only")
        net = self.cluster.inter_node_bandwidth * 8 / 1e9
        return (f"{self.name}: {self.num_nodes} node(s) x "
                f"{self.gpus_per_node} x {gpu.name}  "
                f"mem {gpu.memory_gb:.0f} GB  {fabric}  net {net:.0f} Gbps")


@dataclass(frozen=True)
class HeterogeneousCluster:
    """An ordered mixed fleet: pipeline flows through groups in order.

    Stage placement is per *group* (the paper's contiguous-range rule
    applied within each homogeneous slice): every pipeline stage is
    assigned to exactly one group, stages on the same group are
    contiguous, and activations crossing a group boundary travel over
    ``inter_group_bandwidth``.
    """

    groups: tuple[DeviceGroup, ...]
    #: bandwidth of the link between device groups (bytes/s); mixed
    #: fleets are typically joined by the slower datacenter network
    inter_group_bandwidth: float = 100e9 / 8
    #: one-way latency across the inter-group link, seconds
    inter_group_latency: float = 25.0e-6

    def __post_init__(self):
        object.__setattr__(self, "groups", tuple(self.groups))
        if not self.groups:
            raise ValueError("heterogeneous cluster needs at least one group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device-group names: {names}")
        if self.inter_group_bandwidth <= 0:
            raise ValueError("inter_group_bandwidth must be > 0")

    @property
    def total_gpus(self) -> int:
        return sum(g.total_gpus for g in self.groups)

    @property
    def is_homogeneous(self) -> bool:
        """True when a single group makes this a plain cluster."""
        return len(self.groups) == 1

    @property
    def name(self) -> str:
        return "+".join(f"{g.total_gpus}x{g.gpu.name}" for g in self.groups)

    @property
    def group_names(self) -> tuple[str, ...]:
        return tuple(g.name for g in self.groups)

    def group_named(self, name: str) -> DeviceGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(
            f"unknown device group {name!r}; known: {list(self.group_names)}"
        )

    def group_for_stage(self, device_group: str) -> DeviceGroup:
        """Resolve a stage's group tag; '' is allowed only when unambiguous."""
        if not device_group:
            if self.is_homogeneous:
                return self.groups[0]
            raise KeyError(
                "stage has no device_group tag but the cluster has "
                f"{len(self.groups)} groups {list(self.group_names)}"
            )
        return self.group_named(device_group)

    # -- worst-case homogeneous view (baseline fallback) -----------------

    def worst_gpu(self) -> GPUSpec:
        """The most constrained device (min memory, then min FLOPs)."""
        return min((g.gpu for g in self.groups),
                   key=lambda gpu: (gpu.memory_bytes, gpu.peak_fp16_flops))

    def fallback_homogeneous(self) -> ClusterSpec:
        """Conservative homogeneous view for solvers without heterogeneity.

        Every GPU is treated as the worst one and every link as the
        slowest one, so a plan feasible here is feasible on the real
        fleet — at the cost of under-using the larger devices.
        """
        gpu = self.worst_gpu()
        per_node = min(g.gpus_per_node for g in self.groups)
        total = self.total_gpus
        if total % per_node != 0:
            per_node = 1
        return ClusterSpec(
            gpu=gpu,
            num_nodes=total // per_node,
            gpus_per_node=per_node,
            inter_node_bandwidth=min(
                min(g.cluster.inter_node_bandwidth for g in self.groups),
                self.inter_group_bandwidth,
            ),
            inter_node_latency=max(
                max(g.cluster.inter_node_latency for g in self.groups),
                self.inter_group_latency,
            ),
            intra_node_latency=max(
                g.cluster.intra_node_latency for g in self.groups
            ),
        )

    def describe(self) -> str:
        lines = [
            f"heterogeneous cluster: {self.total_gpus} GPUs in "
            f"{len(self.groups)} group(s)"
        ]
        for group in self.groups:
            lines.append(f"  {group.describe()}")
        if not self.is_homogeneous:
            lines.append(
                f"  inter-group link: "
                f"{self.inter_group_bandwidth * 8 / 1e9:.0f} Gbps, "
                f"{self.inter_group_latency * 1e6:.1f} us"
            )
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return cluster_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HeterogeneousCluster":
        cluster = cluster_from_dict(data)
        if isinstance(cluster, ClusterSpec):
            cluster = HeterogeneousCluster(
                groups=(DeviceGroup(name=cluster.gpu.name.lower(),
                                    cluster=cluster),)
            )
        return cluster

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


# -- cluster (de)serialization ---------------------------------------------

_GBPS = 1e9 / 8  # Gbit/s -> bytes/s


def _read_bandwidth(data: dict, key: str, default: float) -> float:
    """Accept ``<key>`` in bytes/s or ``<key>_gbps`` in Gbit/s."""
    if key in data and f"{key}_gbps" in data:
        raise ValueError(f"give either {key!r} or '{key}_gbps', not both")
    if f"{key}_gbps" in data:
        return float(data[f"{key}_gbps"]) * _GBPS
    return float(data.get(key, default))


def _read_latency(data: dict, key: str, default: float) -> float:
    """Accept ``<key>`` in seconds or ``<key>_us`` in microseconds."""
    if key in data and f"{key}_us" in data:
        raise ValueError(f"give either {key!r} or '{key}_us', not both")
    if f"{key}_us" in data:
        return float(data[f"{key}_us"]) * 1e-6
    return float(data.get(key, default))


def _homogeneous_from_dict(data: dict) -> ClusterSpec:
    gpu = get_gpu(data["gpu"])
    spec = ClusterSpec(
        gpu=gpu,
        num_nodes=int(data.get("num_nodes", 1)),
        gpus_per_node=int(data["gpus_per_node"]),
        inter_node_bandwidth=_read_bandwidth(
            data, "inter_node_bandwidth", _default_network_bandwidth(gpu)),
        inter_node_latency=_read_latency(
            data, "inter_node_latency", ClusterSpec.inter_node_latency),
        intra_node_latency=_read_latency(
            data, "intra_node_latency", ClusterSpec.intra_node_latency),
    )
    return spec


def cluster_from_dict(data: dict) -> "ClusterSpec | HeterogeneousCluster":
    """Parse the cluster schema (see ``docs/API.md``).

    A dict with a ``groups`` list parses to a
    :class:`HeterogeneousCluster`; a flat
    ``{"gpu", "num_nodes", "gpus_per_node"}`` dict parses to a plain
    :class:`ClusterSpec`. GPUs are referenced by registry name
    (:data:`repro.hardware.gpu.GPU_REGISTRY`); bandwidths accept either
    bytes/s or human-friendly ``*_gbps`` keys.
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"cluster description must be a JSON object, got "
            f"{type(data).__name__}"
        )
    if "groups" not in data:
        return _homogeneous_from_dict(data)
    if not isinstance(data["groups"], list):
        raise ValueError("'groups' must be a list of group objects")
    groups = []
    for entry in data["groups"]:
        if not isinstance(entry, dict):
            raise ValueError(
                f"each cluster group must be a JSON object, got "
                f"{type(entry).__name__}"
            )
        name = entry.get("name") or entry["gpu"].lower()
        groups.append(DeviceGroup(
            name=str(name), cluster=_homogeneous_from_dict(entry)))
    hetero = HeterogeneousCluster(
        groups=tuple(groups),
        inter_group_bandwidth=_read_bandwidth(
            data, "inter_group_bandwidth",
            HeterogeneousCluster.inter_group_bandwidth),
        inter_group_latency=_read_latency(
            data, "inter_group_latency",
            HeterogeneousCluster.inter_group_latency),
    )
    if hetero.is_homogeneous:
        return hetero.groups[0].cluster
    return hetero


def _homogeneous_to_dict(spec: ClusterSpec) -> dict:
    return {
        "gpu": spec.gpu.name,
        "num_nodes": spec.num_nodes,
        "gpus_per_node": spec.gpus_per_node,
        "inter_node_bandwidth": spec.inter_node_bandwidth,
        "inter_node_latency": spec.inter_node_latency,
        "intra_node_latency": spec.intra_node_latency,
    }


def cluster_to_dict(cluster: "ClusterSpec | HeterogeneousCluster") -> dict:
    """Inverse of :func:`cluster_from_dict` (GPU referenced by name)."""
    if isinstance(cluster, ClusterSpec):
        return _homogeneous_to_dict(cluster)
    return {
        "groups": [
            dict(_homogeneous_to_dict(g.cluster), name=g.name)
            for g in cluster.groups
        ],
        "inter_group_bandwidth": cluster.inter_group_bandwidth,
        "inter_group_latency": cluster.inter_group_latency,
    }


def load_cluster(path) -> "ClusterSpec | HeterogeneousCluster":
    """Read a cluster description from a JSON file."""
    with open(path) as fh:
        return cluster_from_dict(json.load(fh))
