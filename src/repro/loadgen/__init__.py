"""Trace-driven load generation against a live tuning daemon.

The service's contract under concurrency (admission control, queue
latency, coalescing across worker processes) is only as good as the
harness that measures it. ``repro load`` replays a *synthetic
campaign-cell trace* — a reproducible stream of tuning jobs drawn from
a seeded spec — against any ``repro serve`` URL, in either loop shape:

* **closed loop** — ``concurrency`` virtual clients, each submitting
  its next request the moment the previous one resolves (throughput
  measurement);
* **open loop** — requests fire at seeded Poisson arrival offsets
  regardless of completions (latency-under-offered-load measurement;
  open loops expose queueing collapse that closed loops hide).

One run emits a ``repro-load/1`` JSON document that rides the same
validate / baseline-gate machinery as ``repro bench``: zero transport
or server errors, plan-hash consistency across every repeat of a cell,
and a p99-latency regression gate against a committed baseline
(``benchmarks/baselines/LOAD_smoke.json`` in CI).
"""

from .report import (
    LOAD_SCHEMA,
    check_against_baseline,
    format_load,
    main_check,
    validate_load,
)
from .runner import run_load
from .trace import TRACE_SCALES, TraceRequest, TraceSpec, synthesize_trace

__all__ = [
    "LOAD_SCHEMA",
    "TRACE_SCALES",
    "TraceRequest",
    "TraceSpec",
    "check_against_baseline",
    "format_load",
    "main_check",
    "run_load",
    "synthesize_trace",
    "validate_load",
]
