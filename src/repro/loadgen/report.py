"""``repro-load/1`` gates: internal validation + baseline regression.

Mirrors ``repro.benchmarking.bench``'s machinery so the CI load-smoke
job reads exactly like the perf job:

* :func:`validate_load` — one run's internal consistency: zero 5xx /
  transport errors, zero solver failures or timeouts, at least one
  completed request, and no plan-hash divergence across repeats of a
  cell (a cache or routing bug would show up as exactly that);
* :func:`check_against_baseline` — p99 end-to-end latency against the
  committed baseline. A regression must exceed *both* the relative
  threshold and ``min_abs_seconds`` — sub-second smoke latencies are
  scheduler-noise-dominated and would otherwise flake the gate.
"""

from __future__ import annotations

import sys

__all__ = ["LOAD_SCHEMA", "check_against_baseline", "format_load",
           "main_check", "validate_load"]

LOAD_SCHEMA = "repro-load/1"


def validate_load(result: dict) -> list:
    """Internal-consistency failures of one load run (empty = OK)."""
    problems = []
    if result.get("schema") != LOAD_SCHEMA:
        return [f"unexpected schema {result.get('schema')!r} "
                f"(expected {LOAD_SCHEMA!r})"]
    requests = result.get("requests", {})
    if requests.get("ok", 0) <= 0:
        problems.append("no request completed successfully")
    for counter, label in (("server_errors", "5xx response(s)"),
                           ("transport_errors", "transport error(s)"),
                           ("failed", "solver failure(s)"),
                           ("timeout", "request timeout(s)")):
        count = requests.get(counter, 0)
        if count > 0:
            problems.append(f"{count} {label} during the run")
    conflicts = result.get("plan_hash_conflicts", [])
    if conflicts:
        cells = sorted({c["cell"] for c in conflicts})
        problems.append(
            "plan hashes diverged across repeats of cell(s) "
            + ", ".join(str(c) for c in cells))
    return problems


def check_against_baseline(current: dict, baseline: dict, *,
                           max_regression: float = 0.5,
                           min_abs_seconds: float = 0.25) -> list:
    """p99-latency regression vs the committed baseline (empty = OK)."""
    problems = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"baseline schema {baseline.get('schema')!r} does not match "
            f"current {current.get('schema')!r} — regenerate the baseline")
        return problems
    for key in ("scale", "mode"):
        if baseline.get(key) != current.get(key):
            problems.append(
                f"baseline was recorded with {key}="
                f"{baseline.get(key)!r}, this run is "
                f"{current.get(key)!r}")
    if problems:
        return problems
    base_p99 = baseline.get("latency_seconds", {}).get("p99")
    cur_p99 = current.get("latency_seconds", {}).get("p99")
    if base_p99 and cur_p99 and \
            cur_p99 > base_p99 * (1.0 + max_regression) and \
            cur_p99 - base_p99 > min_abs_seconds:
        problems.append(
            f"p99 latency regressed {cur_p99 / base_p99 - 1.0:+.0%} over "
            f"the baseline ({cur_p99:.3f}s vs {base_p99:.3f}s, "
            f"threshold +{max_regression:.0%})")
    return problems


def format_load(result: dict) -> str:
    """Human-readable summary of one load run."""
    requests = result["requests"]
    latency = result["latency_seconds"]
    lines = [
        f"repro load — scale {result['scale']} ({result['mode']} loop, "
        f"schema {result['schema']})",
        f"  requests: {requests['ok']}/{requests['total']} ok, "
        f"{requests['rejected']} rejected (429), "
        f"{requests['failed']} failed, "
        f"{requests['server_errors']} 5xx, "
        f"{requests['transport_errors']} transport",
        f"  reuse: {requests['from_cache']} from cache, "
        f"{requests['coalesced']} coalesced",
        f"  latency: p50 {latency['p50']:.3f}s  p95 {latency['p95']:.3f}s  "
        f"p99 {latency['p99']:.3f}s  max {latency['max']:.3f}s",
        f"  throughput: {result['throughput_rps']:.2f} req/s over "
        f"{result['wall_seconds']:.2f}s",
    ]
    metrics = result.get("server", {}).get("metrics")
    if metrics:
        tier = metrics.get("worker_tier", {})
        admission = metrics.get("admission", {})
        lines.append(
            f"  server: {tier.get('mode', '?')} x "
            f"{tier.get('workers', '?')} workers "
            f"({tier.get('restarts', 0)} restart(s)), "
            f"{admission.get('rejected_queue', 0)} queue-rejected, "
            f"{admission.get('rejected_quota', 0)} quota-rejected")
    return "\n".join(lines)


def main_check(current: dict, baseline: "dict | None", *,
               max_regression: float = 0.5, out=None) -> int:
    """Apply all gates; print verdicts; return a process exit code."""
    out = out if out is not None else sys.stdout
    problems = validate_load(current)
    if baseline is not None:
        problems += check_against_baseline(
            current, baseline, max_regression=max_regression)
    for problem in problems:
        print(f"FAIL: {problem}", file=out)
    if not problems:
        print("load gates: OK", file=out)
    return 1 if problems else 0
