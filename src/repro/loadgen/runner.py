"""Replay a synthesized trace against a live daemon; build the report.

Each request is one client-side exchange: submit, then poll to a
terminal state. The outcome taxonomy mirrors what the gates care
about:

* ``ok``        — job done (from cache, coalesced, or fresh search);
* ``rejected``  — admission control said 429 (expected under load,
  never an error);
* ``failed``    — the daemon accepted but the solver failed;
* ``server_error`` / ``transport`` — 5xx or connection trouble (the
  zero-tolerance gates);
* ``timeout``   — the job outlived the per-request timeout.

Plan hashes are recomputed client-side from each returned report
(:func:`repro.benchmarking.plan_hash` over the reconstructed
:class:`~repro.core.plan.TrainingPlan`), so a run proves bit-identical
plans across cache hits, coalesced joins, and worker processes — and
is directly comparable to inline :func:`repro.api.solve` hashes.
"""

from __future__ import annotations

import platform
import threading
import time

from repro import __version__
from repro.benchmarking import plan_hash
from repro.core.plan import TrainingPlan
from repro.service.client import Client, ServiceError
from repro.service.state import percentiles

from .trace import TraceSpec

__all__ = ["run_load"]

_TERMINAL = ("done", "failed", "cancelled")


def _plan_hash_of(report_dict: "dict | None") -> "str | None":
    if not report_dict:
        return None
    plan = report_dict.get("plan")
    if plan is None:
        return None
    return plan_hash(TrainingPlan.from_dict(plan))


def _issue(client: Client, request, timeout: float,
           poll_interval: float) -> dict:
    """One trace request -> one outcome dict (never raises)."""
    outcome = {
        "index": request.index, "cell": request.cell,
        "solver": request.solver, "status": "ok", "http_status": 202,
        "latency_seconds": 0.0, "from_cache": False, "coalesced": False,
        "plan_hash": None, "error": None,
    }
    start = time.perf_counter()
    try:
        record = client.submit(request.job, request.solver)
        if record["status"] not in _TERMINAL:
            record = client.wait(record["id"], timeout=timeout,
                                 poll_interval=poll_interval)
        outcome["latency_seconds"] = time.perf_counter() - start
        outcome["from_cache"] = bool(record.get("from_cache"))
        outcome["coalesced"] = bool(record.get("coalesced"))
        if record["status"] == "done":
            outcome["plan_hash"] = _plan_hash_of(record.get("report"))
        else:
            outcome["status"] = "failed"
            outcome["error"] = record.get("error") or record["status"]
    except ServiceError as exc:
        outcome["latency_seconds"] = time.perf_counter() - start
        outcome["error"] = str(exc)
        if exc.status == 429:
            outcome["status"] = "rejected"
            outcome["http_status"] = 429
            outcome["retry_after"] = exc.retry_after
        elif exc.status is not None and exc.status >= 500:
            outcome["status"] = "server_error"
            outcome["http_status"] = exc.status
        elif exc.status is not None:
            outcome["status"] = "client_error"
            outcome["http_status"] = exc.status
        else:
            outcome["status"] = "transport"
            outcome["http_status"] = None
    except TimeoutError as exc:
        outcome["latency_seconds"] = time.perf_counter() - start
        outcome["status"] = "timeout"
        outcome["error"] = str(exc)
    return outcome


def run_load(url: str, spec: TraceSpec, trace: list, *,
             mode: str = "closed", concurrency: int = 4,
             timeout: float = 120.0, poll_interval: float = 0.02,
             client_id: str = "repro-load") -> dict:
    """Replay ``trace`` against the daemon at ``url``; return the report.

    ``mode="closed"``: ``concurrency`` workers pull the next request as
    soon as their current one resolves. ``mode="open"``: one thread per
    request, fired at the trace's seeded arrival offsets.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"unknown load mode {mode!r}")
    client = Client(url, timeout=max(timeout, 30.0), client_id=client_id)
    outcomes: list = [None] * len(trace)
    start = time.perf_counter()
    if mode == "closed":
        pending = iter(list(enumerate(trace)))
        guard = threading.Lock()

        def loop() -> None:
            while True:
                with guard:
                    item = next(pending, None)
                if item is None:
                    return
                index, request = item
                outcomes[index] = _issue(client, request, timeout,
                                         poll_interval)

        threads = [threading.Thread(target=loop, daemon=True)
                   for _ in range(max(1, min(concurrency, len(trace))))]
    else:
        def fire(index: int, request) -> None:
            outcomes[index] = _issue(client, request, timeout,
                                     poll_interval)

        def loop() -> None:
            for index, request in enumerate(trace):
                delay = start + request.offset - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                shots.append(threading.Thread(target=fire, daemon=True,
                                              args=(index, request)))
                shots[-1].start()

        shots: list = []
        threads = [threading.Thread(target=loop, daemon=True)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if mode == "open":
        for shot in shots:
            shot.join()
    wall = time.perf_counter() - start
    return _build_report(url, spec, mode, concurrency, outcomes, wall,
                         client)


def _build_report(url: str, spec: TraceSpec, mode: str, concurrency: int,
                  outcomes: list, wall: float, client: Client) -> dict:
    done = [o for o in outcomes if o is not None]
    by_status: dict = {}
    for outcome in done:
        by_status[outcome["status"]] = by_status.get(outcome["status"], 0) + 1
    ok = [o for o in done if o["status"] == "ok"]
    latencies = [o["latency_seconds"] for o in ok]
    spread = percentiles(latencies)
    # one canonical hash per cell + every conflicting repeat observed
    hashes: dict = {}
    conflicts = []
    for outcome in ok:
        cell = str(outcome["cell"])
        seen = hashes.setdefault(cell, outcome["plan_hash"])
        if seen != outcome["plan_hash"]:
            conflicts.append({"cell": outcome["cell"], "expected": seen,
                              "got": outcome["plan_hash"]})
    try:
        server = {"metrics": client.metrics(), "health": client.health()}
    except ServiceError as exc:
        server = {"error": str(exc)}
    return {
        "schema": "repro-load/1",
        "scale": spec.name,
        "mode": mode,
        "config": {
            "url": url,
            "concurrency": concurrency,
            "spec": spec.to_dict(),
        },
        "requests": {
            "total": len(outcomes),
            "ok": len(ok),
            "rejected": by_status.get("rejected", 0),
            "failed": by_status.get("failed", 0),
            "timeout": by_status.get("timeout", 0),
            "client_errors": by_status.get("client_error", 0),
            "server_errors": by_status.get("server_error", 0),
            "transport_errors": by_status.get("transport", 0),
            "from_cache": sum(1 for o in ok if o["from_cache"]),
            "coalesced": sum(1 for o in ok if o["coalesced"]),
        },
        "latency_seconds": {
            "p50": spread["p50"],
            "p95": spread["p95"],
            "p99": spread["p99"],
            "max": max(latencies) if latencies else 0.0,
            "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
        },
        "throughput_rps": (len(ok) / wall) if wall > 0 else 0.0,
        "wall_seconds": wall,
        "plan_hashes": hashes,
        "plan_hash_conflicts": conflicts,
        "outcomes": done,
        "server": server,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "version": __version__,
        },
    }
