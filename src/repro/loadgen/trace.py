"""Synthetic campaign-cell traces: seeded, declarative, replayable.

A :class:`TraceSpec` names a workload family and how to stream it: how
many requests, over how many *unique* jobs (cells), at what Poisson
arrival rate. :func:`synthesize_trace` expands it deterministically —
same spec, same seed, same trace — so a load run is reproducible and a
committed baseline stays comparable.

Cells are distinguished through ``TuningJob.options["trace_cell"]``,
which feeds the job fingerprint: distinct cells are distinct plan-cache
keys, while repeats of a cell are bit-identical jobs that exercise the
daemon's coalescing and cache paths exactly like a real re-submitted
campaign cell.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.api import TuningJob

__all__ = ["TRACE_SCALES", "TraceRequest", "TraceSpec", "synthesize_trace"]


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one load trace."""

    name: str
    #: total requests in the trace
    requests: int
    #: distinct jobs (cells) the requests are drawn from
    unique_jobs: int
    solver: str = "mist"
    model: str = "gpt3-1.3b"
    gpu: str = "L4"
    num_gpus: int = 2
    global_batch: int = 16
    seq_len: int = 2048
    scale: str = "smoke"
    #: mean open-loop arrival rate (requests/second, Poisson process)
    arrival_rate: float = 8.0
    seed: int = 1337
    #: when set, cells use the ``synthetic`` solver's busy-spin of this
    #: many seconds (CPU-bound: contrasts thread vs process tiers)
    synthetic_seconds: "float | None" = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 1 <= self.unique_jobs <= self.requests:
            raise ValueError("need 1 <= unique_jobs <= requests")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0")

    def job_for_cell(self, cell: int) -> TuningJob:
        """The (deterministic) job behind trace cell ``cell``."""
        options: dict = {"trace_cell": int(cell)}
        if self.synthetic_seconds is not None:
            options["synthetic"] = {"seconds": float(self.synthetic_seconds)}
        return TuningJob(
            model=self.model, gpu=self.gpu, num_gpus=self.num_gpus,
            global_batch=self.global_batch, seq_len=self.seq_len,
            scale=self.scale, interference="none", options=options,
        )

    def to_dict(self) -> dict:  # repro: allow[serialization] config snapshot for the report; never parsed back
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class TraceRequest:
    """One scheduled request of a synthesized trace."""

    index: int
    cell: int
    #: open-loop arrival offset from trace start, in seconds
    offset: float
    solver: str
    job: TuningJob = field(compare=False)


#: named presets for ``repro load --scale <name>``
TRACE_SCALES: dict = {
    # mist smoke cells: real searches, cheap enough for CI; repeats
    # exercise the coalescing + plan-cache fast paths
    "smoke": TraceSpec(name="smoke", requests=24, unique_jobs=8),
    "quick": TraceSpec(name="quick", requests=96, unique_jobs=24,
                       model="gpt3-2.7b", num_gpus=4, global_batch=32,
                       arrival_rate=12.0),
    # every request a distinct CPU-bound busy-spin: isolates worker-tier
    # scaling from search/cache effects (the ≥2x process-vs-thread
    # throughput demonstration runs on this trace)
    "synthetic": TraceSpec(name="synthetic", requests=24, unique_jobs=24,
                           solver="synthetic", synthetic_seconds=0.25,
                           arrival_rate=16.0),
    "soak": TraceSpec(name="soak", requests=400, unique_jobs=40,
                      arrival_rate=40.0),
}


def synthesize_trace(spec: TraceSpec) -> list:
    """Expand a spec into its deterministic request stream.

    The first ``unique_jobs`` requests visit every cell once in order
    (the cold sweep); the remainder revisit cells uniformly at random.
    Arrival offsets are exponential interarrivals at ``arrival_rate``
    — both draws come from one ``random.Random(spec.seed)``, so the
    trace is a pure function of the spec.
    """
    rng = random.Random(spec.seed)
    cells = list(range(spec.unique_jobs))
    cells += [rng.randrange(spec.unique_jobs)
              for _ in range(spec.requests - spec.unique_jobs)]
    offsets = []
    now = 0.0
    for _ in cells:
        now += rng.expovariate(spec.arrival_rate)
        offsets.append(now)
    return [
        TraceRequest(index=index, cell=cell, offset=offsets[index],
                     solver=spec.solver, job=spec.job_for_cell(cell))
        for index, cell in enumerate(cells)
    ]
