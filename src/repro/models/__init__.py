"""Model zoo: configurations, symbolic layer graphs, and tracing."""

from .config import ModelConfig
from .graph import ModelGraph, trace_model
from .layers import (
    build_post_layer,
    build_pre_layer,
    build_transformer_layer,
    embedding_param_count,
    head_param_count,
    layer_param_count,
)
from .ops import B, S, TP, LayerGraph, Op, OpKind
from .registry import MODEL_SIZES, get_model, list_models

__all__ = [
    "B",
    "S",
    "TP",
    "LayerGraph",
    "MODEL_SIZES",
    "ModelConfig",
    "ModelGraph",
    "Op",
    "OpKind",
    "build_post_layer",
    "build_pre_layer",
    "build_transformer_layer",
    "embedding_param_count",
    "get_model",
    "head_param_count",
    "layer_param_count",
    "list_models",
    "trace_model",
]
