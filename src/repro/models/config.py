"""Model architecture configurations.

The paper evaluates three transformer families (Table 4): GPT-3
(standard decoder blocks), Llama-2 style (RMSNorm, SwiGLU gated MLP,
rotary embeddings) and Falcon style (parallel attention + MLP, a single
all-reduce per layer under tensor parallelism).

Following the paper's methodology, dropout is zero and linear layers
have no biases, so parameter/activation formulas omit both.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Static description of a decoder-only transformer."""

    name: str
    family: str  # "gpt3" | "llama" | "falcon"
    hidden_size: int
    num_layers: int
    num_heads: int
    vocab_size: int
    ffn_hidden_size: int
    #: SwiGLU-style gated MLP (three projection matrices)
    gated_mlp: bool = False
    #: Falcon-style parallel attention+MLP sharing one input norm
    parallel_attn: bool = False
    #: RMSNorm instead of LayerNorm
    rmsnorm: bool = False
    #: rotary position embeddings (otherwise learned absolute)
    rotary: bool = False
    #: LM head shares the embedding matrix
    tied_embeddings: bool = True
    #: learned absolute position table size (ignored with rotary)
    max_position_embeddings: int = 4096

    def __post_init__(self):
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.family not in ("gpt3", "llama", "falcon"):
            raise ValueError(f"unknown family {self.family!r}")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    # -- parameter counts ---------------------------------------------------

    @property
    def attn_params_per_layer(self) -> int:
        h = self.hidden_size
        return 3 * h * h + h * h  # QKV + output projection

    @property
    def mlp_params_per_layer(self) -> int:
        h, e = self.hidden_size, self.ffn_hidden_size
        if self.gated_mlp:
            return 3 * h * e  # gate, up, down
        return 2 * h * e

    @property
    def norm_params_per_layer(self) -> int:
        n_norms = 1 if self.parallel_attn else 2
        return n_norms * self.hidden_size

    @property
    def params_per_layer(self) -> int:
        return (
            self.attn_params_per_layer
            + self.mlp_params_per_layer
            + self.norm_params_per_layer
        )

    @property
    def embedding_params(self) -> int:
        params = self.vocab_size * self.hidden_size
        if not self.rotary:
            params += self.max_position_embeddings * self.hidden_size
        return params

    @property
    def head_params(self) -> int:
        params = self.hidden_size  # final norm
        if not self.tied_embeddings:
            params += self.vocab_size * self.hidden_size
        return params

    @property
    def total_params(self) -> int:
        return (
            self.num_layers * self.params_per_layer
            + self.embedding_params
            + self.head_params
        )

    #: TP all-reduces per transformer layer in the forward pass. Falcon's
    #: parallel attention+MLP needs only one (Section 6.1).
    @property
    def tp_allreduces_per_layer(self) -> int:
        return 1 if self.parallel_attn else 2

    def with_layers(self, num_layers: int) -> "ModelConfig":
        """Clone with a different depth (used by the Fig. 14 layer sweep)."""
        from dataclasses import replace

        return replace(self, num_layers=num_layers,
                       name=f"{self.name}-L{num_layers}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.total_params / 1e9:.1f}B params)"
