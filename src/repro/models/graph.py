"""Whole-model symbolic graph: pre-layer + repeated blocks + post-layer.

The paper's tuning algorithm exploits that all transformer blocks are
identical within a stage (Section 5.1), so the model graph keeps one
representative block plus the distinct pre/post layers, with the block
multiplied symbolically by the per-stage layer count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.symbolic import Expr

from .config import ModelConfig
from .layers import build_post_layer, build_pre_layer, build_transformer_layer
from .ops import B, S, LayerGraph

__all__ = ["ModelGraph", "trace_model"]


@dataclass
class ModelGraph:
    """Symbolic computation graph of a full model."""

    config: ModelConfig
    flash: bool
    pre: LayerGraph
    block: LayerGraph
    post: LayerGraph

    @property
    def boundary_activation_bytes(self) -> Expr:
        """Bytes sent between adjacent pipeline stages per microbatch."""
        return 2 * B * S * self.config.hidden_size

    def stage_layers(self, stage_idx: int, num_stages: int,
                     layers_in_stage: int) -> tuple[bool, bool, int]:
        """(has_pre, has_post, num_blocks) composition of one stage."""
        has_pre = stage_idx == 0
        has_post = stage_idx == num_stages - 1
        return has_pre, has_post, layers_in_stage


def trace_model(config: ModelConfig, *, flash: bool = True) -> ModelGraph:
    """Build the symbolic graph for ``config``.

    This is the reproduction's equivalent of the paper's symbolic
    tracing pass (Figure 9): instead of running a PyTorch model on fake
    tensors, the op-level graphs are constructed directly with symbolic
    shapes over ``(b, s, tp)``.
    """
    return ModelGraph(
        config=config,
        flash=flash,
        pre=build_pre_layer(config),
        block=build_transformer_layer(config, flash=flash),
        post=build_post_layer(config),
    )
