"""Symbolic layer-graph builders for the supported model families.

Produces :class:`~repro.models.ops.LayerGraph` objects for:

* the repeated transformer block of each family (GPT-3 standard block,
  Llama gated-MLP block, Falcon parallel attention+MLP block),
* the pre-layer (token/position embedding) and
* the post-layer (final norm, LM head, cross-entropy loss),

with or without FlashAttention. The saved-activation accounting matches
the published formulas (Korthikanti et al.): a non-checkpointed GPT
block saves ``bsh(10 + 24/tp) + 2·b·a·s²/tp`` bytes without flash, and
drops the quadratic term with flash.
"""

from __future__ import annotations

import dataclasses

from repro.symbolic import Const, Expr

from .config import ModelConfig
from .ops import B, S, TP, LayerGraph, Op, OpKind

__all__ = [
    "build_transformer_layer",
    "build_pre_layer",
    "build_post_layer",
    "layer_param_count",
    "embedding_param_count",
    "head_param_count",
]

FP16 = 2  # bytes per activation element
FP32 = 4


def layer_param_count(config: ModelConfig) -> Expr:
    """Per-TP-rank parameter elements of one transformer layer."""
    sharded = config.attn_params_per_layer + config.mlp_params_per_layer
    replicated = config.norm_params_per_layer
    return Const(sharded) / TP + replicated


def embedding_param_count(config: ModelConfig) -> Expr:
    """Per-TP-rank parameter elements of the embedding (vocab-parallel)."""
    h, v = config.hidden_size, config.vocab_size
    params: Expr = Const(v * h) / TP
    if not config.rotary:
        params = params + config.max_position_embeddings * h  # replicated
    return params


def head_param_count(config: ModelConfig) -> Expr:
    """Per-TP-rank parameter elements of the output head.

    With tied embeddings the weight is still materialized on the last
    pipeline stage (as in Megatron-LM), so it costs memory there.
    """
    h, v = config.hidden_size, config.vocab_size
    return Const(v * h) / TP + h  # head matrix + final norm


def _gemm(name: str, inputs: tuple[str, ...], output: str, *, m: Expr, n: Expr,
          k: Expr, saved: Expr, allreduce_fwd: Expr = Const(0),
          allreduce_bwd: Expr = Const(0)) -> Op:
    """A GEMM computing ``[m, k] x [k, n]`` with weight resident on-rank."""
    out_bytes = FP16 * m * n
    flops = 2 * m * n * k
    io = FP16 * (m * k + k * n + m * n)
    return Op(
        name=name, kind=OpKind.GEMM, inputs=inputs, output=output,
        output_bytes=out_bytes, flops=flops, io_bytes=io, saved_bytes=saved,
        bwd_flops_factor=2.0, tp_allreduce_fwd=allreduce_fwd,
        tp_allreduce_bwd=allreduce_bwd,
    )


def _norm(name: str, inp: str, output: str, width: int) -> Op:
    bytes_ = FP16 * B * S * width
    return Op(
        name=name, kind=OpKind.NORM, inputs=(inp,), output=output,
        output_bytes=bytes_, flops=5 * B * S * width, io_bytes=2 * bytes_,
        saved_bytes=bytes_,  # input stashed for backward
        bwd_flops_factor=2.0,
    )


def _attention_ops(config: ModelConfig, flash: bool, input_name: str,
                   allreduce_output: bool) -> list[Op]:
    """QKV projection -> attention -> output projection."""
    h = config.hidden_size
    a = config.num_heads
    bsh = B * S * h
    ops: list[Op] = []

    ops.append(_gemm(
        "qkv_proj", (input_name,), "qkv",
        m=B * S, n=3 * h / TP, k=h,
        saved=FP16 * bsh,  # normed input needed for weight grad
    ))
    if config.rotary:
        q_k_bytes = FP16 * 2 * bsh / TP
        ops.append(Op(
            name="rotary", kind=OpKind.ELEMENTWISE, inputs=("qkv",),
            output="qkv_rot", output_bytes=FP16 * 3 * bsh / TP,
            flops=6 * B * S * h / TP, io_bytes=2 * q_k_bytes,
            saved_bytes=Const(0), bwd_flops_factor=1.0,
        ))
        attn_input = "qkv_rot"
    else:
        attn_input = "qkv"

    if flash:
        # Fused kernel: saves q,k,v (counted at qkv_proj output? no — the
        # fused op re-reads qkv which is stashed) plus per-row softmax
        # statistics; recomputes the s^2 intermediates in backward.
        ops.append(Op(
            name="flash_attention", kind=OpKind.FLASH_ATTN,
            inputs=(attn_input,), output="attn_ctx",
            output_bytes=FP16 * bsh / TP,
            flops=4 * B * S * S * h / TP,
            io_bytes=FP16 * 4 * bsh / TP,
            saved_bytes=FP16 * 3 * bsh / TP + FP32 * B * a * S / TP,
            bwd_flops_factor=2.5,  # dgrads + forward recompute inside bwd
        ))
    else:
        scores_bytes = FP16 * B * a * S * S / TP
        ops.append(Op(
            name="attn_scores", kind=OpKind.BMM, inputs=(attn_input,),
            output="scores", output_bytes=scores_bytes,
            flops=2 * B * S * S * h / TP,
            io_bytes=FP16 * 2 * bsh / TP + scores_bytes,
            saved_bytes=FP16 * 2 * bsh / TP,  # q, k
        ))
        ops.append(Op(
            name="softmax", kind=OpKind.SOFTMAX, inputs=("scores",),
            output="probs", output_bytes=scores_bytes,
            flops=5 * B * a * S * S / TP, io_bytes=2 * scores_bytes,
            saved_bytes=scores_bytes,  # probs needed for backward
            bwd_flops_factor=1.0,
        ))
        ops.append(Op(
            name="attn_context", kind=OpKind.BMM,
            inputs=("probs", attn_input), output="attn_ctx",
            output_bytes=FP16 * bsh / TP,
            flops=2 * B * S * S * h / TP,
            io_bytes=scores_bytes + FP16 * 2 * bsh / TP,
            saved_bytes=FP16 * bsh / TP,  # v
        ))

    ops.append(_gemm(
        "attn_out_proj", ("attn_ctx",), "attn_out",
        m=B * S, n=h, k=h / TP,
        saved=FP16 * bsh / TP,  # context
        allreduce_fwd=(FP16 * bsh) if allreduce_output else Const(0),
        allreduce_bwd=(FP16 * bsh) if allreduce_output else Const(0),
    ))
    return ops


def _mlp_ops(config: ModelConfig, input_name: str, *, saved_input: bool,
             allreduce_output: bool) -> list[Op]:
    h, e = config.hidden_size, config.ffn_hidden_size
    bsh = B * S * h
    bse = B * S * e
    input_saved = (FP16 * bsh) if saved_input else Const(0)
    ar_fwd = (FP16 * bsh) if allreduce_output else Const(0)
    ar_bwd = (FP16 * bsh) if allreduce_output else Const(0)
    ops: list[Op] = []
    if config.gated_mlp:
        ops.append(_gemm("mlp_gate", (input_name,), "mlp_g",
                         m=B * S, n=e / TP, k=h, saved=input_saved))
        ops.append(_gemm("mlp_up", (input_name,), "mlp_u",
                         m=B * S, n=e / TP, k=h, saved=Const(0)))
        ops.append(Op(
            name="silu_mul", kind=OpKind.ELEMENTWISE,
            inputs=("mlp_g", "mlp_u"), output="mlp_p",
            output_bytes=FP16 * bse / TP, flops=4 * bse / TP,
            io_bytes=FP16 * 3 * bse / TP,
            saved_bytes=FP16 * 2 * bse / TP,  # gate and up outputs
            bwd_flops_factor=1.5,
        ))
        ops.append(_gemm("mlp_down", ("mlp_p",), "mlp_out",
                         m=B * S, n=h, k=e / TP,
                         saved=FP16 * bse / TP,
                         allreduce_fwd=ar_fwd, allreduce_bwd=ar_bwd))
    else:
        ops.append(_gemm("mlp_up", (input_name,), "mlp_h",
                         m=B * S, n=e / TP, k=h, saved=input_saved))
        ops.append(Op(
            name="gelu", kind=OpKind.ELEMENTWISE, inputs=("mlp_h",),
            output="mlp_act", output_bytes=FP16 * bse / TP,
            flops=8 * bse / TP, io_bytes=FP16 * 2 * bse / TP,
            saved_bytes=FP16 * bse / TP, bwd_flops_factor=1.5,
        ))
        ops.append(_gemm("mlp_down", ("mlp_act",), "mlp_out",
                         m=B * S, n=h, k=e / TP,
                         saved=FP16 * bse / TP,
                         allreduce_fwd=ar_fwd, allreduce_bwd=ar_bwd))
    return ops


def _residual(name: str, inputs: tuple[str, ...], output: str, h: int) -> Op:
    bytes_ = FP16 * B * S * h
    n_in = len(inputs)
    return Op(
        name=name, kind=OpKind.ELEMENTWISE, inputs=inputs, output=output,
        output_bytes=bytes_, flops=n_in * B * S * h,
        io_bytes=(n_in + 1) * bytes_, saved_bytes=Const(0),
        bwd_flops_factor=0.0, bwd_io_factor=1.0,
    )


def build_transformer_layer(config: ModelConfig, *, flash: bool) -> LayerGraph:
    """The repeated decoder block of ``config``'s family."""
    h = config.hidden_size
    input_bytes = FP16 * B * S * h
    ops: list[Op] = []

    if config.parallel_attn:
        # Falcon: one shared input norm; attention and MLP run on the same
        # normed activations; their outputs fold into a single residual add
        # and a single TP all-reduce (tp_allreduces_per_layer == 1).
        ops.append(_norm("input_norm", "x", "x_norm", h))
        ops.extend(_attention_ops(config, flash, "x_norm",
                                  allreduce_output=False))
        ops.extend(_mlp_ops(config, "x_norm", saved_input=False,
                            allreduce_output=False))
        combine = _residual("parallel_add", ("attn_out", "mlp_out", "x"),
                            "y", h)
        combine = dataclasses.replace(
            combine,
            tp_allreduce_fwd=Const(FP16) * B * S * h,
            tp_allreduce_bwd=Const(FP16) * B * S * h,
        )
        ops.append(combine)
    else:
        ops.append(_norm("input_norm", "x", "x_norm", h))
        ops.extend(_attention_ops(config, flash, "x_norm",
                                  allreduce_output=True))
        ops.append(_residual("residual_attn", ("attn_out", "x"), "x_mid", h))
        ops.append(_norm("post_attn_norm", "x_mid", "x_mid_norm", h))
        ops.extend(_mlp_ops(config, "x_mid_norm", saved_input=True,
                            allreduce_output=True))
        ops.append(_residual("residual_mlp", ("mlp_out", "x_mid"), "y", h))

    params = layer_param_count(config)
    return LayerGraph(
        name=f"{config.family}_layer",
        ops=ops,
        input_tensor="x",
        input_bytes=input_bytes,
        param_bytes=FP16 * params,
        param_count=params,
    )


def build_pre_layer(config: ModelConfig) -> LayerGraph:
    """Token (+ position) embedding; vocab-parallel under TP."""
    h = config.hidden_size
    bsh_bytes = FP16 * B * S * h
    token_bytes = 8 * B * S  # int64 ids
    ops = [Op(
        name="embedding", kind=OpKind.EMBEDDING, inputs=("tokens",),
        output="x0", output_bytes=bsh_bytes,
        flops=B * S * h,
        io_bytes=bsh_bytes + token_bytes,
        saved_bytes=token_bytes,
        bwd_flops_factor=1.0,
        # vocab-parallel embedding all-reduces its output across TP
        tp_allreduce_fwd=bsh_bytes, tp_allreduce_bwd=Const(0),
    )]
    params = embedding_param_count(config)
    return LayerGraph(
        name="pre_layer", ops=ops, input_tensor="tokens",
        input_bytes=token_bytes,
        param_bytes=FP16 * params, param_count=params,
    )


def build_post_layer(config: ModelConfig) -> LayerGraph:
    """Final norm, LM head GEMM, and vocab-parallel cross-entropy."""
    h, v = config.hidden_size, config.vocab_size
    bsh_bytes = FP16 * B * S * h
    logits_bytes = FP16 * B * S * v / TP
    ops = [
        _norm("final_norm", "y", "y_norm", h),
        _gemm("lm_head", ("y_norm",), "logits",
              m=B * S, n=v / TP, k=h, saved=FP16 * B * S * h),
        Op(
            name="cross_entropy", kind=OpKind.CROSS_ENTROPY,
            inputs=("logits",), output="loss",
            output_bytes=FP32 * B * S,
            flops=6 * B * S * v / TP,
            io_bytes=2 * logits_bytes,
            saved_bytes=logits_bytes,  # kept for the backward softmax
            bwd_flops_factor=0.5,
            tp_allreduce_fwd=FP32 * 2 * B * S,  # max + sumexp reductions
            tp_allreduce_bwd=bsh_bytes,
        ),
    ]
    params = head_param_count(config)
    return LayerGraph(
        name="post_layer", ops=ops, input_tensor="y",
        input_bytes=bsh_bytes,
        param_bytes=FP16 * params, param_count=params,
    )
