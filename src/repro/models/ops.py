"""Operator-level building blocks for symbolic layer graphs.

Each :class:`Op` carries symbolic cost metadata: FLOPs, memory traffic,
output size, bytes stashed for the backward pass, and tensor-parallel
collective volume. Layer builders (:mod:`repro.models.layers`) assemble
ops into :class:`LayerGraph` objects whose aggregate expressions feed
the intra-layer analysis pass (paper Section 5.2.1).

Sizes are expressions over the canonical symbols:

* ``b`` — microbatch size,
* ``s`` — sequence length,
* ``tp`` — tensor-parallel degree.

All activation tensors are fp16 (2 bytes/element); dropout is disabled
and linears have no biases, per the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.symbolic import Const, Expr, as_expr

__all__ = ["Op", "LayerGraph", "OpKind", "B", "S", "TP"]


class OpKind:
    """Operator categories understood by the cost database."""

    GEMM = "gemm"
    BMM = "bmm"  # batched matmul (attention scores / context)
    FLASH_ATTN = "flash_attn"
    SOFTMAX = "softmax"
    ELEMENTWISE = "elementwise"
    NORM = "norm"
    EMBEDDING = "embedding"
    CROSS_ENTROPY = "cross_entropy"

    ALL = (GEMM, BMM, FLASH_ATTN, SOFTMAX, ELEMENTWISE, NORM, EMBEDDING,
           CROSS_ENTROPY)


# Canonical symbols shared by every layer graph. Using module-level
# singletons keeps structural equality across independently built graphs.
from repro.symbolic import Sym  # noqa: E402

B = Sym("b", integer=True)
S = Sym("s", integer=True)
TP = Sym("tp", integer=True)


@dataclass(frozen=True)
class Op:
    """One operator in a layer's forward graph, with symbolic costs."""

    name: str
    kind: str
    inputs: tuple[str, ...]
    output: str
    #: bytes of the output tensor (held live until its last consumer)
    output_bytes: Expr
    #: forward FLOPs
    flops: Expr = Const(0)
    #: forward DRAM traffic in bytes (reads + writes)
    io_bytes: Expr = Const(0)
    #: activation bytes stashed for the backward pass
    saved_bytes: Expr = Const(0)
    #: backward FLOPs = factor * forward FLOPs (2.0 for GEMMs: dgrad+wgrad)
    bwd_flops_factor: float = 2.0
    #: backward traffic = factor * forward traffic
    bwd_io_factor: float = 2.0
    #: bytes all-reduced across the TP group right after this op (forward)
    tp_allreduce_fwd: Expr = Const(0)
    #: bytes all-reduced across the TP group in this op's backward
    tp_allreduce_bwd: Expr = Const(0)

    def __post_init__(self):
        if self.kind not in OpKind.ALL:
            raise ValueError(f"unknown op kind {self.kind!r}")
        for attr in ("output_bytes", "flops", "io_bytes", "saved_bytes",
                     "tp_allreduce_fwd", "tp_allreduce_bwd"):
            object.__setattr__(self, attr, as_expr(getattr(self, attr)))


@dataclass
class LayerGraph:
    """A (symbolic) forward graph for one model block.

    ``ops`` execute in list order; tensor names connect producers to
    consumers. ``input_tensor`` is produced by the previous block.
    """

    name: str
    ops: list[Op]
    input_tensor: str
    input_bytes: Expr
    #: fp16 parameter bytes resident on one TP rank
    param_bytes: Expr = field(default_factory=lambda: Const(0))
    #: parameter elements on one TP rank (for optimizer state sizing)
    param_count: Expr = field(default_factory=lambda: Const(0))

    def __post_init__(self):
        self.input_bytes = as_expr(self.input_bytes)
        self.param_bytes = as_expr(self.param_bytes)
        self.param_count = as_expr(self.param_count)
        produced = {self.input_tensor}
        for op in self.ops:
            for tensor in op.inputs:
                if tensor not in produced:
                    raise ValueError(
                        f"{self.name}: op {op.name!r} consumes undefined "
                        f"tensor {tensor!r}"
                    )
            produced.add(op.output)

    # -- aggregate expressions (the intra-layer pass) -----------------------

    @property
    def output_tensor(self) -> str:
        return self.ops[-1].output

    @property
    def output_bytes(self) -> Expr:
        return self.ops[-1].output_bytes

    def fwd_flops(self) -> Expr:
        total: Expr = Const(0)
        for op in self.ops:
            total = total + op.flops
        return total

    def bwd_flops(self) -> Expr:
        total: Expr = Const(0)
        for op in self.ops:
            total = total + op.flops * op.bwd_flops_factor
        return total

    def fwd_io_bytes(self) -> Expr:
        total: Expr = Const(0)
        for op in self.ops:
            total = total + op.io_bytes
        return total

    def bwd_io_bytes(self) -> Expr:
        total: Expr = Const(0)
        for op in self.ops:
            total = total + op.io_bytes * op.bwd_io_factor
        return total

    def saved_activation_bytes(self) -> Expr:
        """Bytes stashed for backward when the layer is NOT checkpointed."""
        total: Expr = Const(0)
        for op in self.ops:
            total = total + op.saved_bytes
        return total

    def ckpt_saved_bytes(self) -> Expr:
        """Bytes stashed when the layer IS checkpointed (input only)."""
        return self.input_bytes

    def tp_allreduce_fwd_bytes(self) -> Expr:
        total: Expr = Const(0)
        for op in self.ops:
            total = total + op.tp_allreduce_fwd
        return total

    def tp_allreduce_bwd_bytes(self) -> Expr:
        total: Expr = Const(0)
        for op in self.ops:
            total = total + op.tp_allreduce_bwd
        return total

    def op_by_name(self, name: str) -> Op:
        for op in self.ops:
            if op.name == name:
                return op
        raise KeyError(f"no op named {name!r} in {self.name}")
