"""Named model configurations matching the paper's workloads (Table 4).

Sizes follow the published architecture tables: GPT-3 (Brown et al.),
Llama-2 (Touvron et al.), Falcon (Almazrouei et al.); the 22B and 40B
points extrapolate with the same width/depth ratios the paper uses.
"""

from __future__ import annotations

from .config import ModelConfig

__all__ = ["get_model", "list_models", "MODEL_SIZES"]

#: size tag -> (num_layers, hidden_size, num_heads)
MODEL_SIZES: dict[str, tuple[int, int, int]] = {
    "1.3b": (24, 2048, 16),
    "2.7b": (32, 2560, 20),
    "6.7b": (32, 4096, 32),
    "7b": (32, 4096, 32),  # alias used in the paper's figures
    "13b": (40, 5120, 40),
    "22b": (48, 6144, 48),
    "40b": (48, 8192, 64),
}


def _round_to(value: float, multiple: int) -> int:
    return int(-(-value // multiple) * multiple)


def gpt3(size: str, **overrides) -> ModelConfig:
    layers, hidden, heads = MODEL_SIZES[size.lower()]
    cfg = dict(
        name=f"gpt3-{size.lower()}",
        family="gpt3",
        hidden_size=hidden,
        num_layers=layers,
        num_heads=heads,
        vocab_size=50304,
        ffn_hidden_size=4 * hidden,
        gated_mlp=False,
        parallel_attn=False,
        rmsnorm=False,
        rotary=False,
        tied_embeddings=True,
    )
    cfg.update(overrides)
    return ModelConfig(**cfg)


def llama(size: str, **overrides) -> ModelConfig:
    layers, hidden, heads = MODEL_SIZES[size.lower()]
    ffn = _round_to(8 * hidden / 3, 256)
    cfg = dict(
        name=f"llama-{size.lower()}",
        family="llama",
        hidden_size=hidden,
        num_layers=layers,
        num_heads=heads,
        vocab_size=32000,
        ffn_hidden_size=ffn,
        gated_mlp=True,
        parallel_attn=False,
        rmsnorm=True,
        rotary=True,
        tied_embeddings=False,
    )
    cfg.update(overrides)
    return ModelConfig(**cfg)


def falcon(size: str, **overrides) -> ModelConfig:
    layers, hidden, heads = MODEL_SIZES[size.lower()]
    cfg = dict(
        name=f"falcon-{size.lower()}",
        family="falcon",
        hidden_size=hidden,
        num_layers=layers,
        num_heads=heads,
        vocab_size=65024,
        ffn_hidden_size=4 * hidden,
        gated_mlp=False,
        parallel_attn=True,
        rmsnorm=False,
        rotary=True,
        tied_embeddings=True,
    )
    cfg.update(overrides)
    return ModelConfig(**cfg)


_FAMILIES = {"gpt3": gpt3, "gpt": gpt3, "llama": llama, "llama2": llama,
             "falcon": falcon}


def get_model(spec: str, **overrides) -> ModelConfig:
    """Look up a model by ``"<family>-<size>"``, e.g. ``"gpt3-2.7b"``."""
    try:
        family, size = spec.lower().rsplit("-", 1)
    except ValueError:
        raise KeyError(f"model spec {spec!r} is not of the form 'family-size'")
    if family not in _FAMILIES:
        raise KeyError(f"unknown family {family!r}; known: {sorted(_FAMILIES)}")
    if size not in MODEL_SIZES:
        raise KeyError(f"unknown size {size!r}; known: {sorted(MODEL_SIZES)}")
    return _FAMILIES[family](size, **overrides)


def list_models() -> list[str]:
    """All canonical ``family-size`` spec strings."""
    return [
        f"{family}-{size}"
        for family in ("gpt3", "llama", "falcon")
        for size in ("1.3b", "2.7b", "6.7b", "13b", "22b", "40b")
    ]
