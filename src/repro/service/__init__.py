"""Tuning-as-a-service: a long-running daemon over the solver registry.

Every caller of :func:`repro.api.solve` pays a cold search; the service
amortizes it. ``repro serve`` starts an asyncio HTTP daemon whose
bounded worker pool runs solver-registry jobs off the event loop, with
two layers of reuse:

* **coalescing** — concurrent submissions of the same
  ``(solver, TuningJob.fingerprint())`` share one in-flight search;
* **plan caching** — completed reports land in a shared
  :class:`~repro.api.cache.PlanCache`, so a repeated query after
  completion never re-searches.

Endpoints (see ``docs/SERVICE.md`` for the wire reference)::

    POST /jobs                submit {"job": {...}, "solver": "mist"}
    GET  /jobs                list tracked jobs
    GET  /jobs/<id>           job status + report when done
    POST /jobs/<id>/cancel    cooperative cancellation
    POST /campaigns           submit {"cells": [{"job": ..., "solver": ...}]}
    GET  /campaigns           list campaigns (status + counters)
    GET  /campaigns/<id>      campaign status + per-cell records
    GET  /plans/<fingerprint> cached report lookup (?solver=mist)
    GET  /healthz             liveness + registered solvers
    GET  /metrics             hits/misses/coalesced/latency counters

In-process use (tests, notebooks) needs no subprocess::

    from repro.service import Client, TuningService

    handle = TuningService(workers=2).run_in_thread()
    report = Client(handle.url).solve(job, solver="mist")
    handle.stop()
"""

from .client import Client, ServiceError
from .launch import SpawnedDaemon, running_service, spawn_daemon
from .server import (
    AdmissionError,
    ServiceHandle,
    TuningService,
    UnknownCampaignError,
    UnknownJobError,
)
from .state import CampaignRecord, JobRecord, ServiceMetrics
from .workers import ProcessWorkerTier, ThreadWorkerTier, WorkerDiedError

__all__ = [
    "AdmissionError",
    "CampaignRecord",
    "Client",
    "JobRecord",
    "ProcessWorkerTier",
    "ServiceError",
    "ServiceHandle",
    "ServiceMetrics",
    "SpawnedDaemon",
    "ThreadWorkerTier",
    "TuningService",
    "UnknownCampaignError",
    "UnknownJobError",
    "WorkerDiedError",
    "running_service",
    "spawn_daemon",
]
