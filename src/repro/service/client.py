"""Blocking Python client for the ``repro serve`` daemon.

Stdlib-only (:mod:`urllib.request`); every method is one HTTP exchange
except :meth:`Client.wait` / :meth:`Client.solve`, which poll
``GET /jobs/<id>`` until the job reaches a terminal state.

    from repro.api import TuningJob
    from repro.service import Client

    client = Client("http://127.0.0.1:8321")
    report = client.solve(TuningJob(model="gpt3-1.3b", num_gpus=2,
                                    global_batch=16, scale="smoke"))
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections.abc import Iterable
from typing import TYPE_CHECKING, Any

from repro.api.job import TuningJob
from repro.api.report import SolveReport

if TYPE_CHECKING:
    from repro.hardware import ClusterDelta

__all__ = ["Client", "ServiceError"]


class ServiceError(RuntimeError):
    """The daemon answered with an error (HTTP >= 400) or a failed job.

    On a ``429 Too Many Requests`` rejection, :attr:`retry_after`
    carries the daemon's backoff hint in seconds (from the
    ``Retry-After`` header / ``retry_after`` payload field).
    """

    def __init__(self, message: str, *, status: int | None = None,
                 payload: dict[str, Any] | None = None,
                 retry_after: int | None = None):
        super().__init__(message)
        self.status = status
        self.payload: dict[str, Any] = payload or {}
        self.retry_after = retry_after


class Client:
    """Thin blocking wrapper over the service's JSON endpoints.

    ``client_id`` (sent as the ``X-Repro-Client`` header) identifies
    this caller to the daemon's per-client admission quotas; without
    it, requests count against the shared anonymous budget.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 client_id: str | None = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id

    def _request(self, method: str, path: str,
                 payload: dict[str, Any] | None = None) -> dict[str, Any]:
        data = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers,
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode())
            except (ValueError, UnicodeDecodeError):
                body = {}
            retry_after = body.get("retry_after")
            if retry_after is None:
                header = exc.headers.get("Retry-After") if exc.headers \
                    else None
                try:
                    retry_after = int(header) if header else None
                except ValueError:
                    retry_after = None
            raise ServiceError(
                body.get("error", f"HTTP {exc.code}"),
                status=exc.code, payload=body, retry_after=retry_after,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}") from None

    # -- one-exchange endpoints -------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def submit(self, job: TuningJob, solver: str = "mist") -> dict[str, Any]:
        """``POST /jobs``; returns the job record (see ``id``/``status``)."""
        return self._request("POST", "/jobs",
                             {"job": job.to_dict(), "solver": solver})

    def replan(self, job: TuningJob, delta: "ClusterDelta | dict[str, Any]",
               solver: str = "mist", *,
               budget_seconds: float = 0.0) -> dict[str, Any]:
        """``POST /replan``: warm re-tune ``job`` after a cluster change.

        ``delta`` is a :class:`~repro.hardware.ClusterDelta` or its
        dict form. The daemon answers within ``budget_seconds``: a
        ``200`` record carries the finished report, a ``202`` record
        (``budget_expired: True``) carries the incumbent plan to keep
        running plus the job id to poll (:meth:`wait`) for the new one.
        Note the client-level ``timeout`` must exceed the budget.
        """
        delta_dict = delta if isinstance(delta, dict) else delta.to_dict()
        return self._request("POST", "/replan",
                             {"job": job.to_dict(), "delta": delta_dict,
                              "solver": solver,
                              "budget_seconds": budget_seconds})

    def jobs(self) -> list[dict[str, Any]]:
        jobs: list[dict[str, Any]] = self._request("GET", "/jobs")["jobs"]
        return jobs

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def submit_campaign(
        self,
        cells: Iterable["dict[str, Any] | TuningJob | tuple[TuningJob, str]"],
        name: str = "campaign",
    ) -> dict[str, Any]:
        """``POST /campaigns``: submit a batch of cells as one campaign.

        Each cell is a ``{"job": job_dict, "solver": name}`` dict, a
        bare :class:`TuningJob` (solver defaults to ``"mist"``), or a
        ``(job, solver)`` pair. Returns the campaign record; its
        ``cells`` list carries one job record per cell, in order.
        """
        normalized: list[dict[str, Any]] = []
        for cell in cells:
            if isinstance(cell, dict):
                normalized.append(cell)
            elif isinstance(cell, TuningJob):
                normalized.append({"job": cell.to_dict(), "solver": "mist"})
            else:
                job, solver = cell
                normalized.append({"job": job.to_dict(), "solver": solver})
        return self._request("POST", "/campaigns",
                             {"name": name, "cells": normalized})

    def campaigns(self) -> list[dict[str, Any]]:
        campaigns: list[dict[str, Any]] = \
            self._request("GET", "/campaigns")["campaigns"]
        return campaigns

    def campaign(self, campaign_id: str) -> dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def plan(self, fingerprint: str,
             solver: str = "mist") -> SolveReport | None:
        """Cached report for a fingerprint, or ``None`` when absent."""
        try:
            payload = self._request(
                "GET", f"/plans/{fingerprint}?solver={solver}")
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise
        report = SolveReport.from_dict(payload["report"])
        report.from_cache = True
        return report

    # -- polling helpers ---------------------------------------------------

    def wait(self, job_id: str, *, timeout: float | None = None,
             poll_interval: float = 0.1) -> dict[str, Any]:
        """Poll until the job finishes; returns its final record."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed", "cancelled"):
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']} "
                    f"after {timeout:.1f}s")
            time.sleep(poll_interval)

    def wait_campaign(self, campaign_id: str, *,
                      timeout: float | None = None,
                      poll_interval: float = 0.1) -> dict[str, Any]:
        """Poll until every cell finishes; returns the final record."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        while True:
            record = self.campaign(campaign_id)
            if record["status"] != "running":
                return record
            if deadline is not None and time.monotonic() > deadline:
                counters = record["counters"]
                raise TimeoutError(
                    f"campaign {campaign_id} still running "
                    f"({counters['done']}/{counters['cells']} cells) "
                    f"after {timeout:.1f}s")
            time.sleep(poll_interval)

    def solve(self, job: TuningJob, solver: str = "mist", *,
              timeout: float | None = None,
              poll_interval: float = 0.1) -> SolveReport:
        """Submit, wait, and reconstruct the :class:`SolveReport`.

        Raises :class:`ServiceError` when the job fails or is
        cancelled. ``report.from_cache`` reflects whether the daemon
        answered from its shared plan cache.
        """
        record = self.submit(job, solver)
        if not record["from_cache"]:
            record = self.wait(record["id"], timeout=timeout,
                               poll_interval=poll_interval)
        if record["status"] != "done":
            raise ServiceError(
                f"job {record['id']} {record['status']}: "
                f"{record.get('error') or 'no detail'}",
                payload=record,
            )
        report = SolveReport.from_dict(record["report"])
        report.from_cache = bool(record["from_cache"])
        return report
