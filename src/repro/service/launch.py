"""One place that knows how to start a daemon for tests and tooling.

Two flavors, both on ephemeral ports:

* :func:`running_service` — in-thread :class:`TuningService` via
  :meth:`~TuningService.run_in_thread` plus a bound :class:`Client`.
  The default for tests and notebooks (microsecond startup, same
  process, stub solvers visible).
* :func:`spawn_daemon` — a *real* ``python -m repro serve`` subprocess:
  banner parse for the listen address, ``/healthz`` wait, terminate /
  kill on exit. This is the boilerplate ``scripts/service_smoke.py``
  and ``tests/service/conftest.py`` used to duplicate; the load
  harness (``repro load --spawn``) and the CI smoke jobs ride it too.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

from .client import Client, ServiceError
from .server import TuningService

if TYPE_CHECKING:
    from repro.api import PlanCache

__all__ = ["SpawnedDaemon", "daemon_command", "running_service",
           "spawn_daemon"]

_URL_RE = re.compile(r"http://[\d.]+:\d+")


def daemon_command(*, workers: int = 1, worker_mode: str = "thread",
                   cache_dir: str | None = None,
                   host: str = "127.0.0.1",
                   extra_args: Sequence[str] = ()) -> list[str]:
    """The ``repro serve`` argv for a throwaway ephemeral-port daemon."""
    cmd = [sys.executable, "-m", "repro", "serve", "--host", host,
           "--port", "0", "--workers", str(workers),
           "--worker-mode", worker_mode]
    if cache_dir is not None:
        cmd += ["--cache-dir", str(cache_dir)]
    return cmd + list(extra_args)


@dataclass
class SpawnedDaemon:
    """A live ``repro serve`` subprocess and where it listens."""

    url: str
    process: subprocess.Popen[str]
    #: most recent daemon output lines (banner excluded), for diagnostics
    output: deque[str] = field(default_factory=lambda: deque(maxlen=200))

    def stop(self, timeout: float = 10.0) -> None:
        self.process.terminate()
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=timeout)


def _drain(stream: IO[str], sink: deque[str]) -> None:
    """Background reader: keep the daemon's stdout pipe from filling."""
    for line in stream:
        sink.append(line.rstrip("\n"))


@contextmanager
def spawn_daemon(*, workers: int = 1, worker_mode: str = "thread",
                 cache_dir: str | None = None,
                 extra_args: Sequence[str] = (),
                 startup_timeout: float = 120.0) -> Iterator[SpawnedDaemon]:
    """Run ``repro serve`` as a real subprocess; yield a SpawnedDaemon.

    ``PYTHONPATH`` is pointed at this package's source tree so the
    subprocess resolves the same ``repro`` the caller imported (no
    install required). The banner is printed only after the port is
    bound and the worker tier is warm, so the yielded daemon is ready
    for latency-sensitive measurement immediately.
    """
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        daemon_command(workers=workers, worker_mode=worker_mode,
                       cache_dir=cache_dir, extra_args=extra_args),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    daemon: SpawnedDaemon | None = None
    drain: threading.Thread | None = None
    try:
        assert process.stdout is not None
        deadline = time.monotonic() + startup_timeout
        url: str | None = None
        while url is None:
            line = process.stdout.readline()
            if not line:
                raise RuntimeError(
                    "daemon exited before printing its listen address "
                    f"(exit code {process.poll()})")
            match = _URL_RE.search(line)
            if match:
                url = match.group(0)
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"daemon did not start within {startup_timeout:.0f}s")
        daemon = SpawnedDaemon(url=url, process=process)
        drain = threading.Thread(target=_drain,
                                 args=(process.stdout, daemon.output),
                                 daemon=True)
        drain.start()
        client = Client(url, timeout=10.0)
        while True:
            try:
                if client.health().get("status") == "ok":
                    break
            except ServiceError:
                pass
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"daemon at {url} never became healthy; recent "
                    f"output: {list(daemon.output)[-5:]}")
            time.sleep(0.05)
        yield daemon
    finally:
        if daemon is not None:
            daemon.stop()
        else:
            process.kill()
            process.wait(timeout=10.0)
        if drain is not None:
            # Closing stdout while the drain thread is mid-read would
            # deadlock on the stream's internal lock. The thread exits
            # at pipe EOF; if a leaked grandchild still holds the write
            # end open, leave the (daemonic) thread and fd behind
            # rather than hang.
            drain.join(timeout=5.0)
        if process.stdout is not None and (drain is None
                                           or not drain.is_alive()):
            process.stdout.close()


@contextmanager
def running_service(*, workers: int = 2, cache: "PlanCache | None" = None,
                    client_timeout: float = 10.0,
                    client_id: str | None = None,
                    **service_kwargs: Any,
                    ) -> Iterator[tuple[TuningService, Client]]:
    """In-thread daemon + bound client (tests, notebooks, examples).

    Yields ``(service, client)``; the daemon is stopped on exit.
    Extra keyword arguments go straight to :class:`TuningService`
    (``worker_mode=``, ``max_pending=``, ``quota=``, ...).
    """
    service = TuningService(workers=workers, cache=cache, **service_kwargs)
    handle = service.run_in_thread()
    try:
        yield service, Client(handle.url, timeout=client_timeout,
                              client_id=client_id)
    finally:
        handle.stop()
