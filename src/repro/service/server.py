"""The ``repro serve`` daemon: asyncio HTTP front, tiered solver workers.

Architecture — one event loop, one bounded
:class:`~concurrent.futures.ThreadPoolExecutor` of *flight
supervisors*, and a pluggable worker tier (``repro.service.workers``):

* the loop accepts connections and parses/serializes JSON; nothing on
  it ever runs a solver;
* submissions are keyed by ``(solver, TuningJob.fingerprint())``;
  a cache hit completes immediately, an identical in-flight key
  coalesces onto the running search, anything else must pass
  *admission control* (bounded pending queue + per-client quotas; a
  rejection is ``429 Too Many Requests`` with a ``Retry-After`` hint)
  before a supervisor thread hands it to the worker tier;
* ``worker_mode="thread"`` runs the search on the supervisor thread
  itself via :func:`repro.api.solve` (full ``progress`` /
  ``should_stop`` hook fidelity); ``worker_mode="process"`` routes it
  to a fingerprint-pinned worker *process* so searches use real cores
  — both share the same on-disk :class:`~repro.api.cache.PlanCache`.

Only the stdlib is used: the HTTP layer is a minimal HTTP/1.1
request/response exchange over :func:`asyncio.start_server`
(``Connection: close``, JSON bodies both ways).
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import signal
import sys
import threading
import time
import traceback
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.api import (
    PlanCache,
    SolveReport,
    SolverNotFoundError,
    TuningJob,
    solve,
)
from repro.api.registry import solver_names
from repro.api.replan import delta_job
from repro.api.replan import replan as api_replan
from repro.core.plan import TrainingPlan
from repro.core.tuner import SearchCancelled
from repro.hardware import ClusterDelta, DeltaError

from .state import CampaignRecord, InFlight, JobRecord, ServiceMetrics
from .workers import ProgressFn, SolveFn, StopFn, make_tier

#: one flight's search body: ``runner(progress, should_stop) -> report``
_Runner = Callable[[ProgressFn, StopFn], SolveReport]

__all__ = ["AdmissionError", "ServiceHandle", "TuningService",
           "UnknownCampaignError", "UnknownJobError"]


class AdmissionError(RuntimeError):
    """The daemon refused a submission (full queue or client quota).

    Maps to ``429 Too Many Requests`` on the wire; ``retry_after`` is
    the server's backoff hint in whole seconds (also sent as the
    ``Retry-After`` header).
    """

    def __init__(self, message: str, *, reason: str, retry_after: int):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class UnknownJobError(KeyError):
    """No job record under the requested id."""

    def __init__(self, job_id: str):
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


class UnknownCampaignError(KeyError):
    """No campaign record under the requested id."""

    def __init__(self, campaign_id: str):
        super().__init__(f"unknown campaign {campaign_id!r}")
        self.campaign_id = campaign_id

_MAX_BODY_BYTES = 8 * 2**20  # a TuningJob is KBs; reject absurd bodies

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str, *,
                 headers: dict[str, str] | None = None,
                 extra: dict[str, Any] | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        #: extra response headers (e.g. ``Retry-After`` on a 429)
        self.headers: dict[str, str] = headers or {}
        #: extra JSON payload fields alongside ``{"error": ...}``
        self.extra: dict[str, Any] = extra or {}


@dataclass
class ServiceHandle:
    """A started service: where it listens and how to stop it."""

    service: "TuningService"
    thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def stop(self, *, timeout: float = 10.0) -> None:
        self.service.stop()
        if self.thread is not None:
            self.thread.join(timeout=timeout)


class TuningService:
    """Long-running tuning daemon over the solver registry.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` once started). ``solve_fn`` is the solver entry point
    and exists for tests — it must match :func:`repro.api.solve`'s
    signature.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 2, cache: PlanCache | None = None,
                 solve_fn: SolveFn | None = None,
                 worker_mode: str = "thread",
                 max_pending: int = 0, quota: int = 0,
                 worker_retries: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0 (0 = unbounded)")
        if quota < 0:
            raise ValueError("quota must be >= 0 (0 = unlimited)")
        self.host = host
        self.port = port
        self.workers = workers
        self.worker_mode = worker_mode
        #: admission control: max concurrently *pending* searches
        #: (distinct in-flight fingerprints); 0 disables the bound
        self.max_pending = max_pending
        #: admission control: max unresolved jobs per client; 0 = off
        self.quota = quota
        self.cache = cache if cache is not None else PlanCache()
        self.metrics = ServiceMetrics()
        self._solve: SolveFn = solve_fn if solve_fn is not None else solve
        self._tier = make_tier(worker_mode, workers, solve_fn=solve_fn,
                               retries=worker_retries)
        self._jobs: dict[str, JobRecord] = {}
        self._campaigns: dict[str, CampaignRecord] = {}
        self._inflight: dict[tuple[str, str], InFlight] = {}
        #: unresolved-job count per client id (quota bookkeeping)
        self._clients: dict[str, int] = {}
        self._lock = threading.Lock()
        # in process mode the supervisor threads merely await worker
        # futures, so more of them than routed processes keeps slots
        # busy while others block on IPC
        supervisors = workers if worker_mode == "thread" else workers * 4
        self._pool = ThreadPoolExecutor(max_workers=supervisors,
                                        thread_name_prefix="repro-solve")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._shutting_down = False

    # -- job lifecycle (thread-safe, usable without HTTP) ------------------

    def submit(self, job: TuningJob, solver: str = "mist", *,
               client: str = "", preadmitted: bool = False) -> JobRecord:
        """Register a job: cache hit, coalesce, or start a search.

        ``client`` is the submitter's id (the HTTP front passes the
        ``X-Repro-Client`` header) and feeds the per-client quota
        ledger. Raises :class:`AdmissionError` when the pending queue
        is full (new searches only — cache hits and coalescing add no
        load) or the client is over quota. ``preadmitted=True`` skips
        those checks: :meth:`submit_campaign` admits its whole batch
        up front instead of failing halfway through.
        """
        if solver not in solver_names():
            raise SolverNotFoundError(solver)
        fingerprint = job.fingerprint()
        record = JobRecord(job=job, solver=solver, fingerprint=fingerprint,
                           client=client)
        key = (solver, fingerprint)
        with self._lock:
            # the cache read must happen under the same lock as the
            # in-flight check. The worker's own store is NOT locked —
            # the invariant is ordering: solve() stores the report
            # strictly before _finish_flight detaches the flight under
            # this lock, so a racing submission sees either the flight
            # (coalesce) or the already-stored entry (hit), never
            # neither. Keep that store-before-detach order.
            hit = self.cache.load(job, solver)
            if hit is not None:
                self.metrics.inc("jobs_submitted")
                self._jobs[record.id] = record
                record.complete(hit, from_cache=True)
                self.metrics.inc("cache_hits")
                self.metrics.inc("jobs_completed")
                return record
            flight = self._inflight.get(key)
            if not preadmitted:
                self._admit_locked(client, new_flight=flight is None)
            self.metrics.inc("jobs_submitted")
            self.metrics.inc("cache_misses")
            self._jobs[record.id] = record
            # the record holds one quota slot until it goes terminal
            record.counted = True
            self._clients[client] = self._clients.get(client, 0) + 1
            if flight is not None:
                flight.attach(record)
                record.coalesced = True
                self.metrics.inc("coalesced")
                return record
            flight = InFlight(key, record)
            self._inflight[key] = flight
            self._pool.submit(self._run_flight, flight, job, solver)
        return record

    def submit_replan(self, job: TuningJob,
                      delta: "ClusterDelta | dict[str, Any]",
                      solver: str = "mist", *, client: str = "",
                      ) -> tuple[JobRecord, TrainingPlan | None]:
        """Register an elastic replan: re-tune ``job`` after ``delta``.

        Returns ``(record, incumbent_plan)``. The record tracks the
        *post-delta* job (its fingerprint is the plan-cache key for the
        re-tuned plan), so a repeated replan is a cache hit and an
        identical concurrent one coalesces — and both share admission
        control with ordinary submissions. The incumbent plan is looked
        up in the cache under the pre-delta job; ``None`` means the
        search runs cold (still correct, just slower).

        Replan flights run on the supervisor thread itself via
        :func:`repro.api.replan` — the process tier's IPC cannot carry
        an incumbent plan — so ``worker_mode="process"`` daemons replan
        on a thread while ordinary solves keep their worker processes.
        """
        if solver not in solver_names():
            raise SolverNotFoundError(solver)
        if isinstance(delta, dict):
            delta = ClusterDelta.from_dict(delta)
        new_job = delta_job(job, delta)
        fingerprint = new_job.fingerprint()
        record = JobRecord(job=new_job, solver=solver,
                           fingerprint=fingerprint, client=client)
        key = (solver, fingerprint)
        self.metrics.inc("replan_requests")
        with self._lock:
            # same ordering contract as submit(): cache read and
            # in-flight check under one lock (see submit's comment)
            hit = self.cache.load(new_job, solver)
            if hit is not None:
                self.metrics.inc("jobs_submitted")
                self._jobs[record.id] = record
                record.complete(hit, from_cache=True)
                self.metrics.inc("cache_hits")
                self.metrics.inc("replan_cache_hits")
                self.metrics.inc("jobs_completed")
                return record, None
            flight = self._inflight.get(key)
            self._admit_locked(client, new_flight=flight is None)
            self.metrics.inc("jobs_submitted")
            self.metrics.inc("cache_misses")
            self._jobs[record.id] = record
            record.counted = True
            self._clients[client] = self._clients.get(client, 0) + 1
            incumbent = self.cache.load(job, solver)
            plan = incumbent.plan if incumbent is not None else None
            if flight is not None:
                # someone is already solving this exact post-delta job
                # (a racing replan or a plain submit); ride that search
                flight.attach(record)
                record.coalesced = True
                self.metrics.inc("coalesced")
                return record, plan
            self.metrics.inc("replan_warm" if plan is not None
                             else "replan_cold_fallback")
            flight = InFlight(key, record)
            self._inflight[key] = flight
            self._pool.submit(self._run_replan_flight, flight, job, delta,
                              solver, plan)
        return record, plan

    def _admit_locked(self, client: str, *, new_flight: bool) -> None:
        """Admission checks; the caller holds ``self._lock``.

        Coalescing submissions (``new_flight=False``) bypass the
        queue-depth bound — they attach to a search that is already
        paid for — but still consume client quota.
        """
        if self.quota > 0:
            held = self._clients.get(client, 0)  # repro: allow[lock-discipline] caller holds self._lock
            if held >= self.quota:
                self.metrics.inc("rejected_quota")
                raise AdmissionError(
                    f"client {client or 'anonymous'!r} already holds "
                    f"{held} unresolved job(s) (quota {self.quota})",
                    reason="quota", retry_after=self._retry_after_locked())
        if new_flight and self.max_pending > 0:
            depth = len(self._inflight)  # repro: allow[lock-discipline] caller holds self._lock
            if depth >= self.max_pending:
                self.metrics.inc("rejected_queue")
                raise AdmissionError(
                    f"pending queue is full ({depth}/{self.max_pending} "
                    f"searches in flight)",
                    reason="queue", retry_after=self._retry_after_locked())

    def _admit_batch_locked(self, cells: int, client: str) -> None:
        """Worst-case batch admission; the caller holds ``self._lock``.

        Assumes every cell misses the cache and starts its own search
        — a conservative bound (hits and coalesces consume less), so a
        campaign either fits entirely or is rejected as one unit
        before any cell is submitted.
        """
        if self.quota > 0:
            held = self._clients.get(client, 0)  # repro: allow[lock-discipline] caller holds self._lock
            if held + cells > self.quota:
                self.metrics.inc("rejected_quota")
                raise AdmissionError(
                    f"campaign of {cells} cell(s) would put client "
                    f"{client or 'anonymous'!r} over quota "
                    f"({held} held, quota {self.quota})",
                    reason="quota", retry_after=self._retry_after_locked())
        if self.max_pending > 0:
            depth = len(self._inflight)  # repro: allow[lock-discipline] caller holds self._lock
            if depth + cells > self.max_pending:
                self.metrics.inc("rejected_queue")
                raise AdmissionError(
                    f"campaign of {cells} cell(s) would overflow the "
                    f"pending queue ({depth}/{self.max_pending} in flight)",
                    reason="queue", retry_after=self._retry_after_locked())

    def _retry_after_locked(self) -> int:
        """Backoff hint in seconds: expected queue drain time.

        Average solve wall-time times queue depth over worker count,
        clamped to [1, 60]; 1 before the first solve finishes.
        """
        depth = len(self._inflight)  # repro: allow[lock-discipline] caller holds self._lock
        estimate = (self.metrics.avg_solve_seconds() * max(1, depth)
                    / max(1, self.workers))
        return int(max(1, min(60, math.ceil(estimate))))

    def _release_client(self, record: JobRecord) -> None:
        """Return the record's quota slot (exactly once per record).

        Callers invoke this only on the winning terminal transition —
        the one ``complete()`` / ``fail()`` / ``cancel()`` call that
        returned True — so a record can never release twice.
        """
        if not record.counted:
            return
        record.counted = False
        with self._lock:
            held = self._clients.get(record.client, 0)
            if held <= 1:
                self._clients.pop(record.client, None)
            else:
                self._clients[record.client] = held - 1

    def submit_campaign(self, cells: list[dict[str, Any]],
                        name: str = "campaign", *,
                        client: str = "") -> CampaignRecord:
        """Register a batch of ``{"job": ..., "solver": ...}`` cells.

        Every cell is validated *before* any is submitted, so a bad
        cell rejects the whole campaign instead of leaving a partial
        batch behind. Each accepted cell then rides the ordinary
        :meth:`submit` path — plan-cache hits complete immediately,
        identical concurrent cells coalesce onto one search, the rest
        queue on the bounded worker pool.
        """
        if not isinstance(cells, list) or not cells:
            raise ValueError("campaign needs a non-empty cell list")
        parsed: list[tuple[TuningJob, str]] = []
        for index, cell in enumerate(cells):
            if not isinstance(cell, dict):
                raise ValueError(f"cell {index} must be an object")
            solver = cell.get("solver", "mist")
            if solver not in solver_names():
                raise SolverNotFoundError(solver)
            job_dict = cell.get("job")
            if not isinstance(job_dict, dict):
                raise ValueError(f'cell {index} must carry {{"job": ...}}')
            try:
                job = TuningJob.from_dict(job_dict)
            except (KeyError, TypeError, ValueError) as exc:
                # everything a malformed job dict can raise out of
                # from_dict (JobValidationError is a ValueError)
                raise ValueError(f"cell {index}: invalid job: {exc}") \
                    from None
            parsed.append((job, solver))
        # admit the whole batch up front (worst case: every cell is a
        # fresh search), then submit cells with checks already passed —
        # a campaign never dies halfway through on a 429
        with self._lock:
            self._admit_batch_locked(len(parsed), client)
        records = [self.submit(job, solver, client=client, preadmitted=True)
                   for job, solver in parsed]
        campaign = CampaignRecord(name=str(name), records=records)
        with self._lock:
            self._campaigns[campaign.id] = campaign
        self.metrics.inc("campaigns_submitted")
        self.metrics.inc("campaign_cells", len(records))
        return campaign

    def get_campaign(self, campaign_id: str) -> CampaignRecord:
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            raise UnknownCampaignError(campaign_id)
        return campaign

    def get_job(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise UnknownJobError(job_id)
        return record

    def cancel_job(self, job_id: str) -> JobRecord:
        record = self.get_job(job_id)
        if record.cancel():
            self.metrics.inc("jobs_cancelled")
            self._release_client(record)
        return record

    def worker_pids(self) -> list[int | None]:
        """Routed worker-process pids (empty list in thread mode)."""
        return self._tier.worker_pids()

    def _run_flight(self, flight: InFlight, job: TuningJob,
                    solver: str) -> None:
        """Worker-thread body: one search feeding 1..n coalesced records."""
        self._run_search(
            flight,
            lambda progress, should_stop: self._tier.run(
                job, solver, cache=self.cache,
                progress=progress, should_stop=should_stop))

    def _run_replan_flight(self, flight: InFlight, base_job: TuningJob,
                           delta: ClusterDelta, solver: str,
                           plan: TrainingPlan | None) -> None:
        """Supervisor-thread body of one warm-started replan search."""
        self._run_search(
            flight,
            lambda progress, should_stop: api_replan(
                base_job, delta, solver, cache=self.cache, incumbent=plan,
                progress=progress, should_stop=should_stop))

    def _run_search(self, flight: InFlight, runner: _Runner) -> None:
        """Run one search (``runner(progress, should_stop)``) for a flight."""
        flight.mark_running()

        def progress(done: int, total: int) -> None:
            snapshot = {"done": done, "total": total}
            for record in flight.records():
                record.progress = dict(snapshot)

        def should_stop() -> bool:
            return self._shutting_down or flight.cancelled()

        start = time.perf_counter()
        try:
            report = runner(progress, should_stop)
        except SearchCancelled:
            self.metrics.inc("solver_invocations")
            self._finish_flight(flight)
            # cancelled records already hold their terminal state; a
            # record that coalesced on after cancellation fired fails
            for record in flight.records():
                if record.fail("search cancelled before completion"):
                    self.metrics.inc("jobs_failed")
                    self._release_client(record)
                self.metrics.observe_job(record.wait_seconds,
                                         record.duration_seconds)
        except Exception as exc:  # noqa: BLE001 — daemon must not die
            self.metrics.inc("solver_invocations")
            self._finish_flight(flight)
            error = f"{type(exc).__name__}: {exc}"
            for record in flight.records():
                if record.fail(error):
                    self.metrics.inc("jobs_failed")
                    self._release_client(record)
                self.metrics.observe_job(record.wait_seconds,
                                         record.duration_seconds)
        else:
            # from_cache means another process stored the answer while
            # this flight raced it — no search ran here, so the ledger
            # records a hit, not an invocation
            if report.from_cache:
                self.metrics.inc("cache_hits")
            else:
                self.metrics.inc("solver_invocations")
                self.metrics.observe_solve(time.perf_counter() - start)
                # surface the prune-and-memoize engine's counters
                self.metrics.observe_search(
                    getattr(report, "search_stats", {}) or {})
            self._finish_flight(flight)
            for record in flight.records():
                if record.complete(report, from_cache=report.from_cache):
                    self.metrics.inc("jobs_completed")
                    self._release_client(record)
                self.metrics.observe_job(record.wait_seconds,
                                         record.duration_seconds)

    def _metrics_body(self) -> dict[str, Any]:
        with self._lock:
            in_flight = len(self._inflight)
            tracked = len(self._jobs)
            campaigns_tracked = len(self._campaigns)
        return self.metrics.snapshot(
            in_flight=in_flight, tracked=tracked, workers=self.workers,
            campaigns_tracked=campaigns_tracked,
            worker_tier=self._tier.stats(),
            max_pending=self.max_pending, quota=self.quota)

    def _jobs_body(self) -> dict[str, Any]:
        with self._lock:
            records = list(self._jobs.values())
        return {"jobs": [r.to_dict(include_report=False) for r in records]}

    def _campaigns_body(self) -> dict[str, Any]:
        with self._lock:
            campaigns = list(self._campaigns.values())
        return {"campaigns": [c.to_dict(include_cells=False)
                              for c in campaigns]}

    def _finish_flight(self, flight: InFlight) -> None:
        """Detach the flight so later submissions go to the cache.

        Ordering matters: this runs under the same lock as
        :meth:`submit`, so any record that coalesced onto the flight
        before removal is in ``flight.records()`` and will be completed
        by the caller; any submission after removal sees the stored
        cache entry (or starts a fresh flight after a failure).
        """
        with self._lock:
            self._inflight.pop(flight.key, None)

    # -- HTTP front --------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        status = 500
        payload: dict[str, Any] = {"error": "internal error"}
        extra_headers: dict[str, str] = {}
        try:
            method, path, headers, body = await self._read_request(reader)
            status, payload = await self._dispatch(method, path, headers,
                                                   body)
        except _HttpError as exc:
            status = exc.status
            payload = {"error": exc.message, **exc.extra}
            extra_headers = exc.headers
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception:  # noqa: BLE001 — connection-scoped failure
            # log server-side; never leak tracebacks to remote clients
            print("repro serve: unhandled error\n"
                  + traceback.format_exc(limit=5),
                  file=sys.stderr, flush=True)
            status, payload = 500, {"error": "internal server error"}
        data = json.dumps(payload, sort_keys=True).encode()
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in extra_headers.items())
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"{extra}"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        try:
            writer.write(head + data)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader,
                            ) -> tuple[str, str, dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if content_length < 0:
            raise _HttpError(400, "bad Content-Length")
        if content_length > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, path, headers, body

    async def _dispatch(self, method: str, path: str, headers: dict[str, str],
                        body: bytes) -> tuple[int, dict[str, Any]]:
        split = urlsplit(path)
        segments = [s for s in split.path.split("/") if s]
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        client = headers.get("x-repro-client", "")
        loop = asyncio.get_running_loop()

        if segments == ["healthz"] and method == "GET":
            return 200, {
                "status": "ok",
                "version": __version__,
                "solvers": list(solver_names()),
                "workers": self.workers,
                "worker_mode": self.worker_mode,
                "max_pending": self.max_pending,
                "quota": self.quota,
                "cache_dir": str(self.cache.root),
            }
        if segments == ["metrics"] and method == "GET":
            # self._lock may be held by a submit() doing cache I/O, so
            # even short lock acquisitions stay off the event loop
            return 200, await loop.run_in_executor(None, self._metrics_body)
        if segments == ["jobs"]:
            if method == "POST":
                payload = self._parse_json(body)
                job_dict = payload.get("job")
                if not isinstance(job_dict, dict):
                    raise _HttpError(400, 'body must carry {"job": {...}}')
                solver = payload.get("solver", "mist")
                try:
                    job = TuningJob.from_dict(job_dict)
                except (KeyError, TypeError, ValueError) as exc:
                    # everything a malformed job dict can raise out of
                    # from_dict (JobValidationError is a ValueError)
                    raise _HttpError(400, f"invalid job: {exc}") from None
                try:
                    # submit touches the cache (disk): keep it off the loop
                    record = await loop.run_in_executor(
                        None, functools.partial(self.submit, job, solver,
                                                client=client))
                except SolverNotFoundError as exc:
                    raise _HttpError(404, exc.args[0]) from None
                except AdmissionError as exc:
                    raise _HttpError(
                        429, str(exc),
                        headers={"Retry-After": str(exc.retry_after)},
                        extra={"retry_after": exc.retry_after,
                               "reason": exc.reason}) from None
                return 202, record.to_dict()
            if method == "GET":
                return 200, await loop.run_in_executor(
                    None, self._jobs_body)
            raise _HttpError(405, f"{method} not allowed on /jobs")
        if len(segments) == 2 and segments[0] == "jobs" and method == "GET":
            try:
                record = await loop.run_in_executor(
                    None, self.get_job, segments[1])
                return 200, record.to_dict()
            except UnknownJobError as exc:
                raise _HttpError(404, exc.args[0]) from None
        if (len(segments) == 3 and segments[0] == "jobs"
                and segments[2] == "cancel" and method == "POST"):
            try:
                record = await loop.run_in_executor(
                    None, self.cancel_job, segments[1])
                return 200, record.to_dict()
            except UnknownJobError as exc:
                raise _HttpError(404, exc.args[0]) from None
        if segments == ["campaigns"]:
            if method == "POST":
                payload = self._parse_json(body)
                cells = payload.get("cells")
                name = payload.get("name", "campaign")
                try:
                    # validates + submits; cache reads stay off the loop
                    campaign = await loop.run_in_executor(
                        None, functools.partial(self.submit_campaign,
                                                cells, name, client=client))
                except SolverNotFoundError as exc:
                    raise _HttpError(404, exc.args[0]) from None
                except AdmissionError as exc:
                    raise _HttpError(
                        429, str(exc),
                        headers={"Retry-After": str(exc.retry_after)},
                        extra={"retry_after": exc.retry_after,
                               "reason": exc.reason}) from None
                except ValueError as exc:
                    raise _HttpError(400, str(exc)) from None
                return 202, campaign.to_dict()
            if method == "GET":
                return 200, await loop.run_in_executor(
                    None, self._campaigns_body)
            raise _HttpError(405, f"{method} not allowed on /campaigns")
        if (len(segments) == 2 and segments[0] == "campaigns"
                and method == "GET"):
            try:
                campaign = await loop.run_in_executor(
                    None, self.get_campaign, segments[1])
                return 200, campaign.to_dict()
            except UnknownCampaignError as exc:
                raise _HttpError(404, exc.args[0]) from None
        if segments == ["replan"] and method == "POST":
            payload = self._parse_json(body)
            job_dict = payload.get("job")
            if not isinstance(job_dict, dict):
                raise _HttpError(400, 'body must carry {"job": {...}}')
            delta_dict = payload.get("delta")
            if not isinstance(delta_dict, dict):
                raise _HttpError(400, 'body must carry {"delta": {...}}')
            solver = payload.get("solver", "mist")
            try:
                budget = float(payload.get("budget_seconds", 0.0))
            except (TypeError, ValueError):
                raise _HttpError(400, "budget_seconds must be a number") \
                    from None
            try:
                job = TuningJob.from_dict(job_dict)
            except (KeyError, TypeError, ValueError) as exc:
                raise _HttpError(400, f"invalid job: {exc}") from None
            try:
                delta = ClusterDelta.from_dict(delta_dict)
            except (KeyError, TypeError, ValueError) as exc:
                raise _HttpError(400, f"invalid delta: {exc}") from None
            try:
                record, plan = await loop.run_in_executor(
                    None, functools.partial(self.submit_replan, job, delta,
                                            solver, client=client))
            except SolverNotFoundError as exc:
                raise _HttpError(404, exc.args[0]) from None
            except AdmissionError as exc:
                raise _HttpError(
                    429, str(exc),
                    headers={"Retry-After": str(exc.retry_after)},
                    extra={"retry_after": exc.retry_after,
                           "reason": exc.reason}) from None
            except (DeltaError, ValueError) as exc:
                # a delta that doesn't fit the cluster, or a post-delta
                # job that fails validation (JobValidationError)
                raise _HttpError(400, str(exc)) from None
            if not record.finished and budget > 0:
                # latency budget: block off the loop until the search
                # lands or the budget runs out, whichever comes first
                await loop.run_in_executor(
                    None, self._await_record, record, budget)
            out = record.to_dict()
            if record.finished:
                self.metrics.inc("replan_within_budget")
                return 200, out
            # budget expired (or none given): hand back the tracking
            # record plus the incumbent plan — the caller keeps running
            # the old plan and polls GET /jobs/<id> for the new one
            self.metrics.inc("replan_budget_expired")
            out["budget_expired"] = True
            out["budget_seconds"] = budget
            out["incumbent_plan"] = (plan.to_dict()
                                     if plan is not None else None)
            return 202, out
        if len(segments) == 2 and segments[0] == "plans" and method == "GET":
            solver = query.get("solver", "mist")
            report = await loop.run_in_executor(
                None, self.cache.load_fingerprint, segments[1], solver)
            if report is None:
                raise _HttpError(
                    404, f"no cached plan for {solver}-{segments[1]}")
            return 200, {"solver": solver, "fingerprint": segments[1],
                         "report": report.to_dict()}
        raise _HttpError(404, f"no route for {method} {split.path}")

    @staticmethod
    def _await_record(record: JobRecord, budget: float) -> None:
        """Block (off the event loop) until the record reaches a
        terminal state or the latency budget expires."""
        deadline = time.monotonic() + budget
        while not record.finished and time.monotonic() < deadline:
            time.sleep(0.02)

    @staticmethod
    def _parse_json(body: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    # -- lifecycle ---------------------------------------------------------

    async def _main(self, ready: threading.Event | None = None,
                    banner: bool = False) -> None:
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        self._loop = loop
        self._stop_event = stop_event
        try:
            # graceful SIGTERM: without this, terminating the daemon
            # orphans process-mode workers (they hold the inherited
            # stdout pipe open, wedging any parent draining it)
            loop.add_signal_handler(signal.SIGTERM, stop_event.set)
        except (NotImplementedError, ValueError, RuntimeError):
            pass  # non-main thread or unsupported platform
        server = await asyncio.start_server(self._handle_conn,
                                            self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        # spawn worker processes (process mode) before declaring ready
        # so the first request never pays process start-up latency
        await loop.run_in_executor(None, self._tier.warm)
        if banner:
            print(f"repro serve: listening on http://{self.host}:{self.port}"
                  f" ({self.workers} {self.worker_mode} workers, "
                  f"cache {self.cache.root})",
                  flush=True)
        if ready is not None:
            ready.set()
        async with server:
            await stop_event.wait()
        self._shutting_down = True
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._tier.shutdown()

    def serve_forever(self, *, banner: bool = True) -> None:
        """Run in the current thread until interrupted (the CLI path)."""
        try:
            asyncio.run(self._main(banner=banner))
        except KeyboardInterrupt:
            self._shutting_down = True
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._tier.shutdown()

    def run_in_thread(self) -> ServiceHandle:
        """Start on a daemon thread; returns once the port is bound."""
        ready = threading.Event()
        thread = threading.Thread(target=lambda: asyncio.run(
            self._main(ready=ready)), daemon=True, name="repro-serve")
        thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return ServiceHandle(service=self, thread=thread)

    def stop(self) -> None:
        """Signal shutdown: stop accepting, cancel queued searches."""
        self._shutting_down = True
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and loop.is_running():
            loop.call_soon_threadsafe(event.set)
