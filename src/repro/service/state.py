"""Shared service state: job records, in-flight coalescing, metrics.

Everything here is touched from the asyncio event loop *and* from
solver worker threads, so each structure guards its mutable fields with
its own lock and exposes snapshot-style accessors that return plain
JSON-serializable data.
"""

from __future__ import annotations

import math
import threading
import time
import uuid
from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.api.job import TuningJob
from repro.api.report import SolveReport

__all__ = ["CampaignRecord", "JOB_STATES", "InFlight", "JobRecord",
           "ServiceMetrics", "percentiles"]

#: how many of the most recent per-job latency samples feed the
#: ``/metrics`` percentiles (a bounded sliding window, not all-time)
LATENCY_WINDOW = 2048


def percentiles(samples: Iterable[float],
                points: Sequence[float] = (50.0, 95.0, 99.0),
                ) -> dict[str, float]:
    """Nearest-rank percentiles of ``samples``, keyed ``"p50"`` etc.

    Empty input yields all-zero values (the service reports them
    before any job has finished). Shared by the service's ``/metrics``
    section and the ``repro load`` report so both quote the same
    statistic.
    """
    ordered = sorted(samples)
    out: dict[str, float] = {}
    for point in points:
        key = f"p{point:g}"
        if not ordered:
            out[key] = 0.0
            continue
        rank = max(1, math.ceil(point / 100.0 * len(ordered)))
        out[key] = float(ordered[min(rank, len(ordered)) - 1])
    return out

#: lifecycle: queued -> running -> done | failed | cancelled
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a record can no longer leave
TERMINAL_STATES = ("done", "failed", "cancelled")


def _new_job_id() -> str:
    # repro: allow[determinism] runtime-only handle, never fingerprinted
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class JobRecord:
    """One submitted tuning request tracked by the daemon."""

    job: TuningJob
    solver: str
    fingerprint: str
    id: str = field(default_factory=_new_job_id)
    status: str = "queued"
    #: wall-clock timestamps, display-only — duration math must use the
    #: monotonic counterparts below (wall-clock can step under NTP)
    submitted_at: float = field(default_factory=time.time)  # repro: allow[determinism] display timestamp
    started_at: float | None = None
    finished_at: float | None = None
    _submitted_monotonic: float = field(default_factory=time.monotonic,
                                        repr=False)
    _started_monotonic: float | None = field(default=None, repr=False)
    _finished_monotonic: float | None = field(default=None, repr=False)
    #: latest (S, G)-cell progress relayed by the solver, if any
    progress: dict[str, int] | None = None
    error: str | None = None
    report: SolveReport | None = None
    #: True when the answer came straight from the shared PlanCache
    from_cache: bool = False
    #: True when this record attached to another record's in-flight search
    coalesced: bool = False
    #: who submitted (the ``X-Repro-Client`` header; quota bookkeeping)
    client: str = ""
    #: True while this record holds one of its client's quota slots —
    #: flipped off exactly once, at the terminal transition
    counted: bool = field(default=False, repr=False)
    cancel_event: threading.Event = field(default_factory=threading.Event,
                                          repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def wait_seconds(self) -> float | None:
        """Queue wait measured on the monotonic clock."""
        if self._started_monotonic is None:
            return None
        return self._started_monotonic - self._submitted_monotonic

    @property
    def duration_seconds(self) -> float | None:
        """Solve latency measured on the monotonic clock."""
        if self._started_monotonic is None or self._finished_monotonic is None:
            return None
        return self._finished_monotonic - self._started_monotonic

    def mark_running(self) -> None:
        with self._lock:
            if self.status == "queued":
                self.status = "running"
                self.started_at = time.time()  # repro: allow[determinism] display timestamp
                self._started_monotonic = time.monotonic()

    def complete(self, report: SolveReport, *,
                 from_cache: bool = False) -> bool:
        with self._lock:
            if self.finished:
                return False
            self.status = "done"
            self.report = report
            self.from_cache = from_cache
            self.finished_at = time.time()  # repro: allow[determinism] display timestamp
            self._finished_monotonic = time.monotonic()
            return True

    def fail(self, error: str) -> bool:
        with self._lock:
            if self.finished:
                return False
            self.status = "failed"
            self.error = error
            self.finished_at = time.time()  # repro: allow[determinism] display timestamp
            self._finished_monotonic = time.monotonic()
            return True

    def cancel(self) -> bool:
        """Request cancellation; returns False if already finished."""
        with self._lock:
            if self.finished:
                return False
            self.cancel_event.set()
            self.status = "cancelled"
            self.finished_at = time.time()  # repro: allow[determinism] display timestamp
            self._finished_monotonic = time.monotonic()
            return True

    def to_dict(self, *, include_report: bool = True) -> dict[str, Any]:  # repro: allow[serialization] one-way wire snapshot, records are never rebuilt from JSON
        with self._lock:
            out: dict[str, Any] = {
                "id": self.id,
                "solver": self.solver,
                "fingerprint": self.fingerprint,
                "status": self.status,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "wait_seconds": self.wait_seconds,
                "duration_seconds": self.duration_seconds,
                "from_cache": self.from_cache,
                "coalesced": self.coalesced,
                "client": self.client,
                "progress": dict(self.progress) if self.progress else None,
                "error": self.error,
            }
            if include_report:
                out["job"] = self.job.to_dict()
                out["report"] = (self.report.to_dict()
                                 if self.report is not None else None)
            return out


def _new_campaign_id() -> str:
    # repro: allow[determinism] runtime-only handle, never fingerprinted
    return f"camp-{uuid.uuid4().hex[:12]}"


@dataclass
class CampaignRecord:
    """One ``POST /campaigns`` batch: a named list of cell job records.

    The record only *groups* — each cell is an ordinary
    :class:`JobRecord` that went through :meth:`TuningService.submit`,
    so cache hits, coalescing, and cancellation all behave exactly as
    for individually submitted jobs. The cell list is fixed at
    creation; per-cell state lives on the records themselves.
    """

    name: str
    records: list[JobRecord] = field(default_factory=list)
    id: str = field(default_factory=_new_campaign_id)
    created_at: float = field(default_factory=time.time)  # repro: allow[determinism] display timestamp

    @property
    def status(self) -> str:
        """``running`` -> ``failed`` (any bad cell) -> ``done``."""
        statuses = [record.status for record in self.records]
        if any(s not in TERMINAL_STATES for s in statuses):
            return "running"
        if any(s in ("failed", "cancelled") for s in statuses):
            return "failed"
        return "done"

    def counters(self) -> dict[str, int]:
        statuses = [record.status for record in self.records]
        return {
            "cells": len(self.records),
            "done": statuses.count("done"),
            "failed": statuses.count("failed"),
            "cancelled": statuses.count("cancelled"),
            "from_cache": sum(1 for r in self.records if r.from_cache),
            "coalesced": sum(1 for r in self.records if r.coalesced),
        }

    def to_dict(self, *, include_cells: bool = True) -> dict[str, Any]:  # repro: allow[serialization] one-way wire snapshot, records are never rebuilt from JSON
        out: dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "created_at": self.created_at,
            "status": self.status,
            "counters": self.counters(),
        }
        if include_cells:
            out["cells"] = [record.to_dict(include_report=False)
                            for record in self.records]
        return out


class InFlight:
    """One running search shared by every coalesced submission.

    The first record for a ``(solver, fingerprint)`` key creates the
    flight and a worker starts solving; later identical submissions
    :meth:`attach` instead of searching again. The search is cancelled
    only when *every* attached record asked for cancellation.
    """

    def __init__(self, key: tuple[str, str], record: JobRecord) -> None:
        self.key = key
        self._lock = threading.Lock()
        self._records: list[JobRecord] = [record]
        self._running = False

    def attach(self, record: JobRecord) -> None:
        with self._lock:
            self._records.append(record)
            running = self._running
        if running:
            # the search started before this record coalesced on: its
            # lifecycle must still read queued -> running -> terminal
            record.mark_running()

    def mark_running(self) -> None:
        """Flip the flight to running and every attached record with it."""
        with self._lock:
            self._running = True
            records = list(self._records)
        for record in records:
            record.mark_running()

    def records(self) -> list[JobRecord]:
        with self._lock:
            return list(self._records)

    def cancelled(self) -> bool:
        """True once all attached records requested cancellation."""
        records = self.records()
        return bool(records) and all(
            r.cancel_event.is_set() for r in records)


class ServiceMetrics:
    """Thread-safe counters surfaced at ``GET /metrics``.

    ``cache_hits`` / ``cache_misses`` / ``coalesced`` are the proof
    obligations of the service: a repeated job after completion must
    bump ``cache_hits`` (no new search), and concurrent identical jobs
    must bump ``coalesced`` while ``solver_invocations`` rises once.
    """

    _COUNTERS = (
        "jobs_submitted", "jobs_completed", "jobs_failed", "jobs_cancelled",
        "cache_hits", "cache_misses", "coalesced", "solver_invocations",
        "campaigns_submitted", "campaign_cells",
        "rejected_queue", "rejected_quota",
        # elastic re-tuning (POST /replan): warm means an incumbent plan
        # was found and seeded the search; within_budget/budget_expired
        # split how the HTTP exchange resolved against its latency budget
        "replan_requests", "replan_warm", "replan_cold_fallback",
        "replan_cache_hits", "replan_within_budget", "replan_budget_expired",
    )
    #: prune-and-memoize counters accumulated from each completed
    #: search's ``SolveReport.search_stats`` (cache hits excluded — no
    #: search ran)
    _SEARCH_COUNTERS = (
        "cells_total", "cells_explored", "cells_pruned", "cells_infeasible",
        "configs_evaluated", "configs_prefiltered",
        "memo_hits", "memo_misses",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = dict.fromkeys(self._COUNTERS, 0)
        self._search: dict[str, int] = dict.fromkeys(self._SEARCH_COUNTERS, 0)
        self._solve_seconds_total = 0.0
        self._solve_count = 0
        #: sliding windows of per-job end-to-end latency / queue wait
        self._latency: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._wait: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._started_at = time.time()  # repro: allow[determinism] display timestamp
        self._started_monotonic = time.monotonic()

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            if name not in self._counts:
                raise KeyError(f"unknown metric {name!r}")
            self._counts[name] += n

    def observe_solve(self, seconds: float) -> None:
        with self._lock:
            self._solve_seconds_total += float(seconds)
            self._solve_count += 1

    def observe_job(self, wait_seconds: float | None,
                    duration_seconds: float | None) -> None:
        """Record one finished job's queue wait + end-to-end latency."""
        if duration_seconds is None:
            return
        wait = float(wait_seconds) if wait_seconds is not None else 0.0
        with self._lock:
            self._wait.append(wait)
            self._latency.append(wait + float(duration_seconds))

    def avg_solve_seconds(self) -> float:
        """Mean solver wall-time so far (0.0 before the first solve)."""
        with self._lock:
            if not self._solve_count:
                return 0.0
            return self._solve_seconds_total / self._solve_count

    def observe_search(self, search_stats: Mapping[str, Any]) -> None:
        """Fold one report's prune/memo counters into the ledger."""
        if not search_stats:
            return
        with self._lock:
            for name in self._SEARCH_COUNTERS:
                value = search_stats.get(name, 0)
                if isinstance(value, (int, float)):
                    self._search[name] += int(value)

    def snapshot(self, *, in_flight: int = 0, tracked: int = 0,
                 workers: int = 0, campaigns_tracked: int = 0,
                 worker_tier: Mapping[str, Any] | None = None,
                 max_pending: int = 0, quota: int = 0) -> dict[str, Any]:
        with self._lock:
            counts = dict(self._counts)
            search = dict(self._search)
            total = self._solve_seconds_total
            solves = self._solve_count
            latency_samples = list(self._latency)
            wait_samples = list(self._wait)
            started_at = self._started_at
            # monotonic math: immune to NTP steps that would skew or
            # even negate a wall-clock uptime
            uptime = time.monotonic() - self._started_monotonic
        latency = percentiles(latency_samples)
        wait = percentiles(wait_samples)
        return {
            "uptime_seconds": uptime,
            "started_at": started_at,
            "workers": workers,
            "jobs": {
                "submitted": counts["jobs_submitted"],
                "completed": counts["jobs_completed"],
                "failed": counts["jobs_failed"],
                "cancelled": counts["jobs_cancelled"],
                "coalesced": counts["coalesced"],
                "in_flight": in_flight,
                "tracked": tracked,
            },
            "cache": {
                "hits": counts["cache_hits"],
                "misses": counts["cache_misses"],
            },
            "campaigns": {
                "submitted": counts["campaigns_submitted"],
                "cells": counts["campaign_cells"],
                "tracked": campaigns_tracked,
            },
            "solver": {
                "invocations": counts["solver_invocations"],
                "solve_seconds_total": total,
                "solve_seconds_avg": (total / solves) if solves else 0.0,
            },
            "admission": {
                "max_pending": max_pending,
                "quota": quota,
                "queue_depth": in_flight,
                "rejected_queue": counts["rejected_queue"],
                "rejected_quota": counts["rejected_quota"],
            },
            "replan": {
                "requests": counts["replan_requests"],
                "warm": counts["replan_warm"],
                "cold_fallback": counts["replan_cold_fallback"],
                "cache_hits": counts["replan_cache_hits"],
                "within_budget": counts["replan_within_budget"],
                "budget_expired": counts["replan_budget_expired"],
            },
            "latency": {
                "samples": len(latency_samples),
                "p50": latency["p50"],
                "p95": latency["p95"],
                "p99": latency["p99"],
                "wait_p50": wait["p50"],
                "wait_p95": wait["p95"],
                "wait_p99": wait["p99"],
            },
            "worker_tier": dict(worker_tier) if worker_tier else
            {"mode": "thread", "workers": workers, "restarts": 0},
            "search": search,
        }
