"""Solver worker tiers: in-process threads or routed worker processes.

The daemon front (submit / coalesce / plan cache, see ``server.py``) is
tier-agnostic: once a ``(solver, fingerprint)`` key misses the cache
and is not already in flight, the search is handed to a *worker tier*:

* :class:`ThreadWorkerTier` — today's behavior: the search runs on the
  calling pool thread via :func:`repro.api.solve`. Cheap, shares the
  process-wide menu memo, but the GIL serializes the search hot path.
* :class:`ProcessWorkerTier` — ``N`` single-process pools
  (``spawn`` start method: forking a threaded asyncio daemon is
  deadlock-prone). Searches run on real cores; results come back as
  serialized :class:`~repro.api.SolveReport` dicts.

Routing is **fingerprint-consistent**: worker index =
``sha256(solver:fingerprint) % N``. Coalescing already collapses
identical in-flight submissions *before* the tier sees them, so the
tier never runs the same key twice concurrently; pinning repeats of a
fingerprint to the same process additionally keeps that worker's
process-local menu memo warm for re-searches of the same workload.

Chaos semantics: a worker process dying mid-search surfaces as
:class:`concurrent.futures.process.BrokenProcessPool`. The tier
retires the broken pool, respawns the slot lazily, and retries the
search up to ``retries`` times before raising :class:`WorkerDiedError`
— so one ``kill -9`` fails (or transparently retries) exactly the jobs
routed to that worker and never wedges the queue.

Cancellation in the process tier is dispatch-side: ``should_stop`` is
polled while awaiting the worker future. A search already running in a
worker process finishes in the background (its report still lands in
the shared plan cache); there is no cross-process mid-search signal.
For the same reason ``progress`` callbacks are not relayed.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from collections.abc import Callable
from concurrent.futures import Future
from concurrent.futures import ProcessPoolExecutor  # repro: allow[registry-discipline] stdlib pool, not the campaign executor of the same name
from concurrent.futures import TimeoutError as _FutureTimeoutError
from typing import Any

from repro.api import PlanCache, SolveReport, TuningJob, solve
from repro.core.tuner import SearchCancelled

try:  # BrokenProcessPool moved around across 3.x; be explicit
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - py3.10+ always has it
    from concurrent.futures import (  # type: ignore[assignment]
        BrokenExecutor as BrokenProcessPool,
    )

__all__ = ["ProcessWorkerTier", "ThreadWorkerTier", "WorkerDiedError",
           "make_tier"]

#: injected solver entry point — must match :func:`repro.api.solve`
SolveFn = Callable[..., SolveReport]
#: per-cell progress relay: ``progress(done, total)``
ProgressFn = Callable[[int, int], None]
#: cooperative cancellation poll: True means stop searching
StopFn = Callable[[], bool]


class WorkerDiedError(RuntimeError):
    """A routed worker process died mid-search (retries exhausted)."""


def _process_solve(solver: str, job_dict: dict[str, Any],
                   cache_dir: str | None) -> tuple[int, dict[str, Any], bool]:
    """Worker-process body: solve one job, return a picklable triple.

    Mirrors the campaigns process-pool executor's cache-sharing
    pattern: the worker opens the *same on-disk* :class:`PlanCache`
    directory as the daemon, so its stores are immediately visible to
    the front (atomic tmp-file writes make this safe concurrently).
    """
    job = TuningJob.from_dict(job_dict)
    cache = PlanCache(cache_dir) if cache_dir is not None else None
    report = solve(job, solver, cache=cache)
    return os.getpid(), report.to_dict(), bool(report.from_cache)


def _process_ping() -> int:
    """Force a worker process to exist; report its pid."""
    return os.getpid()


class ThreadWorkerTier:
    """Run searches inline on the caller's (pool) thread.

    This is the pre-existing single-process mode: the service's
    ``ThreadPoolExecutor`` thread calls straight into
    :func:`repro.api.solve` (or the injected ``solve_fn``), with full
    ``progress`` / ``should_stop`` hook fidelity.
    """

    mode = "thread"

    def __init__(self, workers: int, *, solve_fn: SolveFn | None = None):
        self.workers = int(workers)
        self._solve: SolveFn = solve_fn if solve_fn is not None else solve

    def run(self, job: TuningJob, solver: str, *,
            cache: PlanCache | None = None,
            progress: ProgressFn | None = None,
            should_stop: StopFn | None = None) -> SolveReport:
        return self._solve(job, solver, cache=cache,
                           progress=progress, should_stop=should_stop)

    def warm(self, timeout: float = 60.0) -> list[int]:
        """Nothing to pre-spawn; searches run in this process."""
        del timeout
        return []

    def worker_pids(self) -> list[int | None]:
        return []

    def stats(self) -> dict[str, Any]:
        return {"mode": self.mode, "workers": self.workers, "restarts": 0}

    def shutdown(self, wait: bool = False) -> None:
        del wait


class ProcessWorkerTier:
    """Route searches onto ``N`` single-process worker pools.

    Each slot is its own one-worker :class:`ProcessPoolExecutor` so
    that (a) routing is strict — a fingerprint always lands on its
    assigned process, keeping per-process memo locality — and (b) a
    crash is contained: only the broken slot respawns, the other
    workers keep their warm state.
    """

    mode = "process"

    def __init__(self, workers: int, *, retries: int = 1,
                 start_method: str = "spawn",
                 poll_interval: float = 0.05):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = int(workers)
        self.retries = int(retries)
        self.poll_interval = float(poll_interval)
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._pools: list[ProcessPoolExecutor | None] = [None] * workers
        self._pids: list[int | None] = [None] * workers
        self._restarts = 0

    # -- routing -----------------------------------------------------------

    def route(self, solver: str, fingerprint: str) -> int:
        """Consistent worker index for a ``(solver, fingerprint)`` key."""
        digest = hashlib.sha256(
            f"{solver}:{fingerprint}".encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.workers

    # -- slot management ---------------------------------------------------

    def _pool_for(self, index: int) -> ProcessPoolExecutor:
        with self._lock:
            pool = self._pools[index]
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=1,
                                           mp_context=self._ctx)
                self._pools[index] = pool
            return pool

    def _retire(self, index: int, broken: ProcessPoolExecutor) -> None:
        """Drop a broken slot so the next submit respawns it."""
        with self._lock:
            if self._pools[index] is broken:
                self._pools[index] = None
                self._pids[index] = None
                self._restarts += 1
        broken.shutdown(wait=False, cancel_futures=True)

    # -- search ------------------------------------------------------------

    def run(self, job: TuningJob, solver: str, *,
            cache: PlanCache | None = None,
            progress: ProgressFn | None = None,
            should_stop: StopFn | None = None) -> SolveReport:
        del progress  # no cross-process progress channel (see module doc)
        if should_stop is not None and should_stop():
            raise SearchCancelled("cancelled before dispatch to a worker")
        cache_dir = str(cache.root) if cache is not None else None
        index = self.route(solver, job.fingerprint())
        attempts = 0
        while True:
            attempts += 1
            pool = self._pool_for(index)
            try:
                future = pool.submit(_process_solve, solver,
                                     job.to_dict(), cache_dir)
                pid, data, from_cache = self._await(future, should_stop)
            except (BrokenProcessPool, RuntimeError) as exc:
                # BrokenProcessPool: the worker died mid-search.
                # RuntimeError: the pool broke between route and submit.
                if isinstance(exc, SearchCancelled):
                    raise
                self._retire(index, pool)
                if attempts > self.retries:
                    raise WorkerDiedError(
                        f"solver worker {index} died mid-search "
                        f"({attempts} attempt(s)): {exc}") from exc
                continue
            with self._lock:
                self._pids[index] = pid
            report = SolveReport.from_dict(data)
            report.from_cache = from_cache
            return report

    def _await(self, future: Future[tuple[int, dict[str, Any], bool]],
               should_stop: StopFn | None) -> tuple[int, dict[str, Any], bool]:
        """Poll the worker future, honoring dispatch-side cancellation."""
        while True:
            try:
                return future.result(timeout=self.poll_interval)
            except _FutureTimeoutError:
                if should_stop is not None and should_stop():
                    # the worker keeps searching and will still store
                    # its report in the shared plan cache; only this
                    # dispatch abandons the wait
                    raise SearchCancelled(
                        "cancelled while awaiting a worker process"
                    ) from None

    # -- introspection / lifecycle ----------------------------------------

    def warm(self, timeout: float = 60.0) -> list[int]:
        """Spawn every worker up front; returns their pids.

        Called before the daemon reports ready so that the first real
        request never pays process-spawn latency (which would pollute
        the load harness's latency percentiles).
        """
        futures = [(index, self._pool_for(index).submit(_process_ping))
                   for index in range(self.workers)]
        deadline = time.monotonic() + timeout
        pids: list[int] = []
        for index, future in futures:
            remaining = max(0.1, deadline - time.monotonic())
            pid = future.result(timeout=remaining)
            with self._lock:
                self._pids[index] = pid
            pids.append(pid)
        return pids

    def worker_pids(self) -> list[int | None]:
        """Last-known pid per slot (``None`` until first contact)."""
        with self._lock:
            return list(self._pids)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            restarts = self._restarts
        return {"mode": self.mode, "workers": self.workers,
                "restarts": restarts}

    def shutdown(self, wait: bool = False) -> None:
        with self._lock:
            pools = [pool for pool in self._pools if pool is not None]
            self._pools = [None] * self.workers
            self._pids = [None] * self.workers
        for pool in pools:
            pool.shutdown(wait=wait, cancel_futures=True)


def make_tier(mode: str, workers: int, *, solve_fn: SolveFn | None = None,
              retries: int = 1) -> "ThreadWorkerTier | ProcessWorkerTier":
    """Build the worker tier for ``repro serve --worker-mode <mode>``."""
    if mode == "thread":
        return ThreadWorkerTier(workers, solve_fn=solve_fn)
    if mode == "process":
        if solve_fn is not None:
            raise ValueError(
                "solve_fn injection requires worker_mode='thread' "
                "(a callable cannot cross the process boundary)")
        return ProcessWorkerTier(workers, retries=retries)
    raise ValueError(
        f"unknown worker mode {mode!r}; expected 'thread' or 'process'")
