"""Symbolic expression engine (paper Section 5.2).

Public surface:

* expression nodes and constructors (:class:`Sym`, :func:`smax`,
  :func:`ceil_div`, ...),
* :func:`evaluate` / :func:`compile_expr` for (batched) numeric
  evaluation,
* :class:`SymbolManager` / :data:`global_symbol_manager` for declaring
  symbols with concrete defaults.
"""

from .expr import (
    Add,
    Ceil,
    Cmp,
    Const,
    Div,
    EqCmp,
    Expr,
    ExprLike,
    Floor,
    FloorDiv,
    Ge,
    Gt,
    Le,
    Lt,
    Max,
    Min,
    Mod,
    Mul,
    Piecewise,
    Pow,
    Sym,
    align_up,
    as_expr,
    ceil_div,
    free_symbols,
    smax,
    smin,
    substitute,
)
from .evaluate import (
    ENGINES,
    CompiledExpr,
    EvaluationError,
    compile_expr,
    evaluate,
    validate_engine,
)
from .simplify import collect_terms, count_nodes, simplify
from .symbols import SymbolManager, global_symbol_manager

__all__ = [
    "Add",
    "Ceil",
    "Cmp",
    "CompiledExpr",
    "Const",
    "Div",
    "ENGINES",
    "EqCmp",
    "EvaluationError",
    "Expr",
    "ExprLike",
    "Floor",
    "FloorDiv",
    "Ge",
    "Gt",
    "Le",
    "Lt",
    "Max",
    "Min",
    "Mod",
    "Mul",
    "Piecewise",
    "Pow",
    "Sym",
    "SymbolManager",
    "align_up",
    "as_expr",
    "ceil_div",
    "collect_terms",
    "compile_expr",
    "count_nodes",
    "evaluate",
    "free_symbols",
    "global_symbol_manager",
    "simplify",
    "smax",
    "smin",
    "substitute",
    "validate_engine",
]
