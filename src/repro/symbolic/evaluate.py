"""Batched evaluation of symbolic expressions.

The paper's key performance trick (Section 5.2) is that after a single
symbolic "simulation" pass, evaluating a candidate configuration reduces
to substituting values into closed-form expressions — and thousands of
candidates can be evaluated at once by substituting *numpy arrays* for
the optimization symbols.

Two evaluation paths are provided:

* :func:`evaluate` — a direct recursive interpreter, convenient for
  one-off queries and tests.
* :func:`compile_expr` — code generation: the expression DAG is
  flattened into a sequence of numpy statements (with common
  sub-expressions computed once) and compiled to a Python function.
  This is what the tuners use for batched evaluation.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Sequence, Union

import numpy as np

from .expr import (
    Add,
    Ceil,
    Cmp,
    Const,
    Div,
    Expr,
    Floor,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Piecewise,
    Pow,
    Sym,
    free_symbols,
)

ArrayLike = Union[int, float, np.ndarray]

__all__ = [
    "ENGINES",
    "evaluate",
    "compile_expr",
    "CompiledExpr",
    "EvaluationError",
    "validate_engine",
]

#: Recognised cost-model evaluation engines. ``vectorized`` runs the
#: compiled numpy closures over whole config menus at once; ``interpreted``
#: walks the raw expression trees one config at a time and exists as the
#: reference path for differential testing.
ENGINES = ("vectorized", "interpreted")


def validate_engine(engine: str) -> str:
    """Return ``engine`` if it names a known evaluation engine."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {list(ENGINES)}"
        )
    return engine


class EvaluationError(RuntimeError):
    """Raised when an expression references a symbol missing from the env."""


def _describe_root(expr: Expr, limit: int = 80) -> str:
    """A short human-readable label for an expression root."""
    text = repr(expr)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


_CMP_FUNCS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


def evaluate(expr: Expr, env: Mapping[str, ArrayLike]) -> ArrayLike:
    """Evaluate ``expr`` with symbol values from ``env``.

    Values may be scalars or numpy arrays; arrays broadcast together,
    enabling batched evaluation of many configurations in one call.
    """
    cache: dict[int, ArrayLike] = {}

    def rec(node: Expr) -> ArrayLike:
        node_id = id(node)
        if node_id in cache:
            return cache[node_id]
        if isinstance(node, Const):
            result: ArrayLike = node.value
        elif isinstance(node, Sym):
            try:
                result = env[node.name]
            except KeyError:
                missing = sorted(free_symbols(expr) - set(env))
                raise EvaluationError(
                    f"missing symbol values {missing} for expression "
                    f"{_describe_root(expr)}; expression needs "
                    f"{sorted(free_symbols(expr))}"
                ) from None
        elif isinstance(node, Add):
            result = rec(node.children[0])
            for child in node.children[1:]:
                result = result + rec(child)
        elif isinstance(node, Mul):
            result = rec(node.children[0])
            for child in node.children[1:]:
                result = result * rec(child)
        elif isinstance(node, Div):
            result = np.true_divide(rec(node.left), rec(node.right))
        elif isinstance(node, FloorDiv):
            result = np.floor_divide(rec(node.left), rec(node.right))
        elif isinstance(node, Mod):
            result = np.mod(rec(node.left), rec(node.right))
        elif isinstance(node, Pow):
            result = np.power(rec(node.left), rec(node.right))
        elif isinstance(node, Ceil):
            result = np.ceil(rec(node.operand))
        elif isinstance(node, Floor):
            result = np.floor(rec(node.operand))
        elif isinstance(node, Max):
            result = rec(node.children[0])
            for child in node.children[1:]:
                result = np.maximum(result, rec(child))
        elif isinstance(node, Min):
            result = rec(node.children[0])
            for child in node.children[1:]:
                result = np.minimum(result, rec(child))
        elif isinstance(node, Cmp):
            result = _CMP_FUNCS[node.op](rec(node.left), rec(node.right))
        elif isinstance(node, Piecewise):
            result = np.where(rec(node.cond), rec(node.then), rec(node.otherwise))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node).__name__}")
        cache[node_id] = result
        return result

    return rec(expr)


class CompiledExpr:
    """A compiled, vectorized form of one or more expressions.

    Calling the object with keyword arguments (scalars or numpy arrays)
    returns the evaluated value, or a tuple of values if multiple
    expressions were compiled together.

    ``used_symbols`` is the subset of ``arg_names`` the expressions
    actually reference. Callers compiling a narrow projection of a wide
    vocabulary (e.g. the memory-only pre-filter over the full analyzer
    symbol set) can consult it to build only the needed columns; the
    unused arguments may be passed as anything cheap (``0.0``).

    Two evaluation entry points share the argument contract:

    * ``__call__`` — the vectorized path: one pass of the generated numpy
      statements over the whole env (scalars or arrays, broadcasting).
    * :meth:`interpret` — the per-config reference path: walks the raw
      expression trees row by row through :func:`evaluate`. Slow by
      design; it anchors the differential tests proving the vectorized
      path is bit-identical.
    """

    def __init__(self, func: Callable, arg_names: tuple[str, ...], n_outputs: int,
                 source: str,
                 used_symbols: frozenset[str] | None = None,
                 exprs: tuple[Expr, ...] = (),
                 single: bool | None = None) -> None:
        self._func = func
        self.arg_names = arg_names
        self.n_outputs = n_outputs
        self.source = source
        self.used_symbols = (frozenset(arg_names) if used_symbols is None
                             else used_symbols)
        self.exprs = exprs
        self._single = n_outputs == 1 if single is None else single

    def _check_env(self, env: Mapping[str, ArrayLike]) -> None:
        missing = [name for name in self.arg_names if name not in env]
        if missing:
            raise EvaluationError(f"missing symbol values: {missing}")

    def __call__(self, **env: ArrayLike) -> Any:
        self._check_env(env)
        args = [env[name] for name in self.arg_names]
        return self._func(*args)

    def interpret(self, **env: ArrayLike) -> Any:
        """Evaluate via the per-row interpreted reference path.

        Each row of the (broadcast) environment is evaluated as an
        independent scalar query against the raw expression trees.  The
        result matches ``__call__`` bit for bit — numpy's elementwise
        ufuncs produce identical IEEE-754 results whether applied to one
        element or a million — which is exactly the property the
        differential test harness asserts.
        """
        self._check_env(env)
        if not self.exprs:
            raise EvaluationError(
                "interpret() needs the raw expression trees; this "
                "CompiledExpr was built without them")
        used = {name: np.asarray(env[name], dtype=float)
                for name in self.arg_names if name in self.used_symbols}
        shapes = [value.shape for value in used.values()]
        shape = np.broadcast_shapes(*shapes) if shapes else ()
        if shape == ():
            scalar_env = {name: float(value) for name, value in used.items()}
            outs = [evaluate(expr, scalar_env) for expr in self.exprs]
        else:
            cols = {name: np.broadcast_to(value, shape).reshape(-1)
                    for name, value in used.items()}
            n = int(np.prod(shape, dtype=int))
            rows: list[list[float]] = [[] for _ in self.exprs]
            for i in range(n):
                row_env = {name: col[i] for name, col in cols.items()}
                for k, expr in enumerate(self.exprs):
                    rows[k].append(evaluate(expr, row_env))
            outs = [np.asarray(values).reshape(shape) for values in rows]
        if self._single:
            return outs[0]
        return tuple(outs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledExpr(args={list(self.arg_names)}, "
            f"outputs={self.n_outputs})"
        )


def _emit(node: Expr, lines: list[str], names: dict[int, str],
          sym_names: dict[str, str]) -> str:
    """Emit numpy statements for ``node``; return its local variable name."""
    node_id = id(node)
    if node_id in names:
        return names[node_id]
    if isinstance(node, Const):
        value = node.value
        if value == math.inf:
            code = "_np.inf"
        elif value == -math.inf:
            code = "(-_np.inf)"
        else:
            code = repr(float(value))
        names[node_id] = code
        return code
    if isinstance(node, Sym):
        names[node_id] = sym_names[node.name]
        return sym_names[node.name]

    children = [_emit(c, lines, names, sym_names) for c in node.children]
    var = f"_v{len(lines)}"
    if isinstance(node, Add):
        rhs = " + ".join(children)
    elif isinstance(node, Mul):
        rhs = " * ".join(children)
    elif isinstance(node, Div):
        rhs = f"{children[0]} / {children[1]}"
    elif isinstance(node, FloorDiv):
        rhs = f"_np.floor_divide({children[0]}, {children[1]})"
    elif isinstance(node, Mod):
        rhs = f"_np.mod({children[0]}, {children[1]})"
    elif isinstance(node, Pow):
        rhs = f"_np.power({children[0]}, {children[1]})"
    elif isinstance(node, Ceil):
        rhs = f"_np.ceil({children[0]})"
    elif isinstance(node, Floor):
        rhs = f"_np.floor({children[0]})"
    elif isinstance(node, Max):
        rhs = children[0]
        for child in children[1:]:
            rhs = f"_np.maximum({rhs}, {child})"
    elif isinstance(node, Min):
        rhs = children[0]
        for child in children[1:]:
            rhs = f"_np.minimum({rhs}, {child})"
    elif isinstance(node, Cmp):
        func = {
            "<": "_np.less", "<=": "_np.less_equal", ">": "_np.greater",
            ">=": "_np.greater_equal", "==": "_np.equal", "!=": "_np.not_equal",
        }[node.op]
        rhs = f"{func}({children[0]}, {children[1]})"
    elif isinstance(node, Piecewise):
        rhs = f"_np.where({children[0]}, {children[1]}, {children[2]})"
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown node type {type(node).__name__}")
    lines.append(f"    {var} = {rhs}")
    names[node_id] = var
    return var


def compile_expr(exprs: Union[Expr, Sequence[Expr]],
                 arg_names: Sequence[str] | None = None) -> CompiledExpr:
    """Compile one or more expressions into a fast vectorized function.

    ``arg_names`` fixes the argument order; by default the union of free
    symbols across all expressions, sorted alphabetically. Sharing a
    single :class:`CompiledExpr` for related expressions (e.g. runtime
    and memory of the same stage) reuses common sub-expressions.
    """
    single = isinstance(exprs, Expr)
    expr_list: list[Expr] = [exprs] if single else list(exprs)
    if not expr_list:
        raise ValueError("no expressions to compile")

    all_syms: set[str] = set()
    for expr in expr_list:
        all_syms |= free_symbols(expr)
    if arg_names is None:
        arg_names = tuple(sorted(all_syms))
    else:
        arg_names = tuple(arg_names)

    sym_names = {name: f"_a{i}" for i, name in enumerate(arg_names)}
    lines: list[str] = []
    names: dict[int, str] = {}
    out_vars = [_emit(expr, lines, names, sym_names) for expr in expr_list]

    params = ", ".join(sym_names[name] for name in arg_names)
    ret = out_vars[0] if single else "(" + ", ".join(out_vars) + ("," if len(out_vars) == 1 else "") + ")"
    source = f"def _compiled({params}):\n"
    source += "\n".join(lines) + ("\n" if lines else "")
    source += f"    return {ret}\n"

    namespace: dict = {"_np": np}
    exec(compile(source, "<repro.symbolic.compiled>", "exec"), namespace)
    func = namespace["_compiled"]
    return CompiledExpr(func, arg_names, len(expr_list), source,
                        used_symbols=frozenset(all_syms) & set(arg_names),
                        exprs=tuple(expr_list), single=single)
