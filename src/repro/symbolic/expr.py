"""Symbolic expression DAG used throughout the Mist reproduction.

This module implements the expression layer of the paper's symbolic
analysis system (Section 5.2): immutable expression nodes over named
symbols, with constant folding at construction time, structural
equality, substitution, and (in :mod:`repro.symbolic.evaluate`) batched
numpy evaluation.

The engine intentionally supports only the operations the performance
and memory analyzers need — arithmetic, integer division/modulo,
ceil/floor, min/max, and piecewise selection — which keeps evaluation
fast and the implementation auditable.

Expressions are built either from :class:`Sym` leaves (usually created
through :class:`repro.symbolic.symbols.SymbolManager`) or by combining
existing expressions with Python operators::

    b, s, h = Sym("b"), Sym("s"), Sym("h")
    act_bytes = 2 * b * s * h          # Mul(2, b, s, h)
    per_rank = ceil_div(act_bytes, 8)  # ceil(act_bytes / 8)

``==`` on expressions is *structural* equality (returns ``bool``); use
:func:`Le`, :func:`Lt`, :func:`Ge`, :func:`Gt`, :func:`EqCmp` to build
symbolic comparisons for :class:`Piecewise` conditions.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Union

Number = Union[int, float]
ExprLike = Union["Expr", int, float]

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "Add",
    "Mul",
    "Div",
    "FloorDiv",
    "Mod",
    "Pow",
    "Ceil",
    "Floor",
    "Max",
    "Min",
    "Cmp",
    "Piecewise",
    "as_expr",
    "ceil_div",
    "align_up",
    "smax",
    "smin",
    "Le",
    "Lt",
    "Ge",
    "Gt",
    "EqCmp",
    "free_symbols",
    "substitute",
]


def as_expr(value: ExprLike) -> "Expr":
    """Coerce a Python number into a :class:`Const`; pass through exprs."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to a symbolic expression")


class Expr:
    """Base class for all symbolic expression nodes.

    Nodes are immutable; ``children`` holds sub-expressions and
    ``_key()`` is the structural identity used for ``__eq__``/hash.
    """

    __slots__ = ("_hash",)

    children: tuple = ()

    def _key(self) -> tuple:
        return (type(self).__name__, self.children)

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
        return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            if isinstance(other, (int, float)):
                return isinstance(self, Const) and self.value == other
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- arithmetic operators -------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Add.make(self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add.make(as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Add.make(self, Mul.make(Const(-1), as_expr(other)))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Add.make(as_expr(other), Mul.make(Const(-1), self))

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul.make(self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul.make(as_expr(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return Div.make(self, as_expr(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return Div.make(as_expr(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(self, as_expr(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(as_expr(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod.make(self, as_expr(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return Mod.make(as_expr(other), self)

    def __pow__(self, other: ExprLike) -> "Expr":
        return Pow.make(self, as_expr(other))

    def __neg__(self) -> "Expr":
        return Mul.make(Const(-1), self)

    def __pos__(self) -> "Expr":
        return self

    # -- introspection --------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return isinstance(self, Const)

    def constant_value(self) -> Number:
        """Return the numeric value if this expression is a constant."""
        if isinstance(self, Const):
            return self.value
        raise ValueError(f"{self!r} is not a constant expression")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_str()

    def to_str(self) -> str:
        raise NotImplementedError


class Const(Expr):
    """A numeric literal."""

    __slots__ = ("value",)
    children = ()

    def __init__(self, value: Number) -> None:
        if isinstance(value, float) and value.is_integer() and abs(value) < 2**52:
            value = int(value)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: Any) -> None:  # immutability guard
        raise AttributeError("Const is immutable")

    def _key(self) -> tuple:
        return ("Const", self.value)

    def to_str(self) -> str:
        return repr(self.value)


class Sym(Expr):
    """A named free symbol.

    ``integer``/``positive`` are advisory assumptions used by
    simplification (e.g. ``ceil(x) == x`` for integer ``x``).
    """

    __slots__ = ("name", "integer", "positive")
    children = ()

    def __init__(self, name: str, integer: bool = False, positive: bool = True) -> None:
        if not name or not isinstance(name, str):
            raise ValueError("symbol name must be a non-empty string")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "integer", bool(integer))
        object.__setattr__(self, "positive", bool(positive))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Sym is immutable")

    def _key(self) -> tuple:
        return ("Sym", self.name)

    def to_str(self) -> str:
        return self.name


class _NAry(Expr):
    """Shared implementation for flattening, constant-folding n-ary ops."""

    __slots__ = ("children",)

    IDENTITY: Number = 0

    def __init__(self, children: Iterable[Expr]) -> None:
        object.__setattr__(self, "children", tuple(children))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    @classmethod
    def _fold(cls, values: Iterable[Number]) -> Number:
        raise NotImplementedError

    @classmethod
    def make(cls, *args: Expr) -> Expr:
        flat: list[Expr] = []
        const_acc: list[Number] = []
        for arg in args:
            if isinstance(arg, cls):
                for child in arg.children:
                    if isinstance(child, Const):
                        const_acc.append(child.value)
                    else:
                        flat.append(child)
            elif isinstance(arg, Const):
                const_acc.append(arg.value)
            else:
                flat.append(arg)
        folded = cls._fold(const_acc) if const_acc else cls.IDENTITY
        return cls._finish(flat, folded)

    @classmethod
    def _finish(cls, flat: list[Expr], folded: Number) -> Expr:
        raise NotImplementedError


class Add(_NAry):
    """n-ary sum with constant folding and flattening."""

    __slots__ = ()
    IDENTITY = 0

    @classmethod
    def _fold(cls, values: Iterable[Number]) -> Number:
        return sum(values)

    @classmethod
    def _finish(cls, flat: list[Expr], folded: Number) -> Expr:
        if not flat:
            return Const(folded)
        if folded != 0:
            flat = flat + [Const(folded)]
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def to_str(self) -> str:
        return "(" + " + ".join(c.to_str() for c in self.children) + ")"


class Mul(_NAry):
    """n-ary product with constant folding, flattening and zero absorption."""

    __slots__ = ()
    IDENTITY = 1

    @classmethod
    def _fold(cls, values: Iterable[Number]) -> Number:
        return math.prod(values)

    @classmethod
    def _finish(cls, flat: list[Expr], folded: Number) -> Expr:
        if folded == 0:
            return Const(0)
        if not flat:
            return Const(folded)
        if folded != 1:
            flat = [Const(folded)] + flat
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def to_str(self) -> str:
        return "(" + " * ".join(c.to_str() for c in self.children) + ")"


class _Binary(Expr):
    __slots__ = ("children",)

    def __init__(self, left: Expr, right: Expr) -> None:
        object.__setattr__(self, "children", (left, right))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    @property
    def left(self) -> Expr:
        return self.children[0]

    @property
    def right(self) -> Expr:
        return self.children[1]


class Div(_Binary):
    """True division."""

    __slots__ = ()

    @classmethod
    def make(cls, left: Expr, right: Expr) -> Expr:
        if isinstance(right, Const):
            if right.value == 0:
                raise ZeroDivisionError("symbolic division by constant zero")
            if right.value == 1:
                return left
            if isinstance(left, Const):
                value = left.value / right.value
                if isinstance(left.value, int) and isinstance(right.value, int) and left.value % right.value == 0:
                    return Const(left.value // right.value)
                return Const(value)
        if isinstance(left, Const) and left.value == 0:
            return Const(0)
        return cls(left, right)

    def to_str(self) -> str:
        return f"({self.left.to_str()} / {self.right.to_str()})"


class FloorDiv(_Binary):
    """Integer floor division."""

    __slots__ = ()

    @classmethod
    def make(cls, left: Expr, right: Expr) -> Expr:
        if isinstance(right, Const):
            if right.value == 0:
                raise ZeroDivisionError("symbolic floordiv by constant zero")
            if isinstance(left, Const):
                return Const(left.value // right.value)
            if right.value == 1:
                return Floor.make(left)
        if isinstance(left, Const) and left.value == 0:
            return Const(0)
        return cls(left, right)

    def to_str(self) -> str:
        return f"({self.left.to_str()} // {self.right.to_str()})"


class Mod(_Binary):
    """Modulo."""

    __slots__ = ()

    @classmethod
    def make(cls, left: Expr, right: Expr) -> Expr:
        if isinstance(right, Const):
            if right.value == 0:
                raise ZeroDivisionError("symbolic mod by constant zero")
            if right.value == 1:
                return Const(0)
            if isinstance(left, Const):
                return Const(left.value % right.value)
        if isinstance(left, Const) and left.value == 0:
            return Const(0)
        return cls(left, right)

    def to_str(self) -> str:
        return f"({self.left.to_str()} % {self.right.to_str()})"


class Pow(_Binary):
    """Exponentiation; only used with small constant exponents in practice."""

    __slots__ = ()

    @classmethod
    def make(cls, base: Expr, exp: Expr) -> Expr:
        if isinstance(exp, Const):
            if exp.value == 0:
                return Const(1)
            if exp.value == 1:
                return base
            if isinstance(base, Const):
                return Const(base.value**exp.value)
        if isinstance(base, Const) and base.value in (0, 1):
            return base
        return cls(base, exp)

    def to_str(self) -> str:
        return f"({self.left.to_str()} ** {self.right.to_str()})"


class _Unary(Expr):
    __slots__ = ("children",)

    def __init__(self, operand: Expr) -> None:
        object.__setattr__(self, "children", (operand,))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    @property
    def operand(self) -> Expr:
        return self.children[0]


def _is_integer_valued(expr: Expr) -> bool:
    """Best-effort static check that ``expr`` always takes integer values."""
    if isinstance(expr, Const):
        return isinstance(expr.value, int)
    if isinstance(expr, Sym):
        return expr.integer
    if isinstance(expr, (Add, Mul)):
        return all(_is_integer_valued(c) for c in expr.children)
    if isinstance(expr, (FloorDiv, Ceil, Floor)):
        return True
    if isinstance(expr, Mod):
        return all(_is_integer_valued(c) for c in expr.children)
    if isinstance(expr, (Max, Min)):
        return all(_is_integer_valued(c) for c in expr.children)
    return False


class Ceil(_Unary):
    """Ceiling to the nearest integer."""

    __slots__ = ()

    @classmethod
    def make(cls, operand: Expr) -> Expr:
        if isinstance(operand, Const):
            return Const(math.ceil(operand.value))
        if _is_integer_valued(operand):
            return operand
        return cls(operand)

    def to_str(self) -> str:
        return f"ceil({self.operand.to_str()})"


class Floor(_Unary):
    """Floor to the nearest integer."""

    __slots__ = ()

    @classmethod
    def make(cls, operand: Expr) -> Expr:
        if isinstance(operand, Const):
            return Const(math.floor(operand.value))
        if _is_integer_valued(operand):
            return operand
        return cls(operand)

    def to_str(self) -> str:
        return f"floor({self.operand.to_str()})"


class Max(_NAry):
    """n-ary maximum."""

    __slots__ = ()
    IDENTITY = -math.inf

    @classmethod
    def _fold(cls, values: Iterable[Number]) -> Number:
        return max(values)

    @classmethod
    def _finish(cls, flat: list[Expr], folded: Number) -> Expr:
        if not flat:
            return Const(folded)
        # Deduplicate structurally identical branches.
        unique: list[Expr] = []
        seen = set()
        for item in flat:
            key = item._key()
            if key not in seen:
                seen.add(key)
                unique.append(item)
        if folded != -math.inf:
            unique.append(Const(folded))
        if len(unique) == 1:
            return unique[0]
        return cls(unique)

    def to_str(self) -> str:
        return "max(" + ", ".join(c.to_str() for c in self.children) + ")"


class Min(_NAry):
    """n-ary minimum."""

    __slots__ = ()
    IDENTITY = math.inf

    @classmethod
    def _fold(cls, values: Iterable[Number]) -> Number:
        return min(values)

    @classmethod
    def _finish(cls, flat: list[Expr], folded: Number) -> Expr:
        if not flat:
            return Const(folded)
        unique: list[Expr] = []
        seen = set()
        for item in flat:
            key = item._key()
            if key not in seen:
                seen.add(key)
                unique.append(item)
        if folded != math.inf:
            unique.append(Const(folded))
        if len(unique) == 1:
            return unique[0]
        return cls(unique)

    def to_str(self) -> str:
        return "min(" + ", ".join(c.to_str() for c in self.children) + ")"


_CMP_OPS = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "!=": "!="}

_CMP_EVAL = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Cmp(_Binary):
    """A comparison producing a boolean value (used by :class:`Piecewise`)."""

    __slots__ = ("op",)

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        super().__init__(left, right)
        object.__setattr__(self, "op", op)

    def _key(self) -> tuple:
        return ("Cmp", self.op, self.children)

    @classmethod
    def make(cls, op: str, left: Expr, right: Expr) -> Expr:
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(int(_CMP_EVAL[op](left.value, right.value)))
        return cls(op, left, right)

    def to_str(self) -> str:
        return f"({self.left.to_str()} {self.op} {self.right.to_str()})"


def Lt(a: ExprLike, b: ExprLike) -> Expr:
    return Cmp.make("<", as_expr(a), as_expr(b))


def Le(a: ExprLike, b: ExprLike) -> Expr:
    return Cmp.make("<=", as_expr(a), as_expr(b))


def Gt(a: ExprLike, b: ExprLike) -> Expr:
    return Cmp.make(">", as_expr(a), as_expr(b))


def Ge(a: ExprLike, b: ExprLike) -> Expr:
    return Cmp.make(">=", as_expr(a), as_expr(b))


def EqCmp(a: ExprLike, b: ExprLike) -> Expr:
    return Cmp.make("==", as_expr(a), as_expr(b))


class Piecewise(Expr):
    """``then`` if ``cond`` else ``otherwise`` (numpy ``where`` semantics)."""

    __slots__ = ("children",)

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr) -> None:
        object.__setattr__(self, "children", (cond, then, otherwise))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Piecewise is immutable")

    @classmethod
    def make(cls, cond: ExprLike, then: ExprLike, otherwise: ExprLike) -> Expr:
        cond = as_expr(cond)
        then = as_expr(then)
        otherwise = as_expr(otherwise)
        if isinstance(cond, Const):
            return then if cond.value else otherwise
        if then == otherwise:
            return then
        return cls(cond, then, otherwise)

    @property
    def cond(self) -> Expr:
        return self.children[0]

    @property
    def then(self) -> Expr:
        return self.children[1]

    @property
    def otherwise(self) -> Expr:
        return self.children[2]

    def to_str(self) -> str:
        return (
            f"where({self.cond.to_str()}, {self.then.to_str()}, "
            f"{self.otherwise.to_str()})"
        )


# -- convenience constructors -------------------------------------------------


def smax(*args: ExprLike) -> Expr:
    """Symbolic maximum of any number of expressions/numbers."""
    return Max.make(*[as_expr(a) for a in args])


def smin(*args: ExprLike) -> Expr:
    """Symbolic minimum of any number of expressions/numbers."""
    return Min.make(*[as_expr(a) for a in args])


def ceil_div(a: ExprLike, b: ExprLike) -> Expr:
    """``ceil(a / b)`` as a symbolic expression."""
    return Ceil.make(Div.make(as_expr(a), as_expr(b)))


def align_up(x: ExprLike, alignment: ExprLike) -> Expr:
    """Round ``x`` up to the next multiple of ``alignment``."""
    return ceil_div(x, alignment) * as_expr(alignment)


# -- traversal utilities ------------------------------------------------------


def free_symbols(expr: Expr) -> frozenset[str]:
    """Collect the names of all free symbols in ``expr``."""
    out: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Sym):
            out.add(node.name)
        else:
            stack.extend(node.children)
    return frozenset(out)


def substitute(expr: Expr, mapping: Mapping[str, ExprLike]) -> Expr:
    """Replace symbols by name with expressions or numbers.

    Rebuilds the tree through each node's ``make`` constructor so
    constant folding is re-applied — substituting every symbol with a
    number yields a :class:`Const`.
    """
    resolved = {name: as_expr(value) for name, value in mapping.items()}
    cache: dict[int, Expr] = {}

    def rec(node: Expr) -> Expr:
        node_id = id(node)
        if node_id in cache:
            return cache[node_id]
        if isinstance(node, Sym):
            result = resolved.get(node.name, node)
        elif isinstance(node, Const):
            result = node
        else:
            new_children = [rec(c) for c in node.children]
            if all(nc is oc for nc, oc in zip(new_children, node.children)):
                result = node
            elif isinstance(node, (Add, Mul, Max, Min)):
                result = type(node).make(*new_children)
            elif isinstance(node, Cmp):
                result = Cmp.make(node.op, *new_children)
            elif isinstance(node, Piecewise):
                result = Piecewise.make(*new_children)
            elif isinstance(node, (Div, FloorDiv, Mod, Pow)):
                result = type(node).make(*new_children)
            elif isinstance(node, (Ceil, Floor)):
                result = type(node).make(new_children[0])
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node type {type(node).__name__}")
        cache[node_id] = result
        return result

    return rec(expr)
