"""Light-weight simplification passes over expression DAGs.

Construction-time folding in :mod:`repro.symbolic.expr` already handles
constants, identities, and flattening. This module adds passes that are
only worth running once per analyzer output rather than on every node
construction:

* :func:`collect_terms` — merge duplicate additive terms with constant
  coefficients (``x + x + 2*x -> 4*x``).
* :func:`simplify` — fixed-point driver combining the passes.
* :func:`count_nodes` — DAG size metric used in tests and reports.
"""

from __future__ import annotations

from .expr import (
    Add,
    Ceil,
    Cmp,
    Const,
    Div,
    Expr,
    Floor,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Piecewise,
    Pow,
    Sym,
)

__all__ = ["simplify", "collect_terms", "count_nodes"]


def _split_coefficient(term: Expr) -> tuple[float, Expr]:
    """Split ``term`` into (constant coefficient, residual factor)."""
    if isinstance(term, Const):
        return float(term.value), Const(1)
    if isinstance(term, Mul):
        coeff = 1.0
        rest = []
        for factor in term.children:
            if isinstance(factor, Const):
                coeff *= factor.value
            else:
                rest.append(factor)
        if not rest:
            return coeff, Const(1)
        residual = rest[0] if len(rest) == 1 else Mul.make(*rest)
        return coeff, residual
    return 1.0, term


def collect_terms(expr: Expr) -> Expr:
    """Merge structurally identical additive terms within ``Add`` nodes."""

    def rebuild(node: Expr) -> Expr:
        if isinstance(node, (Const, Sym)):
            return node
        new_children = [rebuild(c) for c in node.children]
        if isinstance(node, Add):
            buckets: dict[tuple, tuple[float, Expr]] = {}
            order: list[tuple] = []
            for term in new_children:
                coeff, residual = _split_coefficient(term)
                key = residual._key()
                if key in buckets:
                    prev_coeff, _ = buckets[key]
                    buckets[key] = (prev_coeff + coeff, residual)
                else:
                    buckets[key] = (coeff, residual)
                    order.append(key)
            terms = []
            for key in order:
                coeff, residual = buckets[key]
                if coeff == 0:
                    continue
                terms.append(Mul.make(Const(coeff), residual))
            if not terms:
                return Const(0)
            return Add.make(*terms)
        if isinstance(node, (Mul, Max, Min)):
            return type(node).make(*new_children)
        if isinstance(node, (Div, FloorDiv, Mod, Pow)):
            return type(node).make(*new_children)
        if isinstance(node, (Ceil, Floor)):
            return type(node).make(new_children[0])
        if isinstance(node, Cmp):
            return Cmp.make(node.op, *new_children)
        if isinstance(node, Piecewise):
            return Piecewise.make(*new_children)
        raise TypeError(f"unknown node type {type(node).__name__}")  # pragma: no cover

    return rebuild(expr)


def simplify(expr: Expr, max_rounds: int = 3) -> Expr:
    """Run :func:`collect_terms` to a fixed point (bounded)."""
    current = expr
    for _ in range(max_rounds):
        nxt = collect_terms(current)
        if nxt == current:
            return nxt
        current = nxt
    return current


def count_nodes(expr: Expr) -> int:
    """Number of unique nodes in the expression DAG."""
    seen: set[int] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.children)
    return len(seen)
