"""Symbol management with concrete default bindings.

Mirrors the paper's ``global_symbol_manager`` (Figure 9): symbols are
declared together with representative concrete values so a symbolic
model can always be "concretized" for sanity checks, while analysis
runs on the symbolic form.

Example::

    from repro.symbolic import SymbolManager

    gsm = SymbolManager()
    b, s, h = gsm.symbols("b s h", (4, 2048, 4096), integer=True)
    expr = 2 * b * s * h
    gsm.concretize(expr)   # -> 67108864
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

from .expr import Expr, Number, Sym, as_expr, free_symbols, substitute

__all__ = ["SymbolManager", "global_symbol_manager"]


class SymbolManager:
    """Creates named symbols and tracks their concrete default values."""

    def __init__(self) -> None:
        self._symbols: dict[str, Sym] = {}
        self._defaults: dict[str, Number] = {}

    def symbol(self, name: str, default: Number | None = None, *,
               integer: bool = False, positive: bool = True) -> Sym:
        """Create (or retrieve) a symbol, optionally with a default value."""
        if name in self._symbols:
            sym = self._symbols[name]
            if sym.integer != integer:
                raise ValueError(
                    f"symbol {name!r} already exists with integer={sym.integer}"
                )
        else:
            sym = Sym(name, integer=integer, positive=positive)
            self._symbols[name] = sym
        if default is not None:
            self._defaults[name] = default
        return sym

    def symbols(self, names: Union[str, Sequence[str]],
                defaults: Sequence[Number] | None = None, *,
                integer: bool = False, positive: bool = True) -> tuple[Sym, ...]:
        """Create several symbols at once, e.g. ``symbols("b s h", (4, 128, 12))``."""
        if isinstance(names, str):
            names = names.split()
        if defaults is not None and len(defaults) != len(names):
            raise ValueError(
                f"{len(names)} names but {len(defaults)} default values"
            )
        out = []
        for i, name in enumerate(names):
            default = defaults[i] if defaults is not None else None
            out.append(self.symbol(name, default, integer=integer, positive=positive))
        return tuple(out)

    def __getitem__(self, name: str) -> Sym:
        return self._symbols[name]

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    @property
    def defaults(self) -> dict[str, Number]:
        return dict(self._defaults)

    def set_default(self, name: str, value: Number) -> None:
        if name not in self._symbols:
            raise KeyError(f"unknown symbol {name!r}")
        self._defaults[name] = value

    def concretize(self, expr: Expr,
                   overrides: Mapping[str, Number] | None = None) -> Number:
        """Substitute default (plus override) values; expect a constant result."""
        env = dict(self._defaults)
        if overrides:
            env.update(overrides)
        needed = free_symbols(expr)
        missing = sorted(needed - env.keys())
        if missing:
            raise ValueError(f"no concrete value for symbols: {missing}")
        result = substitute(expr, {name: env[name] for name in needed})
        return result.constant_value()

    def partial(self, expr: Expr, names: Iterable[str]) -> Expr:
        """Substitute defaults for only the given symbols, keep the rest free."""
        mapping = {}
        for name in names:
            if name not in self._defaults:
                raise ValueError(f"no default value for symbol {name!r}")
            mapping[name] = as_expr(self._defaults[name])
        return substitute(expr, mapping)


#: Process-wide manager used by examples and the high-level API, mirroring
#: ``from mist import global_symbol_manager as gsm`` in the paper.
global_symbol_manager = SymbolManager()
