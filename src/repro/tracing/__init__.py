"""Symbolic tracing and inter-layer analysis passes (paper Section 5.2)."""

from .liveness import backward_transient, forward_transient
from .memory import StageMemoryExprs, build_stage_memory
from .runtime import StageRuntimeExprs, build_stage_runtime
from .symbols import (
    ALL_SYMBOLS,
    AO,
    B,
    CKPT,
    CONFIG_SYMBOLS,
    D2H_BW,
    DP,
    DP_BW,
    DP_LAT,
    GACC,
    GO,
    H2D_BW,
    HARDWARE_SYMBOLS,
    HAS_POST,
    HAS_PRE,
    INFLIGHT,
    L,
    OO,
    P2P_BW,
    P2P_LAT,
    S,
    TP,
    TP_BW,
    TP_LAT,
    WO,
    Z1,
    Z2,
    Z3,
)
from .tracer import TracedModel, trace

__all__ = [
    "ALL_SYMBOLS", "AO", "B", "CKPT", "CONFIG_SYMBOLS", "D2H_BW", "DP",
    "DP_BW", "DP_LAT", "GACC", "GO", "H2D_BW", "HARDWARE_SYMBOLS",
    "HAS_POST", "HAS_PRE", "INFLIGHT", "L", "OO", "P2P_BW", "P2P_LAT",
    "S", "StageMemoryExprs", "StageRuntimeExprs", "TP", "TP_BW", "TP_LAT",
    "TracedModel", "WO", "Z1", "Z2", "Z3",
    "backward_transient", "build_stage_memory", "build_stage_runtime",
    "forward_transient", "trace",
]
