"""Liveness analysis on symbolic layer graphs.

"For memory analysis, Mist uses liveness analysis on the symbolic
computational graph. It tracks live tensors during execution and
determines peak memory usage by identifying the maximum memory
allocation at any point." (paper Section 5.2.1)

Two quantities per layer graph:

* :func:`forward_transient` — the peak *working set* of one microbatch's
  forward pass through the layer: at each op, the sum of tensors that
  are live (produced but not yet consumed by their last consumer).
* :func:`backward_transient` — the peak working set of the backward
  sweep, derived from the "fake backward graph": at each op's backward,
  the incoming output-gradient, the produced input-gradients, and the
  activations the op stashed are simultaneously live.

Both are symbolic expressions (``Max`` over per-op partial sums) that
the stage memory model adds on top of resident states.
"""

from __future__ import annotations

from repro.models.ops import LayerGraph
from repro.symbolic import Const, Expr, smax

__all__ = ["forward_transient", "backward_transient"]


def _last_consumers(layer: LayerGraph) -> dict[str, int]:
    """Map tensor name -> index of the op that consumes it last.

    The layer's final output and the external input are pinned live for
    the whole walk (the output feeds the next layer; the input may be a
    residual source owned by the caller).
    """
    last: dict[str, int] = {}
    for idx, op in enumerate(layer.ops):
        for name in op.inputs:
            last[name] = idx
    n = len(layer.ops)
    last[layer.input_tensor] = n  # owned by caller
    last[layer.ops[-1].output] = n  # feeds the next layer
    return last


def forward_transient(layer: LayerGraph) -> Expr:
    """Peak live-tensor bytes while executing the layer forward."""
    last = _last_consumers(layer)
    sizes: dict[str, Expr] = {layer.input_tensor: layer.input_bytes}
    live: dict[str, Expr] = {layer.input_tensor: layer.input_bytes}
    peaks: list[Expr] = []
    for idx, op in enumerate(layer.ops):
        sizes[op.output] = op.output_bytes
        live[op.output] = op.output_bytes
        total: Expr = Const(0)
        for size in live.values():
            total = total + size
        peaks.append(total)
        # free tensors whose last consumer was this op
        for name in list(live):
            if last.get(name, -1) == idx:
                del live[name]
    return smax(*peaks)


def backward_transient(layer: LayerGraph) -> Expr:
    """Peak working set of the backward sweep through the layer.

    For each op (walked in reverse), its backward holds: the gradient
    w.r.t. its output, the gradients it produces for its inputs, and the
    activations it stashed in the forward pass. Stashed activations of
    *other* ops are accounted separately (they are part of the stage's
    saved-activation pool), so only the local stash enters here.
    """
    sizes: dict[str, Expr] = {layer.input_tensor: layer.input_bytes}
    for op in layer.ops:
        sizes[op.output] = op.output_bytes
    peaks: list[Expr] = []
    for op in reversed(layer.ops):
        grad_out = sizes[op.output]
        grad_ins: Expr = Const(0)
        for name in op.inputs:
            grad_ins = grad_ins + sizes[name]
        peaks.append(grad_out + grad_ins + op.saved_bytes)
    return smax(*peaks)
