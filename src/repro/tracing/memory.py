"""Stage-level symbolic memory model (the inter-layer memory pass).

Composes the intra-layer statistics (saved activations, transients,
parameter counts) into peak-memory expressions for one pipeline stage
under every optimization of Table 2:

* ZeRO flags ``z1/z2/z3`` shard optimizer states / gradients / fp16
  parameters across the DP group;
* offloading ratios ``wo/go/oo/ao`` keep that fraction of weights /
  gradients / optimizer states / block activations in host memory,
  at the price of working buffers for the layers in flight;
* ``ckpt`` of the ``l`` layers save only their input; the remaining
  ``l - ckpt`` save full activations;
* under 1F1B, ``inflight`` microbatches' activations coexist.

Mixed-precision Adam accounting: fp16 params (2 B/elem), fp16 grads
(2 B), fp32 master params + momentum + variance (12 B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.graph import ModelGraph
from repro.symbolic import Ceil, Expr, smax, smin

from .liveness import backward_transient, forward_transient
from .symbols import (
    AO,
    CKPT,
    DP,
    GO,
    HAS_POST,
    HAS_PRE,
    INFLIGHT,
    L,
    OO,
    WO,
    Z1,
    Z2,
    Z3,
)

__all__ = ["StageMemoryExprs", "build_stage_memory", "ALLOCATOR_SLACK",
           "FRAMEWORK_OVERHEAD_BYTES"]

FP16_BYTES = 2
GRAD_BYTES = 2
OPT_BYTES = 12  # fp32 master + momentum + variance

#: allocator fragmentation slack on churning (activation/transient)
#: allocations — shared by the analyzer and the execution engine
ALLOCATOR_SLACK = 0.025
#: memory the framework itself pins (NCCL buffers, workspaces); carved
#: out of the device budget on both the predictor and execution side
FRAMEWORK_OVERHEAD_BYTES = int(0.6 * 1024**3)


@dataclass
class StageMemoryExprs:
    """Peak-memory expressions for one pipeline stage (bytes)."""

    peak_fwd: Expr
    peak_bwd: Expr
    # components, exposed for reporting and tests
    params_resident: Expr
    grads_resident: Expr
    opt_resident: Expr
    activations_resident: Expr
    transient_fwd: Expr
    transient_bwd: Expr
    # totals before sharding/offloading (for plan reports)
    param_bytes_total: Expr
    saved_per_microbatch: Expr

    @property
    def peak(self) -> Expr:
        return smax(self.peak_fwd, self.peak_bwd)


def build_stage_memory(graph: ModelGraph) -> StageMemoryExprs:
    """Build the symbolic stage memory model for ``graph``."""
    block, pre, post = graph.block, graph.pre, graph.post

    # -- model states ------------------------------------------------------
    param_elems = (
        L * block.param_count
        + HAS_PRE * pre.param_count
        + HAS_POST * post.param_count
    )
    p16 = FP16_BYTES * param_elems
    g16 = GRAD_BYTES * param_elems
    o32 = OPT_BYTES * param_elems

    # ZeRO sharding: resident fraction is 1/dp for sharded categories.
    z3_frac = Z3 / DP + (1 - Z3)
    z2_frac = Z2 / DP + (1 - Z2)
    z1_frac = Z1 / DP + (1 - Z1)

    block_p16 = FP16_BYTES * block.param_count
    block_g16 = GRAD_BYTES * block.param_count
    block_o32 = OPT_BYTES * block.param_count

    # Offloaded/sharded states need per-layer working buffers: two layers
    # (current + prefetched next) are materialized at full size.
    params_buf = smin(1, Z3 + Ceil.make(WO)) * 2 * block_p16
    grads_buf = smin(1, Z2 + Ceil.make(GO)) * 2 * block_g16
    opt_buf = Ceil.make(OO) * 2 * block_o32 * z1_frac

    params_resident = p16 * z3_frac * (1 - WO) + params_buf
    grads_resident = g16 * z2_frac * (1 - GO) + grads_buf
    opt_resident = o32 * z1_frac * (1 - OO) + opt_buf
    states = params_resident + grads_resident + opt_resident

    # -- activations -------------------------------------------------------
    block_saved_full = block.saved_activation_bytes()
    block_saved_ckpt = block.ckpt_saved_bytes()
    saved_block_mb = (L - CKPT) * block_saved_full + CKPT * block_saved_ckpt
    saved_edges_mb = (
        HAS_PRE * pre.saved_activation_bytes()
        + HAS_POST * post.saved_activation_bytes()
    )
    saved_per_mb = saved_block_mb + saved_edges_mb
    # Activation offloading applies to block activations; pre/post stashes
    # (token ids, logits) stay resident.
    act_resident = INFLIGHT * ((1 - AO) * saved_block_mb + saved_edges_mb)
    # p2p double-buffers at both boundaries
    act_resident = act_resident + 2 * graph.boundary_activation_bytes

    # -- transients --------------------------------------------------------
    t_fwd = smax(
        forward_transient(block),
        HAS_PRE * forward_transient(pre),
        HAS_POST * forward_transient(post),
    )
    # Recomputing a checkpointed layer rematerializes its full stash.
    recompute_extra = smin(CKPT, 1) * (block_saved_full - block_saved_ckpt)
    t_bwd = smax(
        backward_transient(block) + recompute_extra,
        HAS_PRE * backward_transient(pre),
        HAS_POST * backward_transient(post),
    )

    slack = 1.0 + ALLOCATOR_SLACK
    peak_fwd = states + (act_resident + t_fwd) * slack
    peak_bwd = states + (act_resident + t_bwd) * slack

    return StageMemoryExprs(
        peak_fwd=peak_fwd,
        peak_bwd=peak_bwd,
        params_resident=params_resident,
        grads_resident=grads_resident,
        opt_resident=opt_resident,
        activations_resident=act_resident,
        transient_fwd=t_fwd,
        transient_bwd=t_bwd,
        param_bytes_total=p16,
        saved_per_microbatch=saved_per_mb,
    )
