"""Stage-level symbolic runtime model (the inter-layer runtime pass).

Produces per-microbatch *component busy times* for one pipeline stage,
split by phase (forward / backward) and by resource:

* ``comp`` — GPU kernel time;
* ``tp``   — tensor-parallel all-reduces (critical-path collectives);
* ``dp``   — data-parallel collectives (ZeRO-3 parameter all-gathers,
  ZeRO-2/3 per-microbatch gradient reduce-scatter);
* ``p2p``  — pipeline boundary transfers;
* ``d2h``/``h2d`` — offloading traffic over the host link.

One-time volumes appear as ``*_first``/``*_last`` extras: optimizer
state streaming and the repositioned per-layer optimizer step (first
microbatch), and the end-of-iteration gradient synchronization for
ZeRO < 2 (last microbatch).

Downstream consumers combine components differently:

* the **analyzer** (Mist's predictor) feeds the four hardware channels
  ``(comp, tp+dp+p2p, d2h, h2d)`` to the interference model — fully
  overlap-aware (Eq. 5/6);
* the **execution engine** combines components according to the
  executing system's overlap capabilities (Mist overlaps everything;
  Megatron-style systems only overlap the gradient sync), which is what
  makes overlap-unaware systems measurably slower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.comm import (
    all_gather_time,
    all_reduce_time,
    host_copy_time,
    p2p_time,
    reduce_scatter_time,
)
from repro.costmodel.opdb import OperatorDatabase
from repro.models.graph import ModelGraph
from repro.models.ops import LayerGraph
from repro.symbolic import Const, Expr

from .symbols import (
    AO,
    CKPT,
    D2H_BW,
    DP,
    DP_BW,
    DP_LAT,
    GO,
    H2D_BW,
    HAS_POST,
    HAS_PRE,
    L,
    OO,
    P2P_BW,
    P2P_LAT,
    TP,
    TP_BW,
    TP_LAT,
    WO,
    Z1,
    Z2,
    Z3,
)

__all__ = ["StageRuntimeExprs", "build_stage_runtime"]

FP16_BYTES = 2
GRAD_BYTES = 2
OPT_BYTES = 12
#: Adam update arithmetic per parameter (fp32 ops)
ADAM_FLOPS_PER_PARAM = 20.0


@dataclass
class StageRuntimeExprs:
    """Per-microbatch component busy-time expressions for one stage."""

    # steady-state components by phase
    comp_fwd: Expr
    comp_bwd: Expr
    tp_fwd: Expr
    tp_bwd: Expr
    dp_fwd: Expr
    dp_bwd: Expr
    p2p_fwd: Expr
    p2p_bwd: Expr
    d2h_fwd: Expr
    d2h_bwd: Expr
    h2d_fwd: Expr
    h2d_bwd: Expr
    # first-microbatch extras (repositioned optimizer step, Section 5.1)
    comp_first: Expr
    dp_first: Expr
    d2h_first: Expr
    h2d_first: Expr
    # last-microbatch extra (gradient sync for ZeRO < 2)
    dp_last: Expr

    # -- channel views (what the interference model consumes) ---------------

    @property
    def comp_stable(self) -> Expr:
        return self.comp_fwd + self.comp_bwd

    @property
    def nccl_stable(self) -> Expr:
        return (self.tp_fwd + self.tp_bwd + self.dp_fwd + self.dp_bwd
                + self.p2p_fwd + self.p2p_bwd)

    @property
    def d2h_stable(self) -> Expr:
        return self.d2h_fwd + self.d2h_bwd

    @property
    def h2d_stable(self) -> Expr:
        return self.h2d_fwd + self.h2d_bwd

    @property
    def comp_first_extra(self) -> Expr:
        return self.comp_first

    @property
    def nccl_first_extra(self) -> Expr:
        return self.dp_first

    @property
    def d2h_first_extra(self) -> Expr:
        return self.d2h_first

    @property
    def h2d_first_extra(self) -> Expr:
        return self.h2d_first

    @property
    def nccl_last_extra(self) -> Expr:
        return self.dp_last


def _sum_fwd(db: OperatorDatabase, layer: LayerGraph) -> Expr:
    total: Expr = Const(0)
    for op in layer.ops:
        total = total + db.fwd_time(op)
    return total


def _sum_bwd(db: OperatorDatabase, layer: LayerGraph) -> Expr:
    total: Expr = Const(0)
    for op in layer.ops:
        total = total + db.bwd_time(op)
    return total


def _tp_time(bytes_: Expr) -> Expr:
    return all_reduce_time(bytes_, TP, TP_BW, TP_LAT)


def build_stage_runtime(graph: ModelGraph, db: OperatorDatabase) -> StageRuntimeExprs:
    """Build the symbolic per-microbatch runtime model for ``graph``."""
    block, pre, post = graph.block, graph.pre, graph.post

    # -- compute ------------------------------------------------------------
    block_fwd = _sum_fwd(db, block)
    block_bwd = _sum_bwd(db, block)
    comp_fwd = L * block_fwd + HAS_PRE * _sum_fwd(db, pre) \
        + HAS_POST * _sum_fwd(db, post)
    comp_bwd = (
        L * block_bwd
        + CKPT * block_fwd  # recompute checkpointed layers
        + HAS_PRE * _sum_bwd(db, pre)
        + HAS_POST * _sum_bwd(db, post)
    )

    # -- model-state volumes (per TP rank) -----------------------------------
    param_elems = (
        L * block.param_count
        + HAS_PRE * pre.param_count
        + HAS_POST * post.param_count
    )
    p16 = FP16_BYTES * param_elems
    g16 = GRAD_BYTES * param_elems
    z3_frac = Z3 / DP + (1 - Z3)
    z2_frac = Z2 / DP + (1 - Z2)
    z1_frac = Z1 / DP + (1 - Z1)

    # -- tensor-parallel collectives ------------------------------------------
    tp_fwd = (
        L * _tp_time(block.tp_allreduce_fwd_bytes())
        + HAS_PRE * _tp_time(pre.tp_allreduce_fwd_bytes())
        + HAS_POST * _tp_time(post.tp_allreduce_fwd_bytes())
    )
    tp_bwd = (
        L * _tp_time(block.tp_allreduce_bwd_bytes())
        + CKPT * _tp_time(block.tp_allreduce_fwd_bytes())  # recompute comms
        + HAS_PRE * _tp_time(pre.tp_allreduce_bwd_bytes())
        + HAS_POST * _tp_time(post.tp_allreduce_bwd_bytes())
    )

    # -- data-parallel collectives --------------------------------------------
    # ZeRO-3 gathers fp16 params for forward and again for backward.
    z3_gather = all_gather_time(p16, DP, DP_BW, DP_LAT)
    dp_fwd = Z3 * z3_gather
    # ZeRO-2/3 reduce-scatter gradients every microbatch.
    dp_bwd = Z3 * z3_gather + Z2 * reduce_scatter_time(g16, DP, DP_BW, DP_LAT)

    # -- pipeline p2p -----------------------------------------------------------
    boundary = graph.boundary_activation_bytes
    p2p_each = p2p_time(boundary, P2P_BW, P2P_LAT)
    # fwd: recv from previous (unless first), send to next (unless last);
    # bwd: the mirror image.
    p2p_fwd = (2 - HAS_PRE - HAS_POST) * p2p_each
    p2p_bwd = (2 - HAS_PRE - HAS_POST) * p2p_each

    # -- offloading traffic ------------------------------------------------------
    block_saved_full = block.saved_activation_bytes()
    block_saved_ckpt = block.ckpt_saved_bytes()
    saved_block_mb = (L - CKPT) * block_saved_full + CKPT * block_saved_ckpt

    # fwd: activations stream out; offloaded weights stream in.
    d2h_fwd = host_copy_time(AO * saved_block_mb, D2H_BW)
    h2d_fwd = host_copy_time(WO * p16 * z3_frac, H2D_BW)
    # bwd: activations stream back; weights re-fetched; gradients stream
    # out every microbatch (accumulated host-side).
    d2h_bwd = host_copy_time(GO * g16 * z2_frac, D2H_BW)
    h2d_bwd = host_copy_time(AO * saved_block_mb + WO * p16 * z3_frac, H2D_BW)

    # -- first-microbatch extras --------------------------------------------------
    # Offloaded optimizer shards live permanently in host memory and are
    # updated by a CPU Adam (ZeRO-Offload): per iteration only the fp16
    # gradients travel down and the updated fp16 params travel back up.
    # (``o32`` itself never moves.)
    opt_down = OO * (1 - GO) * g16 * z1_frac  # grads for the CPU step
    opt_up = OO * p16 * z1_frac  # updated fp16 params
    h2d_first = host_copy_time(opt_up + GO * g16 * z2_frac, H2D_BW)
    d2h_first = host_copy_time(opt_down, D2H_BW)
    # GPU-side Adam arithmetic covers only the resident shard; the CPU
    # update of the offloaded fraction overlaps with GPU work.
    comp_first = (
        ADAM_FLOPS_PER_PARAM * param_elems * z1_frac * (1 - OO)
        / db.gpu.peak_fp32_flops
    )
    # ZeRO-1/2 all-gather updated fp16 params after the optimizer step
    # (ZeRO-3 re-gathers per microbatch anyway).
    dp_first = Z1 * (1 - Z3) * all_gather_time(p16, DP, DP_BW, DP_LAT)

    # -- last-microbatch extra ------------------------------------------------------
    dp_last = (1 - Z2) * (
        Z1 * reduce_scatter_time(g16, DP, DP_BW, DP_LAT)
        + (1 - Z1) * all_reduce_time(g16, DP, DP_BW, DP_LAT)
    )

    return StageRuntimeExprs(
        comp_fwd=comp_fwd, comp_bwd=comp_bwd,
        tp_fwd=tp_fwd, tp_bwd=tp_bwd,
        dp_fwd=dp_fwd, dp_bwd=dp_bwd,
        p2p_fwd=p2p_fwd, p2p_bwd=p2p_bwd,
        d2h_fwd=d2h_fwd, d2h_bwd=d2h_bwd,
        h2d_fwd=h2d_fwd, h2d_bwd=h2d_bwd,
        comp_first=comp_first, dp_first=dp_first,
        d2h_first=d2h_first, h2d_first=h2d_first,
        dp_last=dp_last,
    )
