"""Canonical optimization and hardware symbols (paper Table 2).

Every expression produced by the tracing passes is written over this
fixed vocabulary, so a single symbolic build per (model, GPU) serves
every candidate configuration — values are substituted in batches at
tuning time (Section 5.2's "batched value substitutions").

Stage-configuration symbols (Table 2):

==========  =============================================================
``b``       microbatch size (from :mod:`repro.models.ops`)
``s``       sequence length (from :mod:`repro.models.ops`)
``tp``      tensor-parallel size (from :mod:`repro.models.ops`)
``dp``      data-parallel size
``l``       number of transformer layers in the stage
``ckpt``    number of recomputed (checkpointed) layers, 0..l
``z1..z3``  ZeRO flags: optimizer / gradients / parameters sharded (0/1)
``wo``      weight offloading ratio in [0, 1]
``go``      gradient offloading ratio
``oo``      optimizer-state offloading ratio
``ao``      activation offloading ratio
``gacc``    gradient accumulation steps (G)
``inflight``in-flight microbatches of this stage under 1F1B
``has_pre`` 1 if the stage hosts the embedding (stage 0)
``has_post``1 if the stage hosts the LM head (last stage)
==========  =============================================================

Hardware symbols (substituted from the cluster topology per candidate
placement): ``tp_bw/tp_lat``, ``dp_bw/dp_lat``, ``p2p_bw/p2p_lat``,
``h2d_bw``, ``d2h_bw``.
"""

from __future__ import annotations

import numpy as np

from repro.hardware import ClusterSpec
from repro.models.ops import B, S, TP
from repro.symbolic import Sym

__all__ = [
    "B", "S", "TP", "DP", "L", "CKPT",
    "Z1", "Z2", "Z3", "WO", "GO", "OO", "AO",
    "GACC", "INFLIGHT", "HAS_PRE", "HAS_POST",
    "TP_BW", "TP_LAT", "DP_BW", "DP_LAT", "P2P_BW", "P2P_LAT",
    "H2D_BW", "D2H_BW",
    "CONFIG_SYMBOLS", "HARDWARE_SYMBOLS", "ALL_SYMBOLS",
    "hardware_env",
]

DP = Sym("dp", integer=True)
L = Sym("l", integer=True)
CKPT = Sym("ckpt", integer=True)

Z1 = Sym("z1", integer=True)
Z2 = Sym("z2", integer=True)
Z3 = Sym("z3", integer=True)

WO = Sym("wo")
GO = Sym("go")
OO = Sym("oo")
AO = Sym("ao")

GACC = Sym("gacc", integer=True)
INFLIGHT = Sym("inflight", integer=True)
HAS_PRE = Sym("has_pre", integer=True)
HAS_POST = Sym("has_post", integer=True)

TP_BW = Sym("tp_bw")
TP_LAT = Sym("tp_lat")
DP_BW = Sym("dp_bw")
DP_LAT = Sym("dp_lat")
P2P_BW = Sym("p2p_bw")
P2P_LAT = Sym("p2p_lat")
H2D_BW = Sym("h2d_bw")
D2H_BW = Sym("d2h_bw")

CONFIG_SYMBOLS = (B, S, TP, DP, L, CKPT, Z1, Z2, Z3, WO, GO, OO, AO,
                  GACC, INFLIGHT, HAS_PRE, HAS_POST)
HARDWARE_SYMBOLS = (TP_BW, TP_LAT, DP_BW, DP_LAT, P2P_BW, P2P_LAT,
                    H2D_BW, D2H_BW)
ALL_SYMBOLS = CONFIG_SYMBOLS + HARDWARE_SYMBOLS


def hardware_env(cluster: ClusterSpec, dp, tp) -> dict[str, np.ndarray]:
    """Hardware symbol values for (possibly batched) ``dp``/``tp`` arrays.

    Bandwidths and latencies are resolved per (dp, tp) pair from the
    cluster topology; unique pairs are looked up once and broadcast.
    """
    dp = np.atleast_1d(np.asarray(dp, dtype=int))
    tp = np.atleast_1d(np.asarray(tp, dtype=int))
    dp, tp = np.broadcast_arrays(dp, tp)
    out = {name: np.empty(dp.shape) for name in
           ("tp_bw", "tp_lat", "dp_bw", "dp_lat", "p2p_bw", "p2p_lat")}
    pairs: dict[tuple[int, int], tuple[float, ...]] = {}
    for i in np.ndindex(dp.shape):
        key = (int(dp[i]), int(tp[i]))
        if key not in pairs:
            tg = cluster.tp_group(key[1])
            dg = cluster.dp_group(key[0], key[1])
            stage_gpus = key[0] * key[1]
            pairs[key] = (
                tg.bus_bandwidth, tg.latency,
                dg.bus_bandwidth, dg.latency,
                cluster.p2p_bandwidth(stage_gpus),
                cluster.p2p_latency(stage_gpus),
            )
        values = pairs[key]
        for name, value in zip(("tp_bw", "tp_lat", "dp_bw", "dp_lat",
                                "p2p_bw", "p2p_lat"), values):
            out[name][i] = value
    out["h2d_bw"] = np.full(dp.shape, cluster.gpu.pcie_bandwidth)
    out["d2h_bw"] = np.full(dp.shape, cluster.gpu.pcie_bandwidth)
    return out
