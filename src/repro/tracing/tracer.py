"""Symbolic tracer: one-call construction of a stage's full analysis.

Bundles the model graph construction (:func:`repro.models.trace_model`)
with the inter-layer memory and runtime passes, mirroring the paper's
"Symbolic Tracer -> Memory Analyzer / Runtime Analyzer" pipeline in
Figure 6. The result — a :class:`TracedModel` — contains everything the
performance analyzer compiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.opdb import OperatorDatabase
from repro.hardware import GPUSpec
from repro.models.config import ModelConfig
from repro.models.graph import ModelGraph, trace_model

from .memory import StageMemoryExprs, build_stage_memory
from .runtime import StageRuntimeExprs, build_stage_runtime

__all__ = ["TracedModel", "trace"]


@dataclass
class TracedModel:
    """Symbolic memory and runtime models for one (model, GPU) pair."""

    graph: ModelGraph
    gpu: GPUSpec
    opdb: OperatorDatabase
    memory: StageMemoryExprs
    runtime: StageRuntimeExprs

    @property
    def config(self) -> ModelConfig:
        return self.graph.config

    @property
    def flash(self) -> bool:
        return self.graph.flash


def trace(config: ModelConfig, gpu: GPUSpec, *, flash: bool = True) -> TracedModel:
    """Run the full symbolic analysis pipeline once for ``config``.

    This is the expensive-but-once step of the paper's design: a single
    symbolic pass that later answers *any* configuration query through
    value substitution.
    """
    graph = trace_model(config, flash=flash)
    db = OperatorDatabase(gpu)
    return TracedModel(
        graph=graph,
        gpu=gpu,
        opdb=db,
        memory=build_stage_memory(graph),
        runtime=build_stage_runtime(graph, db),
    )
