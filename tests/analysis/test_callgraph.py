"""Call-graph resolution: names, methods, constructors, registries."""

from repro.analysis import CallGraph, CheckConfig, Project

CONFIG = CheckConfig()


def graph_of(sources):
    return CallGraph.build(Project.from_sources(sources, config=CONFIG))


def test_module_level_and_imported_function_edges():
    graph = graph_of({
        "pkg/a.py": "def helper():\n    pass\n"
                    "def caller():\n    helper()\n",
        "pkg/b.py": "from pkg.a import helper\n"
                    "def remote():\n    helper()\n",
    })
    assert "pkg/a.py::helper" in graph.callees("pkg/a.py::caller")
    assert "pkg/a.py::helper" in graph.callees("pkg/b.py::remote")


def test_self_method_and_constructor_resolution():
    graph = graph_of({
        "pkg/svc.py":
            "class Service:\n"
            "    def __init__(self):\n"
            "        self.jobs = []\n"
            "    def submit(self, job):\n"
            "        self._admit(job)\n"
            "    def _admit(self, job):\n"
            "        pass\n"
            "def boot():\n"
            "    return Service()\n",
    })
    assert "pkg/svc.py::Service._admit" in \
        graph.callees("pkg/svc.py::Service.submit")
    assert "pkg/svc.py::Service.__init__" in graph.callees("pkg/svc.py::boot")


def test_unique_method_heuristic_skips_ambiguous_names():
    graph = graph_of({
        "pkg/m.py":
            "class A:\n"
            "    def only_here(self):\n"
            "        pass\n"
            "    def shared(self):\n"
            "        pass\n"
            "class B:\n"
            "    def shared(self):\n"
            "        pass\n"
            "def use(obj):\n"
            "    obj.only_here()\n"
            "    obj.shared()\n",
    })
    callees = graph.callees("pkg/m.py::use")
    assert "pkg/m.py::A.only_here" in callees
    # two classes define shared(): no edge rather than a wrong edge
    assert not any(q.endswith(".shared") for q in callees)


def test_callable_reference_arguments_count_as_calls():
    graph = graph_of({
        "pkg/exec.py":
            "class Tier:\n"
            "    def submit(self, job):\n"
            "        pass\n"
            "    def run(self, pool, job):\n"
            "        pool.run_in_executor(None, self.submit, job)\n",
    })
    assert "pkg/exec.py::Tier.submit" in graph.callees("pkg/exec.py::Tier.run")


def test_register_decorations_indexed():
    graph = graph_of({
        "pkg/impl.py":
            "from pkg.registry import register_solver\n"
            "@register_solver('mist')\n"
            "class MistSolver:\n"
            "    def solve(self):\n"
            "        pass\n"
            "@register_solver('greedy')\n"
            "def greedy_solve():\n"
            "    pass\n",
    })
    assert graph.registrations["solver"] == {
        "mist": "pkg/impl.py::MistSolver",
        "greedy": "pkg/impl.py::greedy_solve",
    }


def test_reachability_follows_registry_indirection():
    graph = graph_of({
        "pkg/impl.py":
            "from pkg.registry import register_solver\n"
            "@register_solver('mist')\n"
            "class MistSolver:\n"
            "    def solve(self):\n"
            "        self._inner()\n"
            "    def _inner(self):\n"
            "        pass\n",
        "pkg/drive.py":
            "from pkg.registry import get_solver\n"
            "def tune(name):\n"
            "    solver = get_solver(name)\n"
            "    return solver\n",
        "pkg/cold.py":
            "def unrelated():\n"
            "    pass\n",
    })
    roots = graph.by_suffix("tune")
    reachable = graph.reachable_from(roots)
    # dispatch-by-name pulls in every registered implementation...
    assert "pkg/impl.py::MistSolver.solve" in reachable
    assert "pkg/impl.py::MistSolver._inner" in reachable
    # ...but not unregistered, uncalled code
    assert "pkg/cold.py::unrelated" not in reachable
    # without registry following, the dispatch stays opaque
    narrow = graph.reachable_from(roots, follow_registry=False)
    assert "pkg/impl.py::MistSolver.solve" not in narrow


def test_by_suffix_matches_dotted_tail():
    graph = graph_of({
        "pkg/a.py": "class C:\n    def run(self):\n        pass\n"
                    "def run():\n    pass\n",
    })
    assert graph.by_suffix("C.run") == {"pkg/a.py::C.run"}
    assert graph.by_suffix("run") == {"pkg/a.py::C.run", "pkg/a.py::run"}
