"""CFG construction: shapes the dataflow engine must model faithfully."""

import ast

from repro.analysis import build_cfg, iter_functions


def cfg_of(source, name=None):
    tree = ast.parse(source)
    funcs = dict(iter_functions(tree))
    if name is None:
        name = next(iter(funcs))
    return build_cfg(funcs[name], name)


def labels(cfg):
    return [cfg.blocks[bid].label for bid in cfg.block_order()]


def element_types(cfg):
    return [type(el).__name__ for _b, el in cfg.iter_elements()]


def test_straight_line_body_is_one_block_after_entry():
    cfg = cfg_of("def f(a):\n    x = a\n    y = x\n    return y\n")
    entry = cfg.blocks[cfg.entry]
    # parameters are represented by the arguments node at entry
    assert isinstance(entry.elements[0], ast.arguments)
    assert cfg.exit in {s for bid in cfg.blocks
                        for s in cfg.blocks[bid].succs}
    assert element_types(cfg).count("Return") == 1


def test_if_else_branches_and_join():
    cfg = cfg_of(
        "def f(a):\n"
        "    if a:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 2\n"
        "    return x\n")
    entry = cfg.blocks[cfg.entry]
    # the test expression is an element of the branching block
    assert any(isinstance(el, ast.Name) for el in entry.elements)
    assert len(entry.succs) == 2
    join = [b for b in cfg.blocks.values() if b.label == "if-join"][0]
    assert len(join.preds) == 2


def test_while_has_back_edge_and_exit_edge():
    cfg = cfg_of(
        "def f(n):\n"
        "    while n:\n"
        "        n -= 1\n"
        "    return n\n")
    head = [b for b in cfg.blocks.values() if b.label == "while-head"][0]
    body = [b for b in cfg.blocks.values() if b.label == "while-body"][0]
    after = [b for b in cfg.blocks.values() if b.label == "while-after"][0]
    assert body.id in head.succs and after.id in head.succs
    assert head.id in body.succs  # back edge


def test_for_break_continue_edges():
    cfg = cfg_of(
        "def f(xs):\n"
        "    for x in xs:\n"
        "        if x:\n"
        "            break\n"
        "        continue\n"
        "    return 0\n")
    head = [b for b in cfg.blocks.values() if b.label == "for-head"][0]
    after = [b for b in cfg.blocks.values() if b.label == "for-after"][0]
    # the For node itself is the loop-head element (defines the target)
    assert any(isinstance(el, ast.For) for el in head.elements)
    break_blocks = [b for b in cfg.blocks.values()
                    if any(isinstance(el, ast.Break) for el in b.elements)]
    continue_blocks = [b for b in cfg.blocks.values()
                       if any(isinstance(el, ast.Continue)
                              for el in b.elements)]
    assert after.id in break_blocks[0].succs
    assert head.id in continue_blocks[0].succs


def test_try_except_wires_body_blocks_to_handler_heads():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        a = 1\n"
        "        b = 2\n"
        "    except ValueError as exc:\n"
        "        c = 3\n"
        "    return 0\n")
    handler_head = [b for b in cfg.blocks.values()
                    if b.label.startswith("except:")][0]
    assert isinstance(handler_head.elements[0], ast.ExceptHandler)
    body = [b for b in cfg.blocks.values() if b.label == "try-body"][0]
    # an exception can occur at any try-body statement
    assert handler_head.id in body.succs
    join = [b for b in cfg.blocks.values() if b.label == "try-join"][0]
    assert len(join.preds) >= 2  # success path + handler path


def test_try_finally_routes_return_through_finally():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    finally:\n"
        "        cleanup = True\n")
    final = [b for b in cfg.blocks.values() if b.label == "finally"][0]
    return_block = [b for b in cfg.blocks.values()
                    if any(isinstance(el, ast.Return)
                           for el in b.elements)][0]
    assert final.id in return_block.succs
    # the finally body can fall through to exit (re-raise route)
    assert cfg.exit in final.succs


def test_try_except_else_finally_full_shape():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        a = 1\n"
        "    except KeyError:\n"
        "        b = 2\n"
        "    else:\n"
        "        c = 3\n"
        "    finally:\n"
        "        d = 4\n"
        "    return 0\n")
    names = labels(cfg)
    assert "try-else" in names and "finally" in names
    final = [b for b in cfg.blocks.values() if b.label == "finally"][0]
    # both the else path and the handler path drain into finally
    assert len(final.preds) >= 2


def test_with_items_are_elements_and_body_is_inline():
    cfg = cfg_of(
        "def f(lock):\n"
        "    with lock as guard:\n"
        "        x = guard\n"
        "    return x\n")
    items = [el for _b, el in cfg.iter_elements()
             if isinstance(el, ast.withitem)]
    assert len(items) == 1
    # no dedicated with-block: body statements share the current block
    assert "with" not in " ".join(labels(cfg))


def test_comprehensions_stay_expression_level():
    cfg = cfg_of(
        "def f(xs):\n"
        "    ys = [x + 1 for x in xs]\n"
        "    return ys\n")
    # one entry block, one exit: comprehension adds no blocks
    assert [b.label for b in cfg.blocks.values()
            if b.elements] == ["entry"]


def test_async_def_builds_with_params_and_awaits():
    tree = ast.parse(
        "async def f(job):\n"
        "    async with guard():\n"
        "        r = await run(job)\n"
        "    return r\n")
    funcs = dict(iter_functions(tree))
    cfg = build_cfg(funcs["f"], "f")
    entry = cfg.blocks[cfg.entry]
    assert isinstance(entry.elements[0], ast.arguments)
    assert any(isinstance(el, ast.withitem)
               for _b, el in cfg.iter_elements())


def test_match_cases_branch_from_subject_block():
    cfg = cfg_of(
        "def f(x):\n"
        "    match x:\n"
        "        case 1:\n"
        "            y = 'one'\n"
        "        case _:\n"
        "            y = 'other'\n"
        "    return y\n")
    cases = [b for b in cfg.blocks.values() if b.label == "case"]
    assert len(cases) == 2
    assert all(isinstance(b.elements[0], ast.match_case) for b in cases)


def test_code_after_return_is_unreachable_block():
    cfg = cfg_of(
        "def f():\n"
        "    return 1\n"
        "    x = 2\n")
    dead = [b for b in cfg.blocks.values() if b.label == "unreachable"]
    assert len(dead) == 1 and not dead[0].preds


def test_iter_functions_qualnames_cover_methods_and_nesting():
    tree = ast.parse(
        "def top():\n"
        "    def inner():\n"
        "        pass\n"
        "class C:\n"
        "    def m(self):\n"
        "        pass\n"
        "    class D:\n"
        "        def n(self):\n"
        "            pass\n")
    names = [qual for qual, _ in iter_functions(tree)]
    assert names == ["top", "top.inner", "C.m", "C.D.n"]
