"""Reaching definitions, use-def chains, and taint transfer functions."""

import ast

from repro.analysis import (
    ReachingDefinitions,
    TaintAnalysis,
    TaintSource,
    TaintSpec,
    build_cfg,
    iter_functions,
    use_def_chains,
)
from repro.analysis.dataflow import element_defs, element_uses


def cfg_of(source, name=None):
    tree = ast.parse(source)
    funcs = dict(iter_functions(tree))
    if name is None:
        name = next(iter(funcs))
    return build_cfg(funcs[name], name)


SPEC = TaintSpec(
    call_sources={"time.time": ("wall-clock", "time.time")},
    ref_sources={"time.time": ("wall-clock", "time.time")},
    prefix_sources={"random.": ("entropy", "random.*")},
    sanitizers={"sorted": frozenset({"hash-order"}),
                "scrub": "*"},
)


# -- element-level defs/uses -----------------------------------------------

def test_element_defs_cover_binding_forms():
    mod = ast.parse(
        "import os as sys_os\n"
        "from json import dumps\n"
        "a, (b, *c) = x\n"
        "d: int = 1\n"
        "e += 1\n"
        "f = (g := 2)\n")
    kinds = {}
    for stmt in mod.body:
        for definition in element_defs(stmt):
            kinds[definition.name] = definition.kind
    assert kinds == {
        "sys_os": "import", "dumps": "import",
        "a": "assign", "b": "assign", "c": "assign",
        "d": "ann", "e": "aug", "f": "assign", "g": "walrus",
    }


def test_element_uses_skip_comprehension_bound_names():
    stmt = ast.parse("ys = [x + z for x in xs]").body[0]
    used = sorted({n.id for n in element_uses(stmt)})
    assert used == ["xs", "z"]  # x is comprehension-local


def test_element_uses_skip_nested_scopes():
    stmt = ast.parse("f = lambda q: q + outer\n").body[0]
    assert {n.id for n in element_uses(stmt)} == set()


# -- reaching definitions / use-def golden tests ---------------------------

def test_branch_merges_both_definitions():
    cfg = cfg_of(
        "def f(a):\n"          # line 1
        "    if a:\n"          # 2
        "        x = 1\n"      # 3
        "    else:\n"
        "        x = 2\n"      # 5
        "    return x\n")      # 6
    chains = [c for c in use_def_chains(cfg) if c.name == "x"]
    assert len(chains) == 1
    assert sorted(d.line for d in chains[0].defs) == [3, 5]


def test_straight_line_redefinition_kills_old_def():
    cfg = cfg_of(
        "def f():\n"
        "    x = 1\n"          # 2
        "    x = 2\n"          # 3
        "    return x\n")      # 4
    chains = [c for c in use_def_chains(cfg) if c.name == "x"]
    assert [d.line for d in chains[-1].defs] == [3]


def test_loop_carried_definition_reaches_header_use():
    cfg = cfg_of(
        "def f(n):\n"          # 1
        "    x = 0\n"          # 2
        "    while n:\n"       # 3 (use of n and x's defs flow around)
        "        x = x + 1\n"  # 4
        "    return x\n")      # 5
    ret_chain = [c for c in use_def_chains(cfg)
                 if c.name == "x"
                 and isinstance(c.element, ast.Return)][0]
    assert sorted(d.line for d in ret_chain.defs) == [2, 4]
    # inside the loop body, both the init and the loop-carried def reach
    body_chain = [c for c in use_def_chains(cfg)
                  if c.name == "x" and c.use.lineno == 4][0]
    assert sorted(d.line for d in body_chain.defs) == [2, 4]


def test_except_handler_binding_reaches_handler_body():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError as exc:\n"   # 4
        "        return exc\n")             # 5
    chain = [c for c in use_def_chains(cfg) if c.name == "exc"][0]
    assert [(d.line, d.kind) for d in chain.defs] == [(4, "except")]


def test_with_and_for_targets_are_definitions():
    cfg = cfg_of(
        "def f(xs, cm):\n"
        "    with cm as fh:\n"       # 2
        "        for row in xs:\n"   # 3
        "            use(fh, row)\n")
    chains = {c.name: c for c in use_def_chains(cfg)
              if c.name in ("fh", "row")}
    assert {d.kind for d in chains["fh"].defs} == {"with"}
    assert {d.kind for d in chains["row"].defs} == {"for"}


def test_parameters_defined_at_entry():
    cfg = cfg_of("def f(a, *rest, **kw):\n    return a, rest, kw\n")
    reaching = ReachingDefinitions(cfg)
    ret = [el for _b, el in cfg.iter_elements()
           if isinstance(el, ast.Return)][0]
    state = reaching.before(ret)
    assert {name for name in ("a", "rest", "kw")} <= set(state)
    assert all(next(iter(state[n])).kind == "param"
               for n in ("a", "rest", "kw"))


# -- taint ------------------------------------------------------------------

def taint_of(source, name=None, **kwargs):
    return TaintAnalysis(cfg_of(source, name), SPEC, **kwargs)


def test_taint_flows_through_assignment_chain():
    analysis = taint_of(
        "def f():\n"
        "    stamp = time.time()\n"
        "    salted = stamp + 1\n"
        "    return salted\n")
    assert {t.kind for t in analysis.return_taint} == {"wall-clock"}


def test_taint_strong_update_clears():
    analysis = taint_of(
        "def f():\n"
        "    x = time.time()\n"
        "    x = 0\n"
        "    return x\n")
    assert analysis.return_taint == frozenset()


def test_sorted_launders_hash_order_but_not_wall_clock():
    analysis = taint_of(
        "def f():\n"
        "    order = sorted({'a', 'b'})\n"
        "    stamp = sorted([time.time()])\n"
        "    return order, stamp\n")
    kinds = {t.kind for t in analysis.return_taint}
    assert kinds == {"wall-clock"}  # hash-order laundered, clock not


def test_star_sanitizer_clears_everything():
    analysis = taint_of(
        "def f():\n"
        "    x = scrub(time.time())\n"
        "    return x\n")
    assert analysis.return_taint == frozenset()


def test_set_iteration_and_cast_taint_hash_order():
    analysis = taint_of(
        "def f():\n"
        "    out = []\n"
        "    for item in {'x', 'y'}:\n"
        "        out.append(item)\n"
        "    order = list({'a'})\n"
        "    return out, order\n")
    kinds = {t.kind for t in analysis.return_taint}
    assert kinds == {"hash-order"}


def test_branch_join_unions_taint():
    analysis = taint_of(
        "def f(flag):\n"
        "    if flag:\n"
        "        x = time.time()\n"
        "    else:\n"
        "        x = random.random()\n"
        "    return x\n")
    assert {t.kind for t in analysis.return_taint} == \
        {"wall-clock", "entropy"}


def test_param_taints_seed_entry_state():
    analysis = taint_of(
        "def f(key):\n"
        "    derived = key\n"
        "    return derived\n",
        param_taints={"key": frozenset(
            {TaintSource("env", "caller", 1)})})
    assert {t.kind for t in analysis.return_taint} == {"env"}


def test_call_summary_hook_splices_callee_taint():
    def summary(node):
        return frozenset({TaintSource("wall-clock", "helper()",
                                      node.lineno)})

    analysis = taint_of(
        "def f():\n"
        "    x = helper()\n"
        "    return x\n",
        call_summary=summary)
    assert {t.description for t in analysis.return_taint} == {"helper()"}


def test_container_weak_update_keeps_taint():
    analysis = taint_of(
        "def f():\n"
        "    payload = {}\n"
        "    payload['ts'] = time.time()\n"
        "    return payload\n")
    assert {t.kind for t in analysis.return_taint} == {"wall-clock"}
