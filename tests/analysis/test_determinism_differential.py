"""Differential: the engine-ported determinism rule ⊇ the PR 6 rule.

The port must never lose a finding the old per-statement matcher
produced — legacy findings are emitted verbatim and flow findings are
additive. This test runs both over the fixture corpus (the rule-suite
fixtures plus flow shapes only the engine can see) and asserts the
superset relation, plus that the delta is non-empty where laundering
is involved.
"""

from repro.analysis import CheckConfig, Project
from repro.analysis.rules.determinism import DeterminismRule, legacy_findings

from test_rules import DET_CLEAN, DET_VIOLATION

CONFIG = CheckConfig(determinism_paths=("pkg/det.py",),
                     taint_paths=("pkg/det.py",))

#: invisible to the legacy matcher: the clock is laundered through a
#: local before reaching the serialization sink
LAUNDERED = """\
import json
import time

def snapshot(payload):
    stamp = time.time()  # repro: allow[determinism] measured elsewhere
    meta = {"at": stamp}
    return json.dumps({"payload": payload, "meta": meta}, sort_keys=True)
"""

CORPUS = {
    "violation": DET_VIOLATION,
    "clean": DET_CLEAN,
    "laundered": LAUNDERED,
    "empty": "",
}


def both(source):
    project = Project.from_sources({"pkg/det.py": source}, config=CONFIG)
    old = {f.sort_key() for f in legacy_findings(project)}
    new = {f.sort_key() for f in DeterminismRule().check(project)}
    return old, new


def test_ported_rule_is_superset_on_every_corpus_entry():
    for name, source in CORPUS.items():
        old, new = both(source)
        assert old <= new, (
            f"corpus[{name}]: ported rule lost legacy findings: "
            f"{sorted(old - new)}")


def test_ported_rule_strictly_exceeds_on_laundered_flows():
    old, new = both(LAUNDERED)
    extra = new - old
    assert extra, "the engine should see the laundered clock flow"
    assert any("flows into json.dumps" in key[3] for key in extra)


def test_ported_rule_adds_nothing_on_clean_fixture():
    old, new = both(DET_CLEAN)
    assert old == new == set()
